//! The *bucket-sum* step (§3.2.2): highly parallel accumulation of each
//! bucket's points, with multiple threads per bucket and an intra-bucket
//! reduction.

use distmsm_ec::{Affine, Curve, XyzzPoint};
use distmsm_gpu_sim::trace::LaunchRecorder;
use distmsm_gpu_sim::LaunchStats;
use distmsm_kernel::ir::PlanIr;
use distmsm_kernel::EcKernelModel;

/// Trace address namespaces (see `distmsm_gpu_sim::trace`).
#[cfg(feature = "trace")]
mod addr {
    /// Global: affine point array, indexed by point.
    pub const POINT: u64 = 0x1000_0000_0000;
    /// Global: cross-block partial sums; `GPART + (bucket << 20 | block)`.
    pub const GPART: u64 = 0x3000_0000_0000;
    /// Shared (block-local): per-thread partial-sum slots.
    pub const SHM_PARTIAL: u64 = 0x300_0000;
}

/// Emits the bucket-sum access pattern. Thread `bucket * tpb + lane`
/// accumulates every `tpb`-th point of its bucket into a shared-memory
/// partial (phase 0), the block's threads pass `log2(tpb)` reduction
/// barriers, and the bucket leader combines the partials. The emitted
/// combine is flat (the leader reads each lane's slot once) rather than
/// the metered `log2` tree — a simplification with identical
/// synchronisation structure, since every tree step is barrier-separated
/// from the writes it consumes. When a bucket's lanes straddle a block
/// boundary, per-block segment leaders publish their partial globally and
/// the combine crosses a grid sync, mirroring a cooperative-groups launch.
#[cfg(feature = "trace")]
fn emit_bucket_sum_trace(
    rec: &mut LaunchRecorder,
    buckets: &[Vec<u32>],
    tpb: u32,
    block_size: u32,
) {
    use crate::scatter::SIGN_BIT;
    use distmsm_gpu_sim::trace::{AccessKind, Space};
    let tpb = tpb.max(1) as u64;
    let bs = block_size.max(1) as u64;
    let n_buckets = buckets.len() as u64;
    let threads = (n_buckets * tpb).max(1);
    let reduce_steps = (tpb as f64).log2().ceil() as u32;
    let spans_blocks = buckets
        .iter()
        .enumerate()
        .any(|(b, pts)| !pts.is_empty() && (b as u64 * tpb) / bs != (b as u64 * tpb + tpb - 1) / bs);

    let n_blocks = threads.div_ceil(bs);
    for blk in 0..n_blocks {
        let in_block = bs.min(threads - blk * bs) as u32;
        rec.block_barriers(blk as u32, in_block, reduce_steps);
    }

    for (b, pts) in buckets.iter().enumerate() {
        if pts.is_empty() {
            continue;
        }
        let lane_thread = |lane: u64| {
            let g = b as u64 * tpb + lane;
            ((g / bs) as u32, (g % bs) as u32)
        };
        // phase 0: strided accumulation into the lane's shared partial
        let active_lanes = (pts.len() as u64).min(tpb);
        for (pos, &entry) in pts.iter().enumerate() {
            let lane = pos as u64 % tpb;
            let (blk, tid) = lane_thread(lane);
            let point = u64::from(entry & !SIGN_BIT);
            rec.access(blk, tid, 0, Space::Global, AccessKind::Read, addr::POINT + point);
            rec.access(blk, tid, 0, Space::Shared, AccessKind::Write, addr::SHM_PARTIAL + u64::from(tid));
        }
        // combine: the bucket leader gathers same-block partials after the
        // reduction barriers; cross-block segments go through global memory
        // and the grid sync.
        let (leader_blk, leader_tid) = lane_thread(0);
        let mut segment_leader_seen = vec![false; n_blocks as usize];
        for lane in 0..active_lanes {
            let (blk, tid) = lane_thread(lane);
            if blk == leader_blk {
                rec.access(
                    leader_blk,
                    leader_tid,
                    reduce_steps,
                    Space::Shared,
                    AccessKind::Read,
                    addr::SHM_PARTIAL + u64::from(tid),
                );
            } else if !segment_leader_seen[blk as usize] {
                segment_leader_seen[blk as usize] = true;
                let gpart = addr::GPART + ((b as u64) << 20 | u64::from(blk));
                rec.access(blk, tid, reduce_steps, Space::Global, AccessKind::Write, gpart);
                rec.access(
                    leader_blk,
                    leader_tid,
                    reduce_steps + 1,
                    Space::Global,
                    AccessKind::Read,
                    gpart,
                );
            }
        }
    }

    if spans_blocks {
        rec.grid_sync_at(reduce_steps);
    }
}

/// Result of summing one slice's buckets on one GPU.
#[derive(Clone, Debug)]
pub struct BucketSumOutcome<C: Curve> {
    /// One partial sum per bucket of the slice.
    pub sums: Vec<XyzzPoint<C>>,
    /// Metered launch statistics.
    pub stats: LaunchStats,
}

/// Symbolic IR of the intra-bucket lane interleave: lane `l ∈ 0..tpb`
/// accumulates exactly the bucket positions `≡ l (mod tpb)` of the
/// bucket's `Z` points. The residue classes partition `[0, Z)` — every
/// position is read by exactly one lane, so phase 0 needs no
/// synchronisation below the `log2(tpb)` reduction tree.
pub fn lane_residue_ir() -> PlanIr {
    use distmsm_kernel::ir::{residue_partition_family, IndexExpr, Poly, SymBound};
    PlanIr {
        name: "bucket-sum-lanes".into(),
        space: (IndexExpr::con(0), IndexExpr::var("Z")),
        cover: true,
        families: vec![residue_partition_family("lane", "l", &Poly::var("tpb"))],
        bounds: vec![SymBound::at_least("Z", 1), SymBound::at_least("tpb", 1)],
        assumptions: Vec::new(),
    }
}

/// Picks the number of threads cooperating on each bucket: a multiple of
/// 32 (a warp) sized so the GPU stays fully utilised (§3.2.2).
pub fn threads_per_bucket(gpu_threads: u64, n_buckets: u64) -> u32 {
    if n_buckets == 0 || n_buckets >= gpu_threads {
        return 1;
    }
    let raw = gpu_threads / n_buckets;
    if raw < 32 {
        return raw.max(1) as u32;
    }
    ((raw / 32) * 32).min(1024) as u32
}

/// Sums each bucket's points (PACC per point), modelling `tpb` threads
/// per bucket with a `log2(tpb)`-step intra-bucket reduction.
pub fn bucket_sum<C: Curve>(
    points: &[Affine<C>],
    buckets: &[Vec<u32>],
    tpb: u32,
    model: &EcKernelModel,
    block_size: u32,
) -> BucketSumOutcome<C> {
    let mut sums = Vec::with_capacity(buckets.len());
    let mut total_points: u64 = 0;
    let mut max_bucket: u64 = 0;
    for bucket in buckets {
        let mut acc = XyzzPoint::<C>::identity();
        for &idx in bucket {
            acc.pacc(&points[idx as usize]);
        }
        sums.push(acc);
        total_points += bucket.len() as u64;
        max_bucket = max_bucket.max(bucket.len() as u64);
    }

    let n_buckets = buckets.len() as u64;
    let threads = (n_buckets * u64::from(tpb)).max(1);
    let acc = model.acc_cost();
    let padd = model.padd_cost();
    let per_thread_paccs = max_bucket.div_ceil(u64::from(tpb)) as f64;
    let reduce_steps = f64::from(tpb).log2().ceil();

    let mut max_thread = acc.scale(per_thread_paccs);
    max_thread = max_thread.add(&padd.scale(reduce_steps));
    // point loads: affine coordinates per PACC
    max_thread.global_bytes += per_thread_paccs * (2.0 * model.limbs32() as f64 * 4.0);
    max_thread.barriers += reduce_steps;

    let mut total = acc.scale(total_points as f64);
    total = total.add(&padd.scale((n_buckets * u64::from(tpb.saturating_sub(1))) as f64));
    total.global_bytes += total_points as f64 * (2.0 * model.limbs32() as f64 * 4.0);

    let mut stats = LaunchStats::new(model.profile("bucket-sum", block_size), threads);
    stats.max_thread = max_thread;
    stats.total = total;

    let rec = LaunchRecorder::start("bucket-sum", 0);
    #[cfg(feature = "trace")]
    let mut rec = rec;
    #[cfg(feature = "trace")]
    if rec.active() {
        emit_bucket_sum_trace(&mut rec, buckets, tpb, block_size);
    }
    rec.commit();

    BucketSumOutcome { sums, stats }
}

/// Signed variant of [`bucket_sum`]: entries carry
/// [`crate::scatter::SIGN_BIT`]; negative entries accumulate the point's
/// (free) negation.
pub fn bucket_sum_signed<C: Curve>(
    points: &[Affine<C>],
    buckets: &[Vec<u32>],
    tpb: u32,
    model: &EcKernelModel,
    block_size: u32,
) -> BucketSumOutcome<C> {
    use crate::scatter::SIGN_BIT;
    let mut sums = Vec::with_capacity(buckets.len());
    let mut total_points: u64 = 0;
    let mut max_bucket: u64 = 0;
    for bucket in buckets {
        let mut acc = XyzzPoint::<C>::identity();
        for &entry in bucket {
            let p = &points[(entry & !SIGN_BIT) as usize];
            if entry & SIGN_BIT != 0 {
                acc.pacc(&p.neg());
            } else {
                acc.pacc(p);
            }
        }
        sums.push(acc);
        total_points += bucket.len() as u64;
        max_bucket = max_bucket.max(bucket.len() as u64);
    }
    let mut out = bucket_sum_stats(total_points, buckets.len() as u64, tpb, model, block_size);
    // imbalance: replace the expected-bucket critical path with the real one
    let acc = model.acc_cost();
    let padd = model.padd_cost();
    let per_thread_paccs = max_bucket.div_ceil(u64::from(tpb)) as f64;
    let reduce_steps = f64::from(tpb).log2().ceil();
    out.max_thread = acc.scale(per_thread_paccs).add(&padd.scale(reduce_steps));
    out.max_thread.global_bytes += per_thread_paccs * (2.0 * model.limbs32() as f64 * 4.0);
    out.max_thread.barriers += reduce_steps;

    let rec = LaunchRecorder::start("bucket-sum", 0);
    #[cfg(feature = "trace")]
    let mut rec = rec;
    #[cfg(feature = "trace")]
    if rec.active() {
        emit_bucket_sum_trace(&mut rec, buckets, tpb, block_size);
    }
    rec.commit();

    BucketSumOutcome {
        sums,
        stats: out,
    }
}

/// Pure-cost variant of [`bucket_sum`] for analytic (paper-scale) runs:
/// produces the same [`LaunchStats`] from expected bucket sizes without
/// touching any points.
pub fn bucket_sum_stats(
    n_points_in_slice: u64,
    n_buckets: u64,
    tpb: u32,
    model: &EcKernelModel,
    block_size: u32,
) -> LaunchStats {
    let threads = (n_buckets * u64::from(tpb)).max(1);
    let acc = model.acc_cost();
    let padd = model.padd_cost();
    let expected_bucket = if n_buckets == 0 {
        0.0
    } else {
        n_points_in_slice as f64 / n_buckets as f64
    };
    let per_thread_paccs = (expected_bucket / f64::from(tpb)).ceil().max(1.0);
    let reduce_steps = f64::from(tpb).log2().ceil();

    let mut max_thread = acc.scale(per_thread_paccs);
    max_thread = max_thread.add(&padd.scale(reduce_steps));
    max_thread.global_bytes += per_thread_paccs * (2.0 * model.limbs32() as f64 * 4.0);
    max_thread.barriers += reduce_steps;

    let mut total = acc.scale(n_points_in_slice as f64);
    total = total.add(&padd.scale((n_buckets * u64::from(tpb.saturating_sub(1))) as f64));
    total.global_bytes += n_points_in_slice as f64 * (2.0 * model.limbs32() as f64 * 4.0);

    let mut stats = LaunchStats::new(model.profile("bucket-sum", block_size), threads);
    stats.max_thread = max_thread;
    stats.total = total;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ec::curves::Bn254G1;
    use distmsm_ec::sample::generator_multiples;
    use distmsm_ec::Scalar;
    use distmsm_kernel::PaddOptimizations;

    #[test]
    fn sums_are_correct() {
        let points = generator_multiples::<Bn254G1>(16);
        let buckets = vec![vec![0u32, 1, 2], vec![], vec![3, 4], vec![15]];
        let model = EcKernelModel::new(8, PaddOptimizations::all());
        let out = bucket_sum(&points, &buckets, 32, &model, 256);
        // bucket 0: G + 2G + 3G = 6G
        let g = Bn254G1::generator();
        assert_eq!(out.sums[0], g.scalar_mul(&Scalar::from_u64(6)));
        assert!(out.sums[1].is_identity());
        assert_eq!(out.sums[2], g.scalar_mul(&Scalar::from_u64(9)));
        assert_eq!(out.sums[3], g.scalar_mul(&Scalar::from_u64(16)));
    }

    #[test]
    fn threads_per_bucket_policy() {
        // few buckets → many threads each (warp multiples)
        assert_eq!(threads_per_bucket(1 << 16, 1 << 8), 256);
        assert_eq!(threads_per_bucket(1 << 16, 128), 512);
        // cap at 1024
        assert_eq!(threads_per_bucket(1 << 20, 128), 1024);
        // more buckets than threads → one thread serves several buckets
        assert_eq!(threads_per_bucket(1 << 16, 1 << 20), 1);
        // sub-warp remainder stays unrounded
        assert_eq!(threads_per_bucket(100, 10), 10);
    }

    #[test]
    fn stats_track_workload() {
        let points = generator_multiples::<Bn254G1>(64);
        let buckets: Vec<Vec<u32>> = (0..8).map(|b| (0..8).map(|i| b * 8 + i).collect()).collect();
        let model = EcKernelModel::new(8, PaddOptimizations::all());
        let out = bucket_sum(&points, &buckets, 32, &model, 256);
        assert_eq!(out.stats.threads, 8 * 32);
        assert!(out.stats.total.int_ops > 0.0);
        assert!(out.stats.max_thread.int_ops <= out.stats.total.int_ops);
    }

    #[test]
    fn analytic_stats_match_functional_shape() {
        let points = generator_multiples::<Bn254G1>(256);
        // uniform buckets: analytic expectation is exact
        let buckets: Vec<Vec<u32>> =
            (0..16).map(|b| (0..16).map(|i| b * 16 + i).collect()).collect();
        let model = EcKernelModel::new(8, PaddOptimizations::all());
        let f = bucket_sum(&points, &buckets, 32, &model, 256);
        let a = bucket_sum_stats(256, 16, 32, &model, 256);
        assert_eq!(f.stats.threads, a.threads);
        let rel = (f.stats.total.int_ops - a.total.int_ops).abs() / a.total.int_ops;
        assert!(rel < 0.05, "relative error {rel}");
    }
}
