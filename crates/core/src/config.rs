//! Validating builder for [`DistMsmConfig`] — the supported way to
//! construct engine configurations.
//!
//! [`DistMsmConfig`] is `#[non_exhaustive]`: new knobs (a new fault
//! class, a new reduce strategy) must not be breaking changes for
//! downstream crates, so struct-literal construction is reserved to this
//! crate. Callers start from [`DistMsmConfig::builder`] (the defaults)
//! or [`DistMsmConfig::to_builder`] (a derived configuration) and chain
//! setters; [`DistMsmConfigBuilder::build`] validates the combination
//! before the engine ever sees it, turning what used to be
//! mid-execution panics or silent nonsense (a 40-bit window, a
//! 7-thread block) into typed [`ConfigError`]s at construction time.

use crate::engine::DistMsmConfig;
use crate::scatter::{ScatterConfig, ScatterKind};
use crate::supervisor::RetryPolicy;
use distmsm_comms::CollectiveStrategy;
use distmsm_gpu_sim::FaultPlan;
use distmsm_kernel::PaddOptimizations;

/// Largest window size the planner accepts: bucket indices are `u32`
/// and `2^31` buckets already exceeds any simulated device's memory.
const MAX_WINDOW_SIZE: u32 = 31;

/// A configuration rejected by [`DistMsmConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `window_size` outside `1..=31` (or `< 2` with signed digits,
    /// which need one bit for the sign).
    WindowSize {
        /// The rejected value.
        got: u32,
        /// True when the bound that failed was the signed-digit minimum.
        signed_digits: bool,
    },
    /// `block_size` zero or not a multiple of the 32-thread warp.
    BlockSize {
        /// The rejected value.
        got: u32,
    },
    /// `straggler_sla` at or below 1.0 — every device runs at 1.0× the
    /// median, so such an SLA would flag all of them.
    StragglerSla {
        /// The rejected value.
        got: f64,
    },
    /// Retry policy with a negative/non-finite backoff base or a
    /// backoff factor below 1.0 (backoff must not shrink).
    Retry {
        /// Human-readable description of the rejected field.
        detail: String,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::WindowSize { got, signed_digits } => {
                if *signed_digits {
                    write!(f, "window_size {got} invalid: signed digits need 2..={MAX_WINDOW_SIZE}")
                } else {
                    write!(f, "window_size {got} outside 1..={MAX_WINDOW_SIZE}")
                }
            }
            Self::BlockSize { got } => {
                write!(f, "block_size {got} must be a positive multiple of the 32-thread warp")
            }
            Self::StragglerSla { got } => {
                write!(f, "straggler_sla {got} must exceed 1.0 (the median itself)")
            }
            Self::Retry { detail } => write!(f, "invalid retry policy: {detail}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent builder for [`DistMsmConfig`]; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct DistMsmConfigBuilder {
    cfg: DistMsmConfig,
}

impl DistMsmConfigBuilder {
    /// Starts from the engine defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration (for derived variants:
    /// "the clean config, but with this fault plan").
    pub fn from_config(cfg: &DistMsmConfig) -> Self {
        Self { cfg: cfg.clone() }
    }

    /// Fixes the window size `s` (bits per window).
    pub fn window_size(mut self, s: u32) -> Self {
        self.cfg.window_size = Some(s);
        self
    }

    /// Lets the engine pick the cost-model-optimal window size
    /// (the default).
    pub fn auto_window_size(mut self) -> Self {
        self.cfg.window_size = None;
        self
    }

    /// Forces a scatter implementation.
    pub fn scatter(mut self, kind: ScatterKind) -> Self {
        self.cfg.scatter = Some(kind);
        self
    }

    /// Lets the engine pick the scatter implementation (the default:
    /// hierarchical whenever the slice fits in shared memory).
    pub fn auto_scatter(mut self) -> Self {
        self.cfg.scatter = None;
        self
    }

    /// Hierarchical-scatter tuning.
    pub fn scatter_cfg(mut self, cfg: ScatterConfig) -> Self {
        self.cfg.scatter_cfg = cfg;
        self
    }

    /// PADD-kernel optimisation set.
    pub fn kernel_opts(mut self, opts: PaddOptimizations) -> Self {
        self.cfg.kernel_opts = opts;
        self
    }

    /// Runs bucket-reduce on the CPU (§3.2.3) or on the GPUs.
    pub fn bucket_reduce_on_cpu(mut self, on_cpu: bool) -> Self {
        self.cfg.bucket_reduce_on_cpu = on_cpu;
        self
    }

    /// Thread-block size of the bucket-sum kernel.
    pub fn block_size(mut self, threads: u32) -> Self {
        self.cfg.block_size = threads;
        self
    }

    /// Models the CPU reduce as pipelined with GPU work (§3.2.3).
    pub fn pipelined(mut self, on: bool) -> Self {
        self.cfg.pipelined = on;
        self
    }

    /// Streams packed 4-byte per-window coefficient views.
    pub fn packed_coefficients(mut self, on: bool) -> Self {
        self.cfg.packed_coefficients = on;
        self
    }

    /// Recodes scalars into signed digits (§6's adopted technique).
    pub fn signed_digits(mut self, on: bool) -> Self {
        self.cfg.signed_digits = on;
        self
    }

    /// Collective strategy merging per-GPU window partials on the
    /// GPU-reduce path.
    pub fn collective(mut self, strategy: CollectiveStrategy) -> Self {
        self.cfg.collective = strategy;
        self
    }

    /// Deterministic fault-injection plan (non-empty plans turn the
    /// supervisor on).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = plan;
        self
    }

    /// Bounded-retry policy for the supervisor.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.cfg.retry = policy;
        self
    }

    /// Fails execution with [`crate::engine::MsmError::Straggler`] when
    /// a GPU's busy time exceeds `ratio` × the median.
    pub fn straggler_sla(mut self, ratio: f64) -> Self {
        self.cfg.straggler_sla = Some(ratio);
        self
    }

    /// Removes the straggler SLA (detection-only, the default).
    pub fn no_straggler_sla(mut self) -> Self {
        self.cfg.straggler_sla = None;
        self
    }

    /// Validates the combination and returns the configuration.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] naming the first rejected field; see the
    /// variant docs for each rule.
    pub fn build(self) -> Result<DistMsmConfig, ConfigError> {
        let cfg = self.cfg;
        if let Some(s) = cfg.window_size {
            let min = if cfg.signed_digits { 2 } else { 1 };
            if s < min || s > MAX_WINDOW_SIZE {
                return Err(ConfigError::WindowSize {
                    got: s,
                    signed_digits: cfg.signed_digits,
                });
            }
        }
        if cfg.block_size == 0 || !cfg.block_size.is_multiple_of(32) {
            return Err(ConfigError::BlockSize {
                got: cfg.block_size,
            });
        }
        if let Some(sla) = cfg.straggler_sla {
            if sla.is_nan() || sla <= 1.0 {
                return Err(ConfigError::StragglerSla { got: sla });
            }
        }
        if !cfg.retry.backoff_base_s.is_finite() || cfg.retry.backoff_base_s < 0.0 {
            return Err(ConfigError::Retry {
                detail: format!(
                    "backoff_base_s {} must be finite and >= 0",
                    cfg.retry.backoff_base_s
                ),
            });
        }
        if !cfg.retry.backoff_factor.is_finite() || cfg.retry.backoff_factor < 1.0 {
            return Err(ConfigError::Retry {
                detail: format!(
                    "backoff_factor {} must be finite and >= 1",
                    cfg.retry.backoff_factor
                ),
            });
        }
        if !cfg.retry.backoff_cap_s.is_finite() || cfg.retry.backoff_cap_s < 0.0 {
            return Err(ConfigError::Retry {
                detail: format!(
                    "backoff_cap_s {} must be finite and >= 0",
                    cfg.retry.backoff_cap_s
                ),
            });
        }
        Ok(cfg)
    }
}

impl DistMsmConfig {
    /// A fluent validating builder starting from the defaults; see
    /// [`DistMsmConfigBuilder`].
    pub fn builder() -> DistMsmConfigBuilder {
        DistMsmConfigBuilder::new()
    }

    /// A builder seeded with this configuration, for derived variants.
    pub fn to_builder(&self) -> DistMsmConfigBuilder {
        DistMsmConfigBuilder::from_config(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_config_default() {
        let built = DistMsmConfig::builder().build().expect("defaults are valid");
        let def = DistMsmConfig::default();
        assert_eq!(built.window_size, def.window_size);
        assert_eq!(built.block_size, def.block_size);
        assert_eq!(built.bucket_reduce_on_cpu, def.bucket_reduce_on_cpu);
        assert_eq!(built.pipelined, def.pipelined);
        assert_eq!(built.retry, def.retry);
    }

    #[test]
    fn setters_round_trip() {
        let cfg = DistMsmConfig::builder()
            .window_size(8)
            .scatter(ScatterKind::Naive)
            .bucket_reduce_on_cpu(false)
            .block_size(128)
            .pipelined(false)
            .packed_coefficients(false)
            .signed_digits(true)
            .collective(CollectiveStrategy::RingAllReduce)
            .straggler_sla(2.5)
            .build()
            .expect("valid");
        assert_eq!(cfg.window_size, Some(8));
        assert_eq!(cfg.scatter, Some(ScatterKind::Naive));
        assert!(!cfg.bucket_reduce_on_cpu);
        assert_eq!(cfg.block_size, 128);
        assert!(!cfg.pipelined);
        assert!(!cfg.packed_coefficients);
        assert!(cfg.signed_digits);
        assert_eq!(cfg.straggler_sla, Some(2.5));
    }

    #[test]
    fn to_builder_derives_without_struct_update() {
        let base = DistMsmConfig::builder()
            .window_size(10)
            .signed_digits(true)
            .build()
            .unwrap();
        let derived = base
            .to_builder()
            .bucket_reduce_on_cpu(false)
            .build()
            .unwrap();
        assert_eq!(derived.window_size, Some(10));
        assert!(derived.signed_digits);
        assert!(!derived.bucket_reduce_on_cpu);
    }

    #[test]
    fn window_size_bounds_enforced() {
        assert!(matches!(
            DistMsmConfig::builder().window_size(0).build(),
            Err(ConfigError::WindowSize { got: 0, .. })
        ));
        assert!(matches!(
            DistMsmConfig::builder().window_size(32).build(),
            Err(ConfigError::WindowSize { got: 32, .. })
        ));
        // signed digits reserve one bit for the sign
        assert!(matches!(
            DistMsmConfig::builder().signed_digits(true).window_size(1).build(),
            Err(ConfigError::WindowSize {
                got: 1,
                signed_digits: true
            })
        ));
        assert!(DistMsmConfig::builder().window_size(31).build().is_ok());
    }

    #[test]
    fn block_size_must_be_warp_multiple() {
        for bad in [0u32, 7, 33, 100] {
            assert!(
                matches!(
                    DistMsmConfig::builder().block_size(bad).build(),
                    Err(ConfigError::BlockSize { .. })
                ),
                "{bad} must be rejected"
            );
        }
        assert!(DistMsmConfig::builder().block_size(32).build().is_ok());
    }

    #[test]
    fn straggler_sla_must_exceed_median() {
        assert!(matches!(
            DistMsmConfig::builder().straggler_sla(1.0).build(),
            Err(ConfigError::StragglerSla { .. })
        ));
        assert!(matches!(
            DistMsmConfig::builder().straggler_sla(f64::NAN).build(),
            Err(ConfigError::StragglerSla { .. })
        ));
        assert!(DistMsmConfig::builder()
            .straggler_sla(1.5)
            .no_straggler_sla()
            .build()
            .unwrap()
            .straggler_sla
            .is_none());
    }

    #[test]
    fn retry_policy_validated() {
        let bad_base = RetryPolicy::default().with_backoff_base_s(-1.0);
        assert!(matches!(
            DistMsmConfig::builder().retry(bad_base).build(),
            Err(ConfigError::Retry { .. })
        ));
        let bad_factor = RetryPolicy::default().with_backoff_factor(0.5);
        assert!(matches!(
            DistMsmConfig::builder().retry(bad_factor).build(),
            Err(ConfigError::Retry { .. })
        ));
        let good = RetryPolicy::default()
            .with_max_retries(1)
            .with_backoff_base_s(1e-6);
        assert!(DistMsmConfig::builder().retry(good).build().is_ok());
    }

    #[test]
    fn errors_display_the_offending_value() {
        let err = DistMsmConfig::builder().block_size(7).build().unwrap_err();
        assert!(err.to_string().contains('7'), "{err}");
    }
}
