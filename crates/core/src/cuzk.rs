//! A cuZK-style sparse-matrix MSM (the paper's baseline #2).
//!
//! cuZK [Lu et al.] formulates Pippenger's bucket scatter as a sparse
//! matrix transposition: scalar chunks form an ELL matrix whose
//! transpose (computed with prefix sums — no global atomics at all)
//! yields the bucket→points lists, followed by a load-balanced SpMV-like
//! accumulation. It scales near-linearly to 8 GPUs (its paper's claim,
//! echoed in §6 here) but keeps the bucket-reduce on the GPU, which is
//! what DistMSM improves on at higher GPU counts.
//!
//! This is a genuinely different algorithm (counting-sort transpose vs
//! atomics), implemented functionally and metered like everything else.

use crate::bucket_sum::{bucket_sum, threads_per_bucket};
use crate::plan::Slice;
use crate::reduce::{bucket_reduce_gpu_stats, bucket_reduce_serial, window_reduce};
use distmsm_ec::{Curve, FieldElement, MsmInstance, Scalar, XyzzPoint};
use distmsm_gpu_sim::trace::LaunchRecorder;
use distmsm_gpu_sim::{
    estimate_kernel_time, CostModelConfig, KernelProfile, LaunchStats, MultiGpuSystem, ThreadCost,
};
use distmsm_kernel::ir::{IndexExpr, PlanIr, Poly, Region, RegionFamily, SymBound};
use distmsm_kernel::{EcKernelModel, PaddOptimizations};

/// Trace address namespaces (see `distmsm_gpu_sim::trace`).
#[cfg(feature = "trace")]
mod addr {
    /// Global: packed scalar-chunk array, indexed by point.
    pub const SCAL: u64 = 0x1000_0000_0000;
    /// Global: per-thread histogram columns; `HIST + (bucket << 20 | thread)`.
    pub const HIST: u64 = 0x5000_0000_0000;
    /// Global: per-bucket row offsets from the prefix sum.
    pub const OFF: u64 = 0x6000_0000_0000;
    /// Global: transposed cells; `CELL + (bucket << 24 | slot)`.
    pub const CELL: u64 = 0x7000_0000_0000;
}

/// Emits the transpose's three grid-synchronised passes. Pass 0 builds
/// per-thread histogram columns (cuZK's ELL layout — no two threads share
/// a counter, hence no atomics), pass 1 prefix-sums them into per-bucket
/// row offsets (each bucket owned by one thread), pass 2 re-reads the
/// scalars and writes each point into its claimed (unique) transposed
/// cell. Passes are separated by grid syncs, which is the only reason the
/// cross-thread histogram/offset reads are ordered.
#[cfg(feature = "trace")]
fn emit_transpose_trace<S: Scalar>(
    rec: &mut LaunchRecorder,
    scalars: &[S],
    s: u32,
    window: u32,
    threads: u64,
) {
    use distmsm_gpu_sim::trace::{AccessKind, Space};
    let n = scalars.len() as u64;
    let n_buckets = 1u64 << s;
    let per_thread = n.div_ceil(threads.max(1)).max(1);
    let thread_of = |i: u64| {
        let t = i / per_thread;
        ((t / 256) as u32, (t % 256) as u32) // profile block size is 256
    };
    // pass 0: histogram into private columns
    for (i, k) in scalars.iter().enumerate() {
        let (blk, tid) = thread_of(i as u64);
        let t = i as u64 / per_thread;
        rec.access(blk, tid, 0, Space::Global, AccessKind::Read, addr::SCAL + i as u64);
        let b = k.window(window * s, s);
        if b != 0 {
            rec.access(blk, tid, 0, Space::Global, AccessKind::Write, addr::HIST + ((b << 20) | t));
        }
    }
    rec.grid_sync_at(0);
    // pass 1: prefix sum — bucket b is owned by one thread, which reads
    // every thread's column for b and publishes the row offset
    let buckets_per_thread = n_buckets.div_ceil(threads.max(1)).max(1);
    for b in 1..n_buckets {
        let owner = b / buckets_per_thread;
        let (blk, tid) = ((owner / 256) as u32, (owner % 256) as u32);
        for t in 0..threads.min(4) {
            // sampled columns: reading all `threads` columns per bucket
            // would square the trace size without changing the HB structure
            rec.access(blk, tid, 1, Space::Global, AccessKind::Read, addr::HIST + ((b << 20) | t));
        }
        rec.access(blk, tid, 1, Space::Global, AccessKind::Write, addr::OFF + b);
    }
    rec.grid_sync_at(1);
    // pass 2: scatter into the claimed transposed cells
    let mut cursors = vec![0u64; n_buckets as usize];
    for (i, k) in scalars.iter().enumerate() {
        let (blk, tid) = thread_of(i as u64);
        rec.access(blk, tid, 2, Space::Global, AccessKind::Read, addr::SCAL + i as u64);
        let b = k.window(window * s, s);
        if b != 0 {
            rec.access(blk, tid, 2, Space::Global, AccessKind::Read, addr::OFF + b);
            let slot = cursors[b as usize];
            cursors[b as usize] += 1;
            rec.access(
                blk,
                tid,
                2,
                Space::Global,
                AccessKind::Write,
                addr::CELL + ((b << 24) | slot),
            );
        }
    }
}

/// Result of a cuZK-style execution.
#[derive(Clone, Debug)]
pub struct CuZkReport<C: Curve> {
    /// The MSM value (bit-exact).
    pub result: XyzzPoint<C>,
    /// Window size used.
    pub window_size: u32,
    /// Simulated wall time in seconds.
    pub total_s: f64,
}

/// The sparse-matrix transpose of one window: a counting sort of point
/// indices by bucket id. Returns per-bucket index lists plus the metered
/// launch statistics (prefix-sum passes instead of atomics).
pub fn transpose_window<S: Scalar>(
    scalars: &[S],
    s: u32,
    window: u32,
    gpu_threads: u64,
) -> (Vec<Vec<u32>>, LaunchStats) {
    let n_buckets = 1usize << s;
    // pass 1: histogram
    let mut counts = vec![0u32; n_buckets];
    for k in scalars {
        let b = k.window(window * s, s) as usize;
        if b != 0 {
            counts[b] += 1;
        }
    }
    // pass 2: exclusive prefix sum → row offsets (the transpose index)
    let mut offsets = vec![0u32; n_buckets + 1];
    for b in 0..n_buckets {
        offsets[b + 1] = offsets[b] + counts[b];
    }
    // pass 3: scatter into the transposed layout
    let mut buckets: Vec<Vec<u32>> = counts.iter().map(|&c| Vec::with_capacity(c as usize)).collect();
    for (i, k) in scalars.iter().enumerate() {
        let b = k.window(window * s, s) as usize;
        if b != 0 {
            buckets[b].push(i as u32);
        }
    }

    let n = scalars.len() as u64;
    let threads = n.min(gpu_threads).max(1);
    let per_thread = n.div_ceil(threads) as f64;
    let mut stats = LaunchStats::new(
        KernelProfile::new("cuzk-transpose", 32, 0, 256),
        threads,
    );
    stats.max_thread = ThreadCost {
        // histogram + scatter are two full passes; prefix sum is log-depth
        int_ops: per_thread * 10.0 + (n_buckets as f64 / threads as f64).ceil() * 8.0,
        global_bytes: per_thread * (32.0 + 8.0) * 2.0,
        barriers: (threads as f64).log2().ceil(),
        global_syncs: 2.0, // between the three passes
        ..ThreadCost::default()
    };
    stats.total = stats.max_thread.scale(threads as f64);

    let rec = LaunchRecorder::start("cuzk-transpose", 0);
    #[cfg(feature = "trace")]
    let mut rec = rec;
    #[cfg(feature = "trace")]
    if rec.active() {
        emit_transpose_trace(&mut rec, scalars, s, window, threads);
    }
    rec.commit();

    (buckets, stats)
}

/// Executes the cuZK-style MSM on `system`: windows round-robined over
/// GPUs, transpose-based scatter, SpMV-like bucket sum, **GPU**
/// bucket-reduce (the design choice DistMSM replaces).
///
/// # Panics
///
/// Panics on an empty instance.
pub fn execute<C: Curve>(
    instance: &MsmInstance<C>,
    system: &MultiGpuSystem,
    window_size: Option<u32>,
) -> CuZkReport<C> {
    assert!(!instance.is_empty(), "empty MSM instance");
    let cost_cfg = CostModelConfig::default();
    let model = EcKernelModel::new(C::Base::LIMBS32, PaddOptimizations::all());
    let dev = &system.devices[0];
    let resident = dev.resident_threads_per_sm(model.regs_per_thread(), 0, 256);
    let gpu_threads = (u64::from(resident) * u64::from(dev.sm_count)).max(1);

    // cuZK favours larger windows than DistMSM (its reduce is on-GPU)
    let s = window_size.unwrap_or(16).min(C::SCALAR_BITS);
    let n_windows = C::SCALAR_BITS.div_ceil(s);
    let n_gpus = system.n_gpus();

    let mut per_gpu = vec![0.0f64; n_gpus];
    let mut window_results = vec![XyzzPoint::<C>::identity(); n_windows as usize];
    for w in 0..n_windows {
        let gpu = (w as usize) % n_gpus;
        let (buckets, t_stats) = transpose_window(&instance.scalars, s, w, gpu_threads);
        per_gpu[gpu] += estimate_kernel_time(&system.devices[gpu], &t_stats, &cost_cfg).total();

        let tpb = threads_per_bucket(gpu_threads, buckets.len() as u64);
        let sum = bucket_sum(&instance.points, &buckets, tpb, &model, 256);
        per_gpu[gpu] += estimate_kernel_time(&system.devices[gpu], &sum.stats, &cost_cfg).total();

        let slice = Slice {
            gpu,
            window: w,
            bucket_lo: 0,
            bucket_hi: 1 << s,
        };
        let _ = slice;
        let (reduced, _) = bucket_reduce_serial(&sum.sums, 0);
        window_results[w as usize] = reduced;
        let r_stats = bucket_reduce_gpu_stats(
            1 << s,
            s,
            gpu_threads,
            &model,
            C::A_IS_ZERO,
            256,
        );
        per_gpu[gpu] += estimate_kernel_time(&system.devices[gpu], &r_stats, &cost_cfg).total();
    }
    let (result, _) = window_reduce(&window_results, s);
    // each GPU ships its round-robin share of window results to the
    // host, routed through the fabric (topology-aware on DGX presets)
    let point_bytes = 4.0 * C::Base::LIMBS32 as f64 * 4.0;
    let per_gpu_bytes: Vec<f64> = (0..n_gpus)
        .map(|g| {
            let windows = (u64::from(n_windows) + n_gpus as u64 - 1 - g as u64) / n_gpus as u64;
            windows as f64 * point_bytes
        })
        .collect();
    let total_s = per_gpu.iter().copied().fold(0.0, f64::max)
        + system.gather_to_host_time(&per_gpu_bytes);

    CuZkReport {
        result,
        window_size: s,
        total_s,
    }
}

/// Thread bits of the `HIST` namespace: thread `t` of bucket `b` owns
/// the private histogram column cell `HIST + (b << HIST_BITS | t)`.
pub const HIST_BITS: u32 = 20;

/// Slot bits of the `CELL` namespace: the transposed cell of slot
/// `slot` in bucket `b` lives at `CELL + (b << CELL_BITS | slot)`.
pub const CELL_BITS: u32 = 24;

/// Symbolic IR of the cuZK histogram pass: bucket `bkt` of `NB` owns
/// the per-thread column band `[bkt·2^20, bkt·2^20 + T)` of the `HIST`
/// namespace, `T` the thread count. Each thread writes only its own
/// column cell, so the pass needs no atomics — which is exactly the
/// property the band disjointness (under `2^20 − T ≥ 0`) certifies.
pub fn histogram_ir() -> PlanIr {
    let band = Poly::con(1 << HIST_BITS);
    let bkt = Poly::var("bkt");
    PlanIr {
        name: "cuzk-histogram".into(),
        space: (
            IndexExpr::con(0),
            IndexExpr::Poly(Poly::var("NB").mul(&band)),
        ),
        cover: false,
        families: vec![RegionFamily {
            writer: "bucket-column",
            param: "bkt",
            count: IndexExpr::var("NB"),
            region: Region::Interval {
                lo: IndexExpr::Poly(bkt.mul(&band)),
                hi: IndexExpr::Poly(bkt.mul(&band).add(&Poly::var("T"))),
            },
        }],
        bounds: vec![SymBound::at_least("NB", 1), SymBound::at_least("T", 1)],
        // T ≤ 2^20: thread ids never reach the bucket shift.
        assumptions: vec![band.sub(&Poly::var("T"))],
    }
}

/// Symbolic IR of the cuZK transpose scatter: bucket `bkt` writes its
/// sorted cells into the stride-`2^24` band `[bkt·2^24, bkt·2^24 + S)`
/// of the `CELL` namespace, `S` bounding per-bucket occupancy. The
/// prefix-sum offsets claim unique slots, so disjoint bands (under
/// `2^24 − S ≥ 0`) make the whole scatter conflict-free.
pub fn transpose_cell_ir() -> PlanIr {
    let band = Poly::con(1 << CELL_BITS);
    let bkt = Poly::var("bkt");
    PlanIr {
        name: "cuzk-transpose".into(),
        space: (
            IndexExpr::con(0),
            IndexExpr::Poly(Poly::var("NB").mul(&band)),
        ),
        cover: false,
        families: vec![RegionFamily {
            writer: "bucket",
            param: "bkt",
            count: IndexExpr::var("NB"),
            region: Region::Interval {
                lo: IndexExpr::Poly(bkt.mul(&band)),
                hi: IndexExpr::Poly(bkt.mul(&band).add(&Poly::var("S"))),
            },
        }],
        bounds: vec![SymBound::at_least("NB", 1), SymBound::at_least("S", 1)],
        assumptions: vec![band.sub(&Poly::var("S"))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ec::curves::Bn254G1;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn cuzk_is_correct() {
        let mut rng = StdRng::seed_from_u64(900);
        let inst = MsmInstance::<Bn254G1>::random(200, &mut rng);
        for gpus in [1usize, 4] {
            let rep = execute(&inst, &MultiGpuSystem::dgx_a100(gpus), Some(8));
            assert_eq!(rep.result, inst.reference_result(), "gpus={gpus}");
        }
    }

    #[test]
    fn transpose_matches_scatter() {
        use crate::scatter::scatter_naive;
        let mut rng = StdRng::seed_from_u64(901);
        let inst = MsmInstance::<Bn254G1>::random(512, &mut rng);
        let s = 7;
        let (buckets, stats) = transpose_window(&inst.scalars, s, 2, 1 << 16);
        let slice = Slice {
            gpu: 0,
            window: 2,
            bucket_lo: 0,
            bucket_hi: 1 << s,
        };
        let naive = scatter_naive(&inst.scalars, s, &slice, 1 << 16, 4.0);
        for (a, b) in buckets.iter().zip(&naive.buckets) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        // the transpose issues no global atomics at all
        assert_eq!(stats.total.global_atomics, 0.0);
    }

    #[test]
    fn cuzk_scales_to_eight_but_reduce_limits_it() {
        // cuZK's own claim: near-linear to 8 GPUs; DistMSM's critique:
        // beyond that, the on-GPU reduce stops shrinking.
        let mut rng = StdRng::seed_from_u64(902);
        let inst = MsmInstance::<Bn254G1>::random(2048, &mut rng);
        let t1 = execute(&inst, &MultiGpuSystem::dgx_a100(1), Some(10)).total_s;
        let t8 = execute(&inst, &MultiGpuSystem::dgx_a100(8), Some(10)).total_s;
        assert!(t1 / t8 > 3.0, "8-GPU speedup {}", t1 / t8);
    }
}
