//! One-import surface for typical engine users:
//! `use distmsm::prelude::*;` brings in the curves, the instance type,
//! the engine with its configuration builder, the report trait, and the
//! error/fault vocabulary — everything the quickstart example touches,
//! nothing internal.

pub use crate::config::{ConfigError, DistMsmConfigBuilder};
pub use crate::engine::{DistMsm, DistMsmConfig, MsmError, MsmReport, PhaseBreakdown};
pub use crate::report::{Phase, Report};
pub use crate::scatter::ScatterKind;
pub use crate::supervisor::{FaultObservation, RecoveryReport, RetryPolicy};
pub use distmsm_comms::CollectiveStrategy;
pub use distmsm_ec::curves::{Bls12381G1, Bn254G1, Mnt4753G1};
pub use distmsm_ec::{Curve, MsmInstance, XyzzPoint};
pub use distmsm_gpu_sim::{FaultEvent, FaultKind, FaultPlan, LinkFault, MultiGpuSystem};
