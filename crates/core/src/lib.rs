//! # distmsm — multi-scalar multiplication for distributed multi-GPU systems
//!
//! A from-scratch reproduction of **DistMSM** (Ji, Zhang, Xu, Ju:
//! *Accelerating Multi-Scalar Multiplication for Efficient Zero Knowledge
//! Proofs with Multi-GPU Systems*, ASPLOS 2024) on a simulated multi-GPU
//! substrate. The algorithms execute bit-exactly on host threads; timing
//! comes from the metered cost model in `distmsm-gpu-sim`.
//!
//! The paper's pieces map to modules:
//!
//! | Paper | Module |
//! |---|---|
//! | §3.1 per-thread workload model, window-size choice | [`workload`] |
//! | §3.2.1 three-level hierarchical bucket scatter | [`scatter`] |
//! | §3.2.2 multi-thread-per-bucket bucket-sum, flexible slicing | [`bucket_sum`], [`plan`] |
//! | §3.2.3 CPU bucket-reduce | [`reduce`] |
//! | Figure 1 end-to-end engine | [`engine`] |
//! | §5 baselines ("BG", NO-OPT) | [`baseline`] |
//! | paper-scale (2^22–2^28) timing | [`analytic`] |
//! | signed-digit recoding (adopted technique, §6) | [`signed`] |
//! | precomputation tables + merged windows (§2.3.1) | [`precompute`] |
//! | cuZK-style sparse-matrix MSM (baseline #2) | [`cuzk`] |
//! | multi-MSM pipelining (§3.2.3) | [`pipeline`] |
//! | topology-routed gathers and collectives (multi-node scaling) | [`comm`] |
//! | fault supervision, re-planning, verified recovery | [`supervisor`] + [`engine`] |
//!
//! Cross-cutting surfaces: [`prelude`] (one-import user API), [`config`]
//! (the validating [`DistMsmConfigBuilder`]), [`report`] (the unified
//! [`Report`] trait over engine/recovery/comms timing artefacts).
//!
//! ## Example
//!
//! ```
//! use distmsm::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let instance = MsmInstance::<Bn254G1>::random(256, &mut rng);
//! let config = DistMsmConfig::builder().window_size(8).build()?;
//! let engine = DistMsm::with_config(MultiGpuSystem::dgx_a100(8), config);
//! let report = engine.execute(&instance)?;
//! assert_eq!(report.result, instance.reference_result());
//! println!("simulated time: {:.3} ms", report.total_s * 1e3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytic;
pub mod baseline;
pub mod bucket_sum;
pub mod checkpoint;
pub mod comm;
pub mod config;
pub mod cuzk;
pub mod engine;
pub mod pipeline;
pub mod plan;
pub mod precompute;
pub mod prelude;
pub mod reduce;
pub mod report;
pub mod scatter;
pub mod signed;
pub mod supervisor;
pub mod workload;

pub use analytic::{estimate_best_baseline, estimate_distmsm, CurveDesc, MsmEstimate};
pub use baseline::BestGpuBaseline;
pub use checkpoint::{
    estimate_checkpoint_recovery, CheckpointConfig, CheckpointError, CheckpointRecoveryEstimate,
    WindowCheckpoint, WindowedMsmReport,
};
pub use config::{ConfigError, DistMsmConfigBuilder};
pub use distmsm_comms::CollectiveStrategy;
pub use engine::{partition_plan, window_shape, DistMsm, DistMsmConfig, MsmError, MsmReport, PhaseBreakdown};
pub use plan::{
    fleet_replace_ir, fleet_shard_ir, partition_ir, plan_slices_with_ir, replace_assignments,
    replan_ir, shard_points, shard_points_with_ir, window_merge_ir,
};
pub use report::{Phase, Report};
pub use scatter::ScatterKind;
pub use supervisor::{FaultObservation, RecoveryReport, RetryPolicy};
pub use workload::WorkloadParams;
