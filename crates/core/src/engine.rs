//! The DistMSM execution engine.
//!
//! Orchestrates the full pipeline of Figure 1 over a simulated
//! [`MultiGpuSystem`]: window/bucket-slice planning, per-GPU bucket
//! scatter and bucket-sum (executed functionally, in parallel on host
//! threads), CPU (or GPU) bucket-reduce, and window-reduce — composing
//! the metered kernel statistics into a wall-time estimate.

use crate::bucket_sum::{bucket_sum, threads_per_bucket};
use crate::plan::{plan_slices, replan_slices, Slice};
use crate::reduce::{
    bucket_reduce_gpu_stats, bucket_reduce_serial, cpu_seconds_for_padds, window_reduce,
};
use crate::scatter::{
    scatter_hierarchical, scatter_naive, ScatterConfig, ScatterKind, ScatterOutcome,
    SharedMemoryOverflow,
};
use crate::supervisor::{
    rlc_coefficients, rlc_fold, FaultObservation, RecoveryReport, RetryPolicy,
    RLC_OPS_PER_PARTIAL,
};
use distmsm_comms::{
    gather_to_host, run_collective, CollectiveStrategy, CommConfig, CommSchedule,
};
use distmsm_ec::{Curve, FieldElement, MsmInstance, XyzzPoint};
use distmsm_gpu_sim::{
    estimate_kernel_time, CostModelConfig, FaultPlan, LaunchStats, MultiGpuSystem,
};
use distmsm_kernel::{EcKernelModel, PaddOptimizations};

/// Window/bucket shape of a plan: `(n_windows, n_buckets)` for scalar
/// width `scalar_bits`, window size `s`, and digit encoding. Signed
/// digits add one carry window and halve the bucket count (§3.1); this
/// is the single source of truth the engine, the analytic model, and
/// the `distmsm-analyze verify` grounding pass all share.
pub fn window_shape(scalar_bits: u32, s: u32, signed_digits: bool) -> (u32, u32) {
    if signed_digits {
        (scalar_bits.div_ceil(s) + 1, (1u32 << (s - 1)) + 1)
    } else {
        (scalar_bits.div_ceil(s), 1u32 << s)
    }
}

/// The engine's partition plan plus its symbolic description: the
/// concrete [`Slice`]s of [`plan_slices`], the
/// [`PlanIr`](distmsm_kernel::ir::PlanIr)
/// (quota tiling over the flat `W·B` bucket range) and the concrete
/// symbol environment for grounding. This is the exact planning path
/// [`DistMsm::execute`] runs — exposed so `distmsm-analyze verify` can
/// prove and cross-check the very plan the engine would execute.
pub fn partition_plan(
    scalar_bits: u32,
    s: u32,
    signed_digits: bool,
    n_gpus: usize,
) -> (
    Vec<Slice>,
    distmsm_kernel::ir::PlanIr,
    std::collections::BTreeMap<distmsm_kernel::ir::Sym, i128>,
) {
    let (n_windows, n_buckets) = window_shape(scalar_bits, s, signed_digits);
    crate::plan::plan_slices_with_ir(n_windows, n_buckets, n_gpus)
}

/// Seed of the RLC self-check coefficient stream (device and host derive
/// the same coefficients without communicating them).
const RLC_SEED: u64 = 0x0005_e1fc_4ec4_u64;

/// Per-GPU busy time above this multiple of the median flags the GPU as
/// a straggler in the recovery report.
const STRAGGLER_DETECT_RATIO: f64 = 1.25;

/// Engine configuration.
///
/// Marked `#[non_exhaustive]`: construct it through
/// [`DistMsmConfig::builder`] / [`DistMsmConfig::to_builder`] (see
/// [`crate::config`]), which also validate the combination. Struct
/// literals and functional-update syntax are reserved to this crate.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct DistMsmConfig {
    /// Window size `s`; `None` selects the §3.1 optimum for the system.
    pub window_size: Option<u32>,
    /// Scatter implementation; `None` selects hierarchical whenever the
    /// slice fits in shared memory (DistMSM's choice), naive otherwise.
    pub scatter: Option<ScatterKind>,
    /// Hierarchical-scatter tuning.
    pub scatter_cfg: ScatterConfig,
    /// PADD-kernel optimisation set.
    pub kernel_opts: PaddOptimizations,
    /// Run bucket-reduce on the CPU (§3.2.3) instead of the GPU.
    pub bucket_reduce_on_cpu: bool,
    /// Thread-block size of the bucket-sum kernel.
    pub block_size: u32,
    /// Model the CPU reduce as pipelined with GPU work (§3.2.3).
    pub pipelined: bool,
    /// Stream packed 4-byte per-window coefficient views (DistMSM's
    /// choice; charged a one-time repacking pre-pass) instead of reading
    /// full λ-bit scalars in every scatter.
    pub packed_coefficients: bool,
    /// Recode scalars into signed digits (§6's adopted technique): halves
    /// every window's bucket count (`2^s → 2^{s−1}+1`) at the cost of one
    /// extra carry window.
    pub signed_digits: bool,
    /// How per-GPU window partials are combined when bucket-reduce runs
    /// on the GPUs: the reduction executes bit-exactly over EC points
    /// through `distmsm-comms` and its transfer cost is routed through
    /// the system's interconnect (topology-aware on DGX presets).
    pub collective: CollectiveStrategy,
    /// Deterministic fault-injection plan. Non-empty plans turn the
    /// supervisor on: window-level checkpoints, the RLC self-check,
    /// bounded retries and degraded-mode re-planning, all charged
    /// through the cost model and reported in [`MsmReport::recovery`].
    /// The empty plan (default) executes exactly the fault-free path.
    pub fault_plan: FaultPlan,
    /// Bounded-retry policy the supervisor charges when probing faulted
    /// devices and re-shipping corrupted partials.
    pub retry: RetryPolicy,
    /// Optional straggler SLA: when a GPU's busy time exceeds this
    /// multiple of the median, execution fails with
    /// [`MsmError::Straggler`] instead of merely recording the skew.
    pub straggler_sla: Option<f64>,
}

impl Default for DistMsmConfig {
    fn default() -> Self {
        Self {
            window_size: None,
            scatter: None,
            scatter_cfg: ScatterConfig::default(),
            kernel_opts: PaddOptimizations::all(),
            bucket_reduce_on_cpu: true,
            block_size: 256,
            pipelined: true,
            packed_coefficients: true,
            signed_digits: false,
            collective: CollectiveStrategy::HostGather,
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            straggler_sla: None,
        }
    }
}

/// Wall-time breakdown of one MSM, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Bucket-scatter across all GPUs (max over GPUs).
    pub scatter_s: f64,
    /// Bucket-sum across all GPUs (max over GPUs).
    pub bucket_sum_s: f64,
    /// Bucket-reduce (CPU or GPU).
    pub bucket_reduce_s: f64,
    /// Window-reduce on the CPU.
    pub window_reduce_s: f64,
    /// Communication: the device→host gather of bucket partials (CPU
    /// reduce path) or the inter-GPU collective over window partials
    /// (GPU reduce path), routed through the system's fabric.
    pub transfer_s: f64,
}

/// Result of one (simulated) MSM execution.
#[derive(Clone, Debug)]
pub struct MsmReport<C: Curve> {
    /// The MSM value (bit-exact, verified against references in tests).
    pub result: XyzzPoint<C>,
    /// Window size used.
    pub window_size: u32,
    /// Number of windows.
    pub n_windows: u32,
    /// Time per phase.
    pub phases: PhaseBreakdown,
    /// Estimated wall time in seconds.
    pub total_s: f64,
    /// Per-GPU busy time in seconds.
    pub per_gpu_s: Vec<f64>,
    /// All metered kernel launches (for breakdown harnesses).
    pub launches: Vec<LaunchStats>,
    /// The communication schedule behind `phases.transfer_s` (`None`
    /// for reports composed without a fabric, e.g. merged baselines).
    pub comm: Option<CommSchedule>,
    /// What the supervisor saw and what recovery cost. `Some` whenever
    /// execution ran supervised (a non-empty fault plan), even if every
    /// fault was recovered; `None` on the unsupervised fast path.
    pub recovery: Option<RecoveryReport>,
}

/// Errors an MSM execution can report.
///
/// Marked `#[non_exhaustive]`: fault taxonomies grow, and adding a
/// variant must not be a breaking change for downstream matchers.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum MsmError {
    /// Hierarchical scatter ran out of shared memory (paper: `s > 14`).
    ScatterOverflow(SharedMemoryOverflow),
    /// The instance was empty.
    EmptyInstance,
    /// A planned slice produced no outcome and no recovery path claimed
    /// it — the typed replacement for what used to be a panic.
    SliceLost {
        /// GPU the slice was planned on.
        gpu: usize,
        /// Window the slice belongs to.
        window: u32,
    },
    /// Devices were lost and no survivor remained to re-plan onto.
    DeviceLost {
        /// Every device declared lost, in detection order.
        devices: Vec<usize>,
    },
    /// The fabric is degraded beyond use (no GPU can reach the host).
    LinkDown {
        /// Human-readable description of the partition.
        detail: String,
    },
    /// A GPU exceeded the configured straggler SLA.
    Straggler {
        /// The straggling device.
        device: usize,
        /// Its busy time as a multiple of the median GPU's.
        slowdown: f64,
    },
    /// A transient fault persisted past the retry budget.
    RetriesExhausted {
        /// Device whose shipment kept failing.
        device: usize,
        /// Work-event index of the failing shipment.
        event: u64,
    },
}

impl core::fmt::Display for MsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ScatterOverflow(e) => write!(f, "{e}"),
            Self::EmptyInstance => write!(f, "MSM instance has no points"),
            Self::SliceLost { gpu, window } => {
                write!(f, "slice of window {window} on GPU {gpu} was lost without recovery")
            }
            Self::DeviceLost { devices } => {
                write!(f, "devices {devices:?} lost with no survivors to re-plan onto")
            }
            Self::LinkDown { detail } => write!(f, "interconnect down: {detail}"),
            Self::Straggler { device, slowdown } => {
                write!(f, "GPU {device} straggles at {slowdown:.2}x the median busy time")
            }
            Self::RetriesExhausted { device, event } => {
                write!(f, "retry budget exhausted re-shipping event {event} of GPU {device}")
            }
        }
    }
}

impl std::error::Error for MsmError {}

impl MsmError {
    /// True for errors the supervisor classifies as *faults* — conditions
    /// a service-level retry (a later execution attempt) might clear —
    /// as opposed to configuration or input errors that would recur
    /// identically.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            Self::SliceLost { .. }
                | Self::DeviceLost { .. }
                | Self::LinkDown { .. }
                | Self::Straggler { .. }
                | Self::RetriesExhausted { .. }
        )
    }

    /// The devices this error implicates, as indices into the system the
    /// failing engine ran on. Device-health consumers (the
    /// `distmsm-service` circuit breakers) charge these devices with the
    /// failure; an empty vector means the error names no specific device
    /// (a total fabric partition, a config/input error) and the caller
    /// decides how widely to spread the blame.
    pub fn implicated_devices(&self) -> Vec<usize> {
        match self {
            Self::SliceLost { gpu, .. } => vec![*gpu],
            Self::DeviceLost { devices } => devices.clone(),
            Self::Straggler { device, .. } | Self::RetriesExhausted { device, .. } => {
                vec![*device]
            }
            _ => Vec::new(),
        }
    }
}

/// The DistMSM engine bound to a system description.
#[derive(Clone, Debug)]
pub struct DistMsm {
    system: MultiGpuSystem,
    config: DistMsmConfig,
    cost_cfg: CostModelConfig,
}

impl DistMsm {
    /// Creates an engine with the default configuration.
    pub fn new(system: MultiGpuSystem) -> Self {
        Self::with_config(system, DistMsmConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(system: MultiGpuSystem, config: DistMsmConfig) -> Self {
        Self {
            system,
            config,
            cost_cfg: CostModelConfig::default(),
        }
    }

    /// The system this engine runs on.
    pub fn system(&self) -> &MultiGpuSystem {
        &self.system
    }

    /// The active configuration.
    pub fn config(&self) -> &DistMsmConfig {
        &self.config
    }

    /// Effective concurrent threads per GPU for a kernel model.
    fn gpu_threads(&self, model: &EcKernelModel) -> u64 {
        let d = &self.system.devices[0];
        let resident = d.resident_threads_per_sm(
            model.regs_per_thread(),
            model.shared_mem_per_block(self.config.block_size),
            self.config.block_size,
        );
        (u64::from(resident) * u64::from(d.sm_count)).max(1)
    }

    /// Chooses the window size: explicit config, or the minimiser of the
    /// engine's own cost estimate (which — unlike the raw §3.1 op count —
    /// accounts for the CPU bucket-reduce, pushing multi-GPU runs to the
    /// small windows of §3.2).
    pub fn window_size_for(&self, n: usize, curve: &crate::analytic::CurveDesc) -> u32 {
        self.config.window_size.unwrap_or_else(|| {
            crate::analytic::estimate_distmsm(n as u64, curve, &self.system, &self.config)
                .window_size
        })
    }

    /// Job-level admission estimate: the analytic cost-model projection
    /// for an `n`-point MSM on this engine's system and configuration,
    /// in simulated seconds, without executing anything. Service
    /// front-ends use this to price deadline feasibility before
    /// admitting a job (`distmsm-service`'s
    /// `AdmissionError::DeadlineInfeasible`).
    pub fn estimate_seconds(&self, n: usize, curve: &crate::analytic::CurveDesc) -> f64 {
        crate::analytic::estimate_distmsm(n as u64, curve, &self.system, &self.config).total_s
    }

    /// Executes an MSM, returning the verified-exact result and the
    /// simulated timing. Equivalent to [`Self::execute_attempt`] on
    /// attempt 0.
    ///
    /// # Errors
    ///
    /// [`MsmError::ScatterOverflow`] when a forced hierarchical scatter
    /// does not fit in shared memory; [`MsmError::EmptyInstance`] for
    /// zero-length input; under a fault plan, the fault-class errors of
    /// [`MsmError`] when recovery is impossible (no survivors, total
    /// fabric partition, exhausted retry budget, SLA-breaching
    /// straggler).
    pub fn execute<C: Curve>(&self, instance: &MsmInstance<C>) -> Result<MsmReport<C>, MsmError> {
        self.execute_attempt(instance, 0)
    }

    /// Executes an MSM as service-level attempt `attempt`. Fault-plan
    /// events are attempt-scoped: an event planned for attempt 0 stays
    /// quiet on attempt 1, so a caller-level retry (e.g. the Groth16
    /// prover after [`MsmError::is_fault`]) models a transient fault
    /// clearing while re-running the same attempt reproduces it
    /// bit-for-bit.
    pub fn execute_attempt<C: Curve>(
        &self,
        instance: &MsmInstance<C>,
        attempt: u32,
    ) -> Result<MsmReport<C>, MsmError> {
        if instance.is_empty() {
            return Err(MsmError::EmptyInstance);
        }
        let plan = &self.config.fault_plan;
        let supervised = !plan.is_empty();

        // Link faults damage a copy of the system; every route and
        // schedule below re-prices against the degraded fabric.
        let degraded_sys;
        let system: &MultiGpuSystem = if plan.link_faults.is_empty() {
            &self.system
        } else {
            degraded_sys = self.system.degraded(&plan.link_faults);
            &degraded_sys
        };
        let n_gpus = system.n_gpus();
        let reachable = system.ranks_reaching_host();
        if reachable.is_empty() {
            return Err(MsmError::LinkDown {
                detail: "no GPU can reach the master host".into(),
            });
        }
        let link_lost: Vec<usize> =
            (0..n_gpus).filter(|g| !reachable.contains(g)).collect();

        let model = EcKernelModel::new(C::Base::LIMBS32, self.config.kernel_opts);
        let gpu_threads = self.gpu_threads(&model);
        let desc = crate::analytic::CurveDesc {
            name: C::NAME,
            limbs32: C::Base::LIMBS32,
            scalar_bits: C::SCALAR_BITS,
            a_is_zero: C::A_IS_ZERO,
        };
        let s = self.window_size_for(instance.len(), &desc);
        let (n_windows, n_buckets) = window_shape(C::SCALAR_BITS, s, self.config.signed_digits);
        let slices = plan_slices(n_windows, n_buckets, n_gpus);
        // signed-digit recoding happens once, up front (like the packed
        // coefficient pre-pass; same memory-bound cost class)
        let digits: Option<Vec<Vec<i32>>> = self.config.signed_digits.then(|| {
            instance
                .scalars
                .iter()
                .map(|k| crate::signed::recode_signed(k, s, C::SCALAR_BITS))
                .collect()
        });

        // Per-device work-event counters: one event per scheduled slice,
        // in plan order — the deterministic coordinate fault plans key
        // on, independent of host-thread scheduling.
        let mut next_event = vec![0u64; n_gpus];
        let mut assign = |sl: Slice| -> (Slice, u64) {
            let e = next_event[sl.gpu];
            next_event[sl.gpu] += 1;
            (sl, e)
        };
        let jobs: Vec<(Slice, u64)> = slices.iter().copied().map(&mut assign).collect();

        let mut recovery = RecoveryReport {
            n_windows,
            n_buckets,
            ..RecoveryReport::default()
        };
        let mut dead: Vec<usize> = link_lost.clone();
        for &g in &link_lost {
            recovery.faults.push(FaultObservation {
                device: g,
                event: 0,
                kind: "link-down".into(),
            });
        }

        // ---- primary execution: every job a live device can still run ---
        let is_lost =
            |dead: &[usize], sl: &Slice, e: u64| -> bool {
                dead.contains(&sl.gpu)
                    || plan
                        .fail_stop_event(sl.gpu, attempt)
                        .is_some_and(|at| e >= at)
            };
        let (live, lost): (Jobs, Jobs) =
            jobs.iter().partition(|(sl, e)| !is_lost(&dead, sl, *e));
        self.note_fail_stops(&lost, &mut dead, &mut recovery);
        let done = self.run_slices(instance, &digits, s, gpu_threads, &model, &live)?;

        // ---- supervisor: probe, declare lost, re-plan, recompute --------
        let mut recovered: Vec<SliceOutcome<C>> = Vec::new();
        let mut lost_slices: Vec<Slice> = lost.iter().map(|(sl, _)| *sl).collect();
        let mut rounds = 0usize;
        while !lost_slices.is_empty() {
            // bounded probes of each newly lost device, charged as
            // exponential backoff, before the supervisor declares it lost
            for &g in &dead {
                if !recovery.lost_gpus.contains(&g) {
                    recovery.retries += self.config.retry.max_retries;
                    recovery.backoff_s += self.config.retry.total_backoff();
                    recovery.lost_gpus.push(g);
                }
            }
            let survivors: Vec<usize> =
                (0..n_gpus).filter(|g| !dead.contains(g)).collect();
            if survivors.is_empty() || rounds > n_gpus {
                return Err(MsmError::DeviceLost {
                    devices: recovery.lost_gpus.clone(),
                });
            }
            // checkpoint-time straggler detection steers the re-plan: a
            // survivor already running slow would bottleneck the serial
            // recovery phase, so prefer full-speed survivors whenever at
            // least one remains (a straggler is still better than no
            // device at all)
            let full_speed: Vec<usize> = survivors
                .iter()
                .copied()
                .filter(|&g| plan.straggler_from(g, attempt).is_none())
                .collect();
            let targets = if full_speed.is_empty() { &survivors } else { &full_speed };
            let replanned = replan_slices(&lost_slices, targets);
            recovery.replanned.extend(replanned.iter().copied());
            let rejobs: Vec<(Slice, u64)> =
                replanned.into_iter().map(&mut assign).collect();
            // survivors may fail-stop mid-recovery (cascading faults):
            // their recovery events are filtered exactly like primaries
            let (rlive, rlost): (Jobs, Jobs) =
                rejobs.iter().partition(|(sl, e)| !is_lost(&dead, sl, *e));
            self.note_fail_stops(&rlost, &mut dead, &mut recovery);
            // a re-planned slice lost to a cascading failure is
            // superseded by the next round's re-plan: drop it from the
            // log so `replanned` records only work that actually ran
            recovery
                .replanned
                .retain(|s| !rlost.iter().any(|(lost, _)| lost == s));
            recovered.extend(self.run_slices(instance, &digits, s, gpu_threads, &model, &rlive)?);
            lost_slices = rlost.into_iter().map(|(sl, _)| sl).collect();
            rounds += 1;
        }
        recovery.completed = done
            .iter()
            .chain(&recovered)
            .map(|oc| oc.slice)
            .collect();

        // ---- compose per-GPU times --------------------------------------
        // Straggler faults scale the affected device's kernel times from
        // their trigger event on; recovery work is accounted separately
        // as a serial recovery phase (recompute_s), not in the primary
        // makespan.
        let straggle = |g: usize, e: u64| -> f64 {
            plan.straggler_from(g, attempt)
                .map_or(1.0, |(at, slow)| if e >= at { slow } else { 1.0 })
        };
        let prepass = if self.config.packed_coefficients {
            crate::scatter::scalar_prepass_seconds(
                instance.len() as u64,
                u64::from(C::SCALAR_BITS.div_ceil(8)),
                self.system.devices[0].mem_bandwidth_gbps,
                n_gpus,
            )
        } else {
            0.0
        };
        let mut scatter_per_gpu = vec![prepass; n_gpus];
        let mut sum_per_gpu = vec![0.0f64; n_gpus];
        let mut rec_per_gpu = vec![0.0f64; n_gpus];
        let mut launches = Vec::new();
        for oc in &done {
            let dev = &self.system.devices[oc.slice.gpu];
            let f = straggle(oc.slice.gpu, oc.event);
            scatter_per_gpu[oc.slice.gpu] +=
                f * estimate_kernel_time(dev, &oc.scatter_stats, &self.cost_cfg).total();
            sum_per_gpu[oc.slice.gpu] +=
                f * estimate_kernel_time(dev, &oc.sum.stats, &self.cost_cfg).total();
            launches.push(oc.scatter_stats.clone());
            launches.push(oc.sum.stats.clone());
        }
        for oc in &recovered {
            let dev = &self.system.devices[oc.slice.gpu];
            let f = straggle(oc.slice.gpu, oc.event);
            rec_per_gpu[oc.slice.gpu] += f
                * (estimate_kernel_time(dev, &oc.scatter_stats, &self.cost_cfg).total()
                    + estimate_kernel_time(dev, &oc.sum.stats, &self.cost_cfg).total());
            launches.push(oc.scatter_stats.clone());
            launches.push(oc.sum.stats.clone());
        }

        // ---- bucket-reduce ----------------------------------------------
        // group slices per window, reduce each slice with its offset, and
        // merge (slices of one window compose additively). On the CPU
        // path the host holds every partial (gathered below); on the GPU
        // path each GPU keeps its own window partials, merged by the
        // configured collective.
        let all_done: Vec<&SliceOutcome<C>> = done.iter().chain(&recovered).collect();
        let primary_count = done.len();
        let mut contribs: Vec<(XyzzPoint<C>, u64)> = Vec::with_capacity(all_done.len());
        for oc in &all_done {
            contribs.push(bucket_reduce_serial(&oc.sum.sums, oc.slice.bucket_lo));
        }

        // ---- RLC self-check against silent corruption -------------------
        // Each device folds Σ rᵢ·wᵢ over the partials it computed; the
        // host folds the same combination over what it received. Planned
        // bit-flips corrupt the shipped copy (modelled as a sign flip);
        // a mismatch pins the corrupted shipments, which are re-shipped
        // under the retry budget.
        if supervised {
            let coeffs = rlc_coefficients(RLC_SEED, all_done.len());
            let true_vals: Vec<XyzzPoint<C>> = contribs.iter().map(|c| c.0).collect();
            let recv_vals: Vec<XyzzPoint<C>> = all_done
                .iter()
                .zip(&true_vals)
                .map(|(oc, w)| {
                    if plan.bit_flip_events(oc.slice.gpu, attempt).contains(&oc.event) {
                        w.neg()
                    } else {
                        *w
                    }
                })
                .collect();
            let device_sum = rlc_fold(&true_vals, &coeffs);
            let host_sum = rlc_fold(&recv_vals, &coeffs);
            if device_sum != host_sum {
                for (oc, (t, r)) in all_done.iter().zip(true_vals.iter().zip(&recv_vals)) {
                    if t != r {
                        if self.config.retry.max_retries == 0 {
                            return Err(MsmError::RetriesExhausted {
                                device: oc.slice.gpu,
                                event: oc.event,
                            });
                        }
                        recovery.retries += 1;
                        recovery.backoff_s += self.config.retry.backoff_for(0);
                        recovery.faults.push(FaultObservation {
                            device: oc.slice.gpu,
                            event: oc.event,
                            kind: "bit-flip".into(),
                        });
                    }
                }
            }
            // host side of the check: one 64-bit scalar-mul fold per
            // received partial, every supervised run (the guard is paid
            // whether or not corruption occurs)
            recovery.self_check_s = cpu_seconds_for_padds(
                RLC_OPS_PER_PARTIAL * all_done.len() as u64,
                &model,
                self.system.cpu.int_ops_per_sec,
            );
        }

        // the fold below uses the verified (re-shipped) partials
        let mut window_results = vec![XyzzPoint::<C>::identity(); n_windows as usize];
        let mut gpu_partials: Vec<Vec<XyzzPoint<C>>> =
            vec![vec![XyzzPoint::identity(); n_windows as usize]; n_gpus];
        let mut cpu_padds: u64 = 0;
        let mut gpu_reduce_per_gpu = vec![0.0f64; n_gpus];
        for (i, oc) in all_done.iter().enumerate() {
            let (w, ops) = contribs[i];
            if self.config.bucket_reduce_on_cpu {
                window_results[oc.slice.window as usize] =
                    window_results[oc.slice.window as usize].padd(&w);
                cpu_padds += ops + 1;
            } else {
                gpu_partials[oc.slice.gpu][oc.slice.window as usize] =
                    gpu_partials[oc.slice.gpu][oc.slice.window as usize].padd(&w);
                let stats = bucket_reduce_gpu_stats(
                    u64::from(oc.slice.len()),
                    s,
                    gpu_threads,
                    &model,
                    C::A_IS_ZERO,
                    self.config.block_size,
                );
                let dev = &self.system.devices[oc.slice.gpu];
                let t = straggle(oc.slice.gpu, oc.event)
                    * estimate_kernel_time(dev, &stats, &self.cost_cfg).total();
                if i < primary_count {
                    gpu_reduce_per_gpu[oc.slice.gpu] += t;
                } else {
                    rec_per_gpu[oc.slice.gpu] += t;
                }
                launches.push(stats);
            }
        }
        recovery.recompute_s = rec_per_gpu.iter().copied().fold(0.0, f64::max);

        // ---- communication ------------------------------------------------
        let point_bytes = 4.0 * C::Base::LIMBS32 as f64 * 4.0; // XYZZ coords
        let comm = if self.config.bucket_reduce_on_cpu {
            // every bucket partial crosses to the host before the CPU
            // reduce; under recovery the gather covers the slices that
            // actually completed, shipped by whoever computed them
            crate::comm::bucket_gather_schedule(
                recovery_or_plan_slices(supervised, &recovery, &slices),
                point_bytes,
                system,
            )
        } else if !recovery.lost_gpus.is_empty() {
            // a lost rank cannot take part in ring/tree exchanges, so the
            // collective degrades to a survivors-only host gather; the
            // dead ranks' pre-fault partials reached the host through the
            // window-level checkpoints charged below
            recovery.degraded_collective = true;
            let per: Vec<f64> = (0..n_gpus)
                .map(|g| {
                    if dead.contains(&g) {
                        0.0
                    } else {
                        f64::from(n_windows) * point_bytes
                    }
                })
                .collect();
            let mut sched =
                gather_to_host(&per, &system.fabric(), &CommConfig::default());
            sched.host_reduce_ops = (n_gpus as u64 - 1) * u64::from(n_windows);
            for (g, partial) in gpu_partials.iter().enumerate() {
                for (w, p) in partial.iter().enumerate() {
                    if g == 0 {
                        window_results[w] = *p;
                    } else {
                        window_results[w] = window_results[w].padd(p);
                    }
                }
            }
            sched
        } else {
            // per-GPU window partials merge across the fabric with real
            // PADDs; the host receives the reduced vector
            let (merged, sched) = run_collective(
                self.config.collective,
                &gpu_partials,
                |a, b| a.padd(b),
                &system.fabric(),
                &CommConfig::default(),
                point_bytes,
            );
            window_results = merged;
            sched
        };
        let transfer_s = comm.total_s;
        // host-side combines implied by the collective (e.g. host-gather
        // reduces (g−1)·n_windows pairs on the CPU)
        let comm_host_s =
            cpu_seconds_for_padds(comm.host_reduce_ops, &model, self.system.cpu.int_ops_per_sec);

        // window-level checkpoints: on the CPU-reduce path the gather
        // above already lands every partial on the host (the checkpoint
        // is free); the GPU-reduce path charges an extra partial gather
        // over the clean fabric (checkpoints stream while links are up)
        if supervised && !self.config.bucket_reduce_on_cpu {
            recovery.checkpoint_s = self
                .system
                .gather_to_host_time(&vec![f64::from(n_windows) * point_bytes; n_gpus]);
        }

        // ---- window-reduce ------------------------------------------------
        let (result, wr_ops) = window_reduce(&window_results, s);

        // ---- timing composition -------------------------------------------
        let cpu_reduce_s = cpu_seconds_for_padds(cpu_padds, &model, self.system.cpu.int_ops_per_sec);
        let window_reduce_s =
            cpu_seconds_for_padds(wr_ops, &model, self.system.cpu.int_ops_per_sec);

        let per_gpu_s: Vec<f64> = (0..n_gpus)
            .map(|g| scatter_per_gpu[g] + sum_per_gpu[g] + gpu_reduce_per_gpu[g])
            .collect();
        let gpu_makespan = per_gpu_s.iter().copied().fold(0.0, f64::max);

        // ---- straggler detection ------------------------------------------
        // the supervisor watches per-GPU busy time against the median;
        // skew beyond the detection ratio is recorded, and beyond the
        // configured SLA it is an error
        if supervised {
            let mut busy: Vec<f64> = per_gpu_s
                .iter()
                .copied()
                .filter(|&t| t > 0.0)
                .collect();
            busy.sort_by(f64::total_cmp);
            if !busy.is_empty() {
                let median = busy[busy.len() / 2];
                if median > 0.0 {
                    for (g, &t) in per_gpu_s.iter().enumerate() {
                        let ratio = t / median;
                        if ratio > STRAGGLER_DETECT_RATIO {
                            recovery.stragglers.push((g, ratio));
                            recovery.faults.push(FaultObservation {
                                device: g,
                                event: plan
                                    .straggler_from(g, attempt)
                                    .map_or(0, |(at, _)| at),
                                kind: "straggler".into(),
                            });
                            if let Some(sla) = self.config.straggler_sla {
                                if ratio > sla {
                                    return Err(MsmError::Straggler {
                                        device: g,
                                        slowdown: ratio,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        let bucket_reduce_s = if self.config.bucket_reduce_on_cpu {
            cpu_reduce_s
        } else {
            gpu_reduce_per_gpu.iter().copied().fold(0.0, f64::max) + comm_host_s
        };

        let base_s = if self.config.bucket_reduce_on_cpu && self.config.pipelined {
            // §3.2.3: the CPU reduce streams behind the GPUs; only the
            // last window's reduce sits on the critical path.
            let tail = cpu_reduce_s / f64::from(n_windows.max(1));
            gpu_makespan.max(cpu_reduce_s) + transfer_s + tail + window_reduce_s
        } else {
            gpu_makespan + transfer_s + bucket_reduce_s + window_reduce_s
        };
        // recovery runs as a serial phase after detection: probes back
        // off, survivors recompute, the self-check and checkpoints guard
        let total_s = base_s + if supervised { recovery.recovery_s() } else { 0.0 };

        let report = MsmReport {
            result,
            window_size: s,
            n_windows,
            phases: PhaseBreakdown {
                scatter_s: scatter_per_gpu.iter().copied().fold(0.0, f64::max),
                bucket_sum_s: sum_per_gpu.iter().copied().fold(0.0, f64::max),
                bucket_reduce_s,
                window_reduce_s,
                transfer_s,
            },
            total_s,
            per_gpu_s,
            launches,
            comm: Some(comm),
            recovery: supervised.then_some(recovery),
        };
        #[cfg(feature = "telemetry")]
        self.emit_telemetry(
            &report,
            &done,
            &recovered,
            attempt,
            &TelemetryPhases {
                scatter_per_gpu: &scatter_per_gpu,
                sum_per_gpu: &sum_per_gpu,
                gpu_reduce_per_gpu: &gpu_reduce_per_gpu,
                rec_per_gpu: &rec_per_gpu,
                prepass,
                cpu_reduce_s,
                comm_host_s,
                gpu_makespan,
            },
        );
        Ok(report)
    }

    /// Lays the just-composed report out on the telemetry session's
    /// timeline, then advances the session clock by `total_s` so
    /// sequential MSMs line up end to end.
    ///
    /// The layout mirrors the timing composition above exactly — each
    /// phase category's aggregate over the emitted spans reproduces the
    /// corresponding [`PhaseBreakdown`] field (the TEL-001 analyze rule
    /// holds the trace to that) and the latest span ends at
    /// `clock + total_s`.
    #[cfg(feature = "telemetry")]
    #[allow(clippy::too_many_lines)] // one linear timeline layout pass
    fn emit_telemetry<C: Curve>(
        &self,
        report: &MsmReport<C>,
        done: &[SliceOutcome<C>],
        recovered: &[SliceOutcome<C>],
        attempt: u32,
        ph: &TelemetryPhases<'_>,
    ) {
        use distmsm_gpu_sim::telemetry::{device_span, fault_instant, kernel_span};
        use distmsm_telemetry::{session, Instant, Lane, Span};
        if !session::active() {
            return;
        }
        let t0 = session::clock_s();
        let n_gpus = ph.scatter_per_gpu.len();
        let plan = &self.config.fault_plan;
        let straggle = |g: usize, e: u64| -> f64 {
            plan.straggler_from(g, attempt)
                .map_or(1.0, |(at, slow)| if e >= at { slow } else { 1.0 })
        };
        let kernel_s = |oc: &SliceOutcome<C>, stats: &LaunchStats| -> f64 {
            straggle(oc.slice.gpu, oc.event)
                * estimate_kernel_time(&self.system.devices[oc.slice.gpu], stats, &self.cost_cfg)
                    .total()
        };

        // ---- device lanes: structural phase containers with kernel
        // children carrying the attributed categories ----
        for g in 0..n_gpus {
            let sc_end = t0 + ph.scatter_per_gpu[g];
            device_span(g, "scatter", "phase", t0, sc_end);
            if ph.prepass > 0.0 {
                device_span(g, "coeff-prepass", "scatter", t0, t0 + ph.prepass);
            }
            let mut cursor = t0 + ph.prepass;
            for oc in done.iter().filter(|oc| oc.slice.gpu == g) {
                let t = kernel_s(oc, &oc.scatter_stats);
                kernel_span(
                    g,
                    &format!(
                        "scatter:w{}[{},{})",
                        oc.slice.window, oc.slice.bucket_lo, oc.slice.bucket_hi
                    ),
                    "scatter",
                    cursor,
                    cursor + t,
                    &oc.scatter_stats,
                );
                cursor += t;
            }
            let su_end = sc_end + ph.sum_per_gpu[g];
            device_span(g, "bucket-sum", "phase", sc_end, su_end);
            let mut cursor = sc_end;
            for oc in done.iter().filter(|oc| oc.slice.gpu == g) {
                let t = kernel_s(oc, &oc.sum.stats);
                kernel_span(
                    g,
                    &format!(
                        "bucket-sum:w{}[{},{})",
                        oc.slice.window, oc.slice.bucket_lo, oc.slice.bucket_hi
                    ),
                    "bucket-sum",
                    cursor,
                    cursor + t,
                    &oc.sum.stats,
                );
                cursor += t;
            }
        }

        // ---- fabric lane: the comm schedule's collective + steps ----
        let pipelined_cpu = self.config.bucket_reduce_on_cpu && self.config.pipelined;
        let fabric_t0 = t0
            + if pipelined_cpu {
                ph.gpu_makespan.max(ph.cpu_reduce_s)
            } else {
                ph.gpu_makespan
            };
        let transfer_s = report.phases.transfer_s;
        if let Some(comm) = &report.comm {
            distmsm_comms::schedule::telemetry::emit_schedule(comm, fabric_t0);
        }

        // ---- host lane: bucket-reduce / pipeline tail / window-reduce ----
        let wr_t0 = if self.config.bucket_reduce_on_cpu {
            if self.config.pipelined {
                // §3.2.3: the reduce streams behind the GPUs from t0;
                // only the last window's tail follows the transfer
                if ph.cpu_reduce_s > 0.0 {
                    session::push_span(Span {
                        name: "bucket-reduce(cpu,pipelined)".into(),
                        cat: "bucket-reduce".into(),
                        lane: Lane::Host,
                        t0_s: t0,
                        t1_s: t0 + ph.cpu_reduce_s,
                        args: Vec::new(),
                    });
                }
                let tail = ph.cpu_reduce_s / f64::from(report.n_windows.max(1));
                if tail > 0.0 {
                    session::push_span(Span {
                        name: "pipeline-tail".into(),
                        cat: "pipeline-tail".into(),
                        lane: Lane::Host,
                        t0_s: fabric_t0 + transfer_s,
                        t1_s: fabric_t0 + transfer_s + tail,
                        args: Vec::new(),
                    });
                }
                fabric_t0 + transfer_s + tail
            } else {
                if ph.cpu_reduce_s > 0.0 {
                    session::push_span(Span {
                        name: "bucket-reduce(cpu)".into(),
                        cat: "bucket-reduce".into(),
                        lane: Lane::Host,
                        t0_s: fabric_t0 + transfer_s,
                        t1_s: fabric_t0 + transfer_s + ph.cpu_reduce_s,
                        args: Vec::new(),
                    });
                }
                fabric_t0 + transfer_s + ph.cpu_reduce_s
            }
        } else {
            // GPU path: per-device reduce segments, then the host-side
            // combine the collective implies
            let gr_t0 = fabric_t0 + transfer_s;
            let max_gr = ph.gpu_reduce_per_gpu.iter().copied().fold(0.0, f64::max);
            for g in 0..n_gpus {
                if ph.gpu_reduce_per_gpu[g] > 0.0 {
                    device_span(
                        g,
                        "bucket-reduce(gpu)",
                        "bucket-reduce",
                        gr_t0,
                        gr_t0 + ph.gpu_reduce_per_gpu[g],
                    );
                }
            }
            if ph.comm_host_s > 0.0 {
                session::push_span(Span {
                    name: "host-combine".into(),
                    cat: "bucket-reduce".into(),
                    lane: Lane::Host,
                    t0_s: gr_t0 + max_gr,
                    t1_s: gr_t0 + max_gr + ph.comm_host_s,
                    args: Vec::new(),
                });
            }
            gr_t0 + max_gr + ph.comm_host_s
        };
        if report.phases.window_reduce_s > 0.0 {
            session::push_span(Span {
                name: "window-reduce".into(),
                cat: "window-reduce".into(),
                lane: Lane::Host,
                t0_s: wr_t0,
                t1_s: wr_t0 + report.phases.window_reduce_s,
                args: Vec::new(),
            });
        }

        // ---- supervisor + recovery tail ----
        if let Some(rec) = &report.recovery {
            let rec_t0 = t0 + report.total_s - rec.recovery_s();
            for ev in plan.events.iter().filter(|e| e.attempt == attempt) {
                fault_instant(ev, rec_t0);
            }
            for f in rec.faults.iter().filter(|f| f.kind == "link-down") {
                session::push_instant(Instant {
                    name: "fault:link-down".into(),
                    cat: "fault".into(),
                    lane: Lane::Device(f.device),
                    t_s: t0,
                    args: vec![("device".into(), f.device.to_string())],
                });
            }
            if !rec.replanned.is_empty() {
                session::push_instant(Instant {
                    name: "re-plan".into(),
                    cat: "supervisor".into(),
                    lane: Lane::Supervisor,
                    t_s: rec_t0,
                    args: vec![
                        ("slices".into(), rec.replanned.len().to_string()),
                        ("lost_gpus".into(), format!("{:?}", rec.lost_gpus)),
                    ],
                });
            }
            if rec.degraded_collective {
                session::push_instant(Instant {
                    name: "route-degraded".into(),
                    cat: "supervisor".into(),
                    lane: Lane::Fabric,
                    t_s: fabric_t0,
                    args: vec![(
                        "detail".into(),
                        "collective degraded to survivors-only gather".into(),
                    )],
                });
            }
            if rec.backoff_s > 0.0 {
                session::push_span(Span {
                    name: "retry-backoff".into(),
                    cat: "recovery".into(),
                    lane: Lane::Supervisor,
                    t0_s: rec_t0,
                    t1_s: rec_t0 + rec.backoff_s,
                    args: vec![("retries".into(), rec.retries.to_string())],
                });
            }
            let recompute_t0 = rec_t0 + rec.backoff_s;
            for g in 0..n_gpus {
                if ph.rec_per_gpu[g] > 0.0 {
                    device_span(
                        g,
                        "recompute",
                        "recovery",
                        recompute_t0,
                        recompute_t0 + ph.rec_per_gpu[g],
                    );
                }
            }
            let check_t0 = recompute_t0 + rec.recompute_s;
            if rec.self_check_s > 0.0 {
                session::push_span(Span {
                    name: "self-check(rlc)".into(),
                    cat: "recovery".into(),
                    lane: Lane::Host,
                    t0_s: check_t0,
                    t1_s: check_t0 + rec.self_check_s,
                    args: Vec::new(),
                });
            }
            if rec.checkpoint_s > 0.0 {
                session::push_span(Span {
                    name: "checkpoint".into(),
                    cat: "recovery".into(),
                    lane: Lane::Host,
                    t0_s: check_t0 + rec.self_check_s,
                    t1_s: check_t0 + rec.self_check_s + rec.checkpoint_s,
                    args: Vec::new(),
                });
            }
            // recovered slices are re-run inside the recompute segments;
            // annotate them without separate spans (they'd double-count)
            let _ = recovered;
        }

        session::advance_s(report.total_s);
    }

    /// Records fail-stop observations for devices that just lost jobs
    /// and adds them to the dead set.
    fn note_fail_stops(
        &self,
        lost: &[(Slice, u64)],
        dead: &mut Vec<usize>,
        recovery: &mut RecoveryReport,
    ) {
        for (sl, e) in lost {
            if !dead.contains(&sl.gpu) {
                dead.push(sl.gpu);
                recovery.faults.push(FaultObservation {
                    device: sl.gpu,
                    event: *e,
                    kind: "fail-stop".into(),
                });
            }
        }
    }

    /// Chooses the scatter kind for one slice (DistMSM: hierarchical
    /// whenever the slice fits in shared memory).
    fn pick_scatter(&self, slice: &Slice) -> Result<ScatterKind, MsmError> {
        let needed =
            crate::scatter::hierarchical_shared_bytes(slice.len(), &self.config.scatter_cfg);
        let fits = needed <= self.config.scatter_cfg.shared_mem_per_block;
        match self.config.scatter {
            Some(ScatterKind::Naive) => Ok(ScatterKind::Naive),
            Some(ScatterKind::Hierarchical) if !fits => {
                Err(MsmError::ScatterOverflow(SharedMemoryOverflow {
                    needed,
                    available: self.config.scatter_cfg.shared_mem_per_block,
                }))
            }
            Some(ScatterKind::Hierarchical) => Ok(ScatterKind::Hierarchical),
            None if fits => Ok(ScatterKind::Hierarchical),
            None => Ok(ScatterKind::Naive),
        }
    }

    /// Functionally executes one slice: scatter, then bucket-sum.
    #[allow(clippy::too_many_arguments)] // kernel launch context, not state
    fn run_one_slice<C: Curve>(
        &self,
        instance: &MsmInstance<C>,
        digits: &Option<Vec<Vec<i32>>>,
        s: u32,
        gpu_threads: u64,
        model: &EcKernelModel,
        slice: Slice,
        event: u64,
    ) -> Result<SliceOutcome<C>, MsmError> {
        let kind = self.pick_scatter(&slice)?;
        let coeff_bytes = if self.config.packed_coefficients {
            4.0
        } else {
            f64::from(C::SCALAR_BITS.div_ceil(8))
        };
        let scattered: ScatterOutcome = match (digits, kind) {
            (Some(d), kind) => crate::scatter::scatter_signed_digits(
                d,
                &slice,
                kind,
                gpu_threads,
                &self.config.scatter_cfg,
                coeff_bytes,
            )
            .map_err(MsmError::ScatterOverflow)?,
            (None, ScatterKind::Naive) => scatter_naive(
                &instance.scalars,
                s,
                &slice,
                gpu_threads,
                coeff_bytes,
            ),
            (None, ScatterKind::Hierarchical) => scatter_hierarchical(
                &instance.scalars,
                s,
                &slice,
                &self.config.scatter_cfg,
                coeff_bytes,
            )
            .map_err(MsmError::ScatterOverflow)?,
        };
        let tpb = threads_per_bucket(gpu_threads, u64::from(slice.len()));
        let sum = if digits.is_some() {
            crate::bucket_sum::bucket_sum_signed(
                &instance.points,
                &scattered.buckets,
                tpb,
                model,
                self.config.block_size,
            )
        } else {
            bucket_sum(
                &instance.points,
                &scattered.buckets,
                tpb,
                model,
                self.config.block_size,
            )
        };
        Ok(SliceOutcome {
            slice,
            event,
            scatter_stats: scattered.stats,
            sum,
        })
    }

    /// Functionally executes `jobs` (slice + work-event id) in parallel
    /// on host threads. A job that vanishes without an outcome reports
    /// the typed [`MsmError::SliceLost`] instead of panicking.
    fn run_slices<C: Curve>(
        &self,
        instance: &MsmInstance<C>,
        digits: &Option<Vec<Vec<i32>>>,
        s: u32,
        gpu_threads: u64,
        model: &EcKernelModel,
        jobs: &[(Slice, u64)],
    ) -> Result<Vec<SliceOutcome<C>>, MsmError> {
        let mut outcomes: Vec<Option<Result<SliceOutcome<C>, MsmError>>> =
            (0..jobs.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let chunk = jobs
                .len()
                .div_ceil(std::thread::available_parallelism().map_or(4, |p| p.get()))
                .max(1);
            for (job_chunk, out_chunk) in jobs.chunks(chunk).zip(outcomes.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for ((slice, event), out) in job_chunk.iter().zip(out_chunk.iter_mut()) {
                        *out = Some(self.run_one_slice(
                            instance,
                            digits,
                            s,
                            gpu_threads,
                            model,
                            *slice,
                            *event,
                        ));
                    }
                });
            }
        });
        let mut done = Vec::with_capacity(jobs.len());
        for (o, (slice, _)) in outcomes.into_iter().zip(jobs) {
            match o {
                Some(r) => done.push(r?),
                None => {
                    return Err(MsmError::SliceLost {
                        gpu: slice.gpu,
                        window: slice.window,
                    })
                }
            }
        }
        Ok(done)
    }
}

/// Slices paired with their per-device work-event ids, as scheduled by
/// the supervisor's fault-injection event counters.
type Jobs = Vec<(Slice, u64)>;

/// One completed slice: its plan coordinates, per-device work-event id,
/// metered kernel stats, and the functional bucket sums.
struct SliceOutcome<C: Curve> {
    slice: Slice,
    event: u64,
    scatter_stats: LaunchStats,
    sum: crate::bucket_sum::BucketSumOutcome<C>,
}

/// Per-phase timing internals `execute_attempt` hands to the telemetry
/// emitter: everything the timeline layout needs that the public
/// [`MsmReport`] does not carry.
#[cfg(feature = "telemetry")]
struct TelemetryPhases<'a> {
    scatter_per_gpu: &'a [f64],
    sum_per_gpu: &'a [f64],
    gpu_reduce_per_gpu: &'a [f64],
    rec_per_gpu: &'a [f64],
    prepass: f64,
    cpu_reduce_s: f64,
    comm_host_s: f64,
    gpu_makespan: f64,
}

/// The slice set the CPU-path bucket gather covers: under supervision
/// the slices that actually completed (recovery moved ownership), on
/// the fast path the original plan.
fn recovery_or_plan_slices<'a>(
    supervised: bool,
    recovery: &'a RecoveryReport,
    planned: &'a [Slice],
) -> &'a [Slice] {
    if supervised {
        &recovery.completed
    } else {
        planned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ec::curves::{Bls12381G1, Bn254G1, Mnt4753G1};
    use rand::{rngs::StdRng, SeedableRng};

    fn check_correct<C: Curve>(n: usize, n_gpus: usize, seed: u64, cfg: DistMsmConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = MsmInstance::<C>::random(n, &mut rng);
        let engine = DistMsm::with_config(MultiGpuSystem::dgx_a100(n_gpus), cfg);
        let report = engine.execute(&inst).expect("execution succeeds");
        assert_eq!(report.result, inst.reference_result(), "MSM result wrong");
        assert!(report.total_s > 0.0 && report.total_s.is_finite());
    }

    #[test]
    fn correct_on_one_gpu() {
        check_correct::<Bn254G1>(200, 1, 1, DistMsmConfig::default());
    }

    #[test]
    fn correct_on_eight_gpus() {
        check_correct::<Bn254G1>(300, 8, 2, DistMsmConfig::default());
    }

    #[test]
    fn correct_with_explicit_small_window() {
        check_correct::<Bn254G1>(
            256,
            4,
            3,
            DistMsmConfig::builder()
                .window_size(5)
                .build()
                .unwrap(),
        );
    }

    #[test]
    fn correct_with_naive_scatter_and_gpu_reduce() {
        check_correct::<Bn254G1>(
            128,
            2,
            4,
            DistMsmConfig::builder()
                .scatter(ScatterKind::Naive)
                .bucket_reduce_on_cpu(false)
                .build()
                .unwrap(),
        );
    }

    #[test]
    fn correct_on_bls12381() {
        check_correct::<Bls12381G1>(100, 8, 5, DistMsmConfig::default());
    }

    #[test]
    fn correct_on_mnt4753() {
        check_correct::<Mnt4753G1>(
            50,
            4,
            6,
            DistMsmConfig::builder()
                .window_size(8)
                .build()
                .unwrap(),
        );
    }

    #[test]
    fn more_gpus_when_windows_split() {
        // 32 GPUs vs few windows exercises bucket-slice splitting
        check_correct::<Bn254G1>(
            200,
            32,
            7,
            DistMsmConfig::builder()
                .window_size(4)
                .build()
                .unwrap(),
        );
    }

    #[test]
    fn signed_digits_engine_is_correct() {
        for (gpus, s) in [(1usize, None), (4, Some(9u32)), (8, Some(6))] {
            let builder = DistMsmConfig::builder().signed_digits(true);
            let builder = match s {
                Some(s) => builder.window_size(s),
                None => builder.auto_window_size(),
            };
            check_correct::<Bn254G1>(220, gpus, 40 + gpus as u64, builder.build().unwrap());
        }
    }

    #[test]
    fn signed_digits_use_fewer_buckets() {
        let mut rng = StdRng::seed_from_u64(44);
        let inst = MsmInstance::<Bn254G1>::random(128, &mut rng);
        let mk = |signed| {
            DistMsm::with_config(
                MultiGpuSystem::dgx_a100(2),
                DistMsmConfig::builder()
                    .window_size(10)
                    .signed_digits(signed)
                    .build()
                    .unwrap(),
            )
            .execute(&inst)
            .unwrap()
        };
        let unsigned = mk(false);
        let signed = mk(true);
        assert_eq!(signed.result, unsigned.result);
        assert_eq!(signed.n_windows, unsigned.n_windows + 1);
        // bucket-reduce work halves with the bucket count
        assert!(
            signed.phases.bucket_reduce_s < 0.7 * unsigned.phases.bucket_reduce_s,
            "signed {} vs unsigned {}",
            signed.phases.bucket_reduce_s,
            unsigned.phases.bucket_reduce_s
        );
    }

    #[test]
    fn window_partial_gather_charged_and_monotone() {
        // Satellite fix: the device→host gather of per-GPU window
        // partials used to be free on the GPU-reduce path. It must now
        // appear in the phase report and grow with GPU count and with
        // point size.
        fn transfer<C: Curve>(gpus: usize) -> f64 {
            let mut rng = StdRng::seed_from_u64(77);
            let inst = MsmInstance::<C>::random(128, &mut rng);
            let engine = DistMsm::with_config(
                MultiGpuSystem::dgx_a100(gpus),
                DistMsmConfig::builder()
                    .window_size(8)
                    .scatter(ScatterKind::Naive)
                    .bucket_reduce_on_cpu(false)
                    .build()
                    .unwrap(),
            );
            let rep = engine.execute(&inst).expect("execution succeeds");
            assert_eq!(rep.result, inst.reference_result());
            let comm = rep.comm.expect("engine reports its comm schedule");
            assert_eq!(comm.n_ranks, gpus);
            rep.phases.transfer_s
        }
        // monotone in GPU count (more partial vectors cross the fabric)
        let t1 = transfer::<Bn254G1>(1);
        let t2 = transfer::<Bn254G1>(2);
        let t4 = transfer::<Bn254G1>(4);
        let t8 = transfer::<Bn254G1>(8);
        assert!(t1 > 0.0, "gather must be charged, got {t1}");
        assert!(t2 > t1 && t4 > t2 && t8 > t4, "{t1} {t2} {t4} {t8}");
        // monotone in point size at equal window count: BLS12-381 points
        // (12 limbs) outweigh BN254 (8); MNT4-753 (24 limbs, more
        // windows) outweighs both
        let bn = transfer::<Bn254G1>(4);
        let bls = transfer::<Bls12381G1>(4);
        let mnt = transfer::<Mnt4753G1>(4);
        assert!(bls > bn && mnt > bls, "{bn} {bls} {mnt}");
    }

    #[test]
    fn collective_strategies_all_bit_exact_in_engine() {
        let mut rng = StdRng::seed_from_u64(78);
        let inst = MsmInstance::<Bn254G1>::random(160, &mut rng);
        for strat in distmsm_comms::CollectiveStrategy::ALL {
            let engine = DistMsm::with_config(
                MultiGpuSystem::dgx_a100(4),
                DistMsmConfig::builder()
                    .window_size(7)
                    .bucket_reduce_on_cpu(false)
                    .collective(strat)
                    .build()
                    .unwrap(),
            );
            let rep = engine.execute(&inst).expect("execution succeeds");
            assert_eq!(rep.result, inst.reference_result(), "{}", strat.name());
            assert!(rep.phases.transfer_s > 0.0);
        }
    }

    #[test]
    fn forced_hierarchical_overflow_reported() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = MsmInstance::<Bn254G1>::random(64, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(1),
            DistMsmConfig::builder()
                .window_size(16)
                .scatter(ScatterKind::Hierarchical)
                .build()
                .unwrap(),
        );
        match engine.execute(&inst) {
            Err(MsmError::ScatterOverflow(e)) => assert!(e.needed > e.available),
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn empty_instance_rejected() {
        let inst = MsmInstance::<Bn254G1> {
            points: vec![],
            scalars: vec![],
        };
        let engine = DistMsm::new(MultiGpuSystem::dgx_a100(1));
        assert_eq!(engine.execute(&inst).unwrap_err(), MsmError::EmptyInstance);
    }

    #[test]
    fn auto_scatter_falls_back_to_naive_for_large_windows() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = MsmInstance::<Bn254G1>::random(64, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(1),
            DistMsmConfig::builder()
                .window_size(18)
                .auto_scatter()
                .build()
                .unwrap(),
        );
        let report = engine.execute(&inst).expect("auto mode must not fail");
        assert_eq!(report.result, inst.reference_result());
    }

    // ---- fault injection and recovery ---------------------------------

    use distmsm_gpu_sim::{FaultEvent, FaultKind, LinkFault};

    fn coverage_exact(slices: &[Slice], n_windows: u32, n_buckets: u32) {
        let mut seen = vec![0u32; (n_windows * n_buckets) as usize];
        for s in slices {
            for b in s.bucket_lo..s.bucket_hi {
                seen[(s.window * n_buckets + b) as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "completed slices must tile");
    }

    #[test]
    fn fail_stop_one_of_eight_recovers_bit_exact() {
        // the acceptance scenario: a seeded fail-stop on GPU 3 of 8 must
        // still produce the fault-free result, with a RecoveryReport
        // showing the re-plan
        let mut rng = StdRng::seed_from_u64(90);
        let inst = MsmInstance::<Bn254G1>::random(256, &mut rng);
        let clean = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(8),
            DistMsmConfig::builder()
                .window_size(8)
                .build()
                .unwrap(),
        )
        .execute(&inst)
        .expect("clean run");
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(8),
            DistMsmConfig::builder()
                .window_size(8)
                .fault_plan(FaultPlan::fail_stop(3, 0))
                // probe backoff scaled to the toy instance: the default
                // millisecond constants are realistic at paper scale but
                // would dwarf a 256-point MSM
                .retry(crate::supervisor::RetryPolicy::default().with_backoff_base_s(1e-6))
                .build()
                .unwrap(),
        );
        let rep = engine.execute(&inst).expect("supervised run recovers");
        assert_eq!(rep.result, clean.result, "recovered result must be bit-exact");
        assert_eq!(rep.result, inst.reference_result());
        let rec = rep.recovery.expect("supervised run reports recovery");
        assert_eq!(rec.lost_gpus, vec![3]);
        assert!(!rec.replanned.is_empty(), "lost work must be re-planned");
        assert!(rec.replanned.iter().all(|s| s.gpu != 3));
        assert!(rec.faults.iter().any(|f| f.kind == "fail-stop" && f.device == 3));
        coverage_exact(&rec.completed, rec.n_windows, rec.n_buckets);
        assert!(rec.recovery_s() > 0.0);
        // recovery overhead strictly below a full re-run
        assert!(
            rep.total_s - clean.total_s < clean.total_s,
            "overhead {} vs clean {}",
            rep.total_s - clean.total_s,
            clean.total_s
        );
    }

    #[test]
    fn fail_stop_on_gpu_reduce_path_degrades_collective() {
        let mut rng = StdRng::seed_from_u64(91);
        let inst = MsmInstance::<Bn254G1>::random(200, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(4),
            DistMsmConfig::builder()
                .window_size(7)
                .bucket_reduce_on_cpu(false)
                .fault_plan(FaultPlan::fail_stop(2, 0))
                .build()
                .unwrap(),
        );
        let rep = engine.execute(&inst).expect("recovers on GPU-reduce path");
        assert_eq!(rep.result, inst.reference_result());
        let rec = rep.recovery.unwrap();
        assert!(rec.degraded_collective, "dead rank must degrade collective");
        assert!(rec.checkpoint_s > 0.0, "GPU path charges checkpoints");
        coverage_exact(&rec.completed, rec.n_windows, rec.n_buckets);
    }

    #[test]
    fn cascading_fail_stop_mid_recovery() {
        // GPU 3 dies at its first slice; GPU 4 dies later, mid-recovery,
        // forcing a second re-plan round
        let mut rng = StdRng::seed_from_u64(92);
        let inst = MsmInstance::<Bn254G1>::random(256, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(8),
            DistMsmConfig::builder()
                .window_size(4)
                // window 4 gives every GPU 8 primary slices (events
                // 0..8), so event 8 is GPU 4's first *recovery* job:
                // it survives the primary pass and dies mid-recovery
                .fault_plan(FaultPlan::fail_stop(3, 0).with_event(FaultEvent { device: 4, at_event: 8, attempt: 0, kind: FaultKind::FailStop, }))
                .build()
                .unwrap(),
        );
        let rep = engine.execute(&inst).expect("cascade recovers");
        assert_eq!(rep.result, inst.reference_result());
        let rec = rep.recovery.unwrap();
        assert!(rec.lost_gpus.contains(&3) && rec.lost_gpus.contains(&4));
        coverage_exact(&rec.completed, rec.n_windows, rec.n_buckets);
    }

    #[test]
    fn bit_flip_detected_and_result_still_exact() {
        let mut rng = StdRng::seed_from_u64(93);
        let inst = MsmInstance::<Bn254G1>::random(128, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(2),
            DistMsmConfig::builder()
                .window_size(8)
                .fault_plan(FaultPlan::bit_flip(1, 0))
                .build()
                .unwrap(),
        );
        let rep = engine.execute(&inst).expect("bit flip is recoverable");
        assert_eq!(rep.result, inst.reference_result());
        let rec = rep.recovery.unwrap();
        assert!(rec.faults.iter().any(|f| f.kind == "bit-flip" && f.device == 1));
        assert!(rec.retries >= 1, "re-shipment spends a retry");
        assert!(rec.self_check_s > 0.0, "RLC check is charged");
    }

    #[test]
    fn bit_flip_without_retry_budget_is_exhaustion() {
        let mut rng = StdRng::seed_from_u64(94);
        let inst = MsmInstance::<Bn254G1>::random(128, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(2),
            DistMsmConfig::builder()
                .window_size(8)
                .fault_plan(FaultPlan::bit_flip(1, 0))
                .retry(crate::supervisor::RetryPolicy::default().with_max_retries(0))
                .build()
                .unwrap(),
        );
        match engine.execute(&inst) {
            Err(MsmError::RetriesExhausted { device, .. }) => assert_eq!(device, 1),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn replan_avoids_straggling_survivors() {
        // a fail-stop on GPU 1 while GPU 2 straggles: the re-plan must
        // route lost work onto the full-speed survivors only
        let mut rng = StdRng::seed_from_u64(91);
        let inst = MsmInstance::<Bn254G1>::random(128, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(4),
            DistMsmConfig::builder()
                .window_size(6)
                .fault_plan(FaultPlan::fail_stop(1, 0).with_event(FaultEvent { device: 2, at_event: 0, attempt: 0, kind: FaultKind::Straggler { slowdown: 3.0 }, }))
                .build()
                .unwrap(),
        );
        let rep = engine.execute(&inst).expect("recovers");
        assert_eq!(rep.result, inst.reference_result());
        let rec = rep.recovery.expect("supervised");
        assert!(!rec.replanned.is_empty());
        assert!(
            rec.replanned.iter().all(|sl| sl.gpu != 1 && sl.gpu != 2),
            "re-plan must avoid the lost GPU and the straggler: {:?}",
            rec.replanned
        );
    }

    #[test]
    fn straggler_detected_and_sla_enforced() {
        let mut rng = StdRng::seed_from_u64(95);
        let inst = MsmInstance::<Bn254G1>::random(256, &mut rng);
        let mk = |sla: Option<f64>| {
            let builder = DistMsmConfig::builder()
                .window_size(8)
                .fault_plan(FaultPlan::straggler(2, 0, 4.0));
            let builder = match sla {
                Some(sla) => builder.straggler_sla(sla),
                None => builder.no_straggler_sla(),
            };
            DistMsm::with_config(MultiGpuSystem::dgx_a100(8), builder.build().unwrap())
                .execute(&inst)
        };
        let rep = mk(None).expect("no SLA: detection only");
        assert_eq!(rep.result, inst.reference_result());
        let rec = rep.recovery.unwrap();
        assert!(
            rec.stragglers.iter().any(|&(g, r)| g == 2 && r > 2.0),
            "stragglers {:?}",
            rec.stragglers
        );
        match mk(Some(2.0)) {
            Err(MsmError::Straggler { device, slowdown }) => {
                assert_eq!(device, 2);
                assert!(slowdown > 2.0);
            }
            other => panic!("expected Straggler, got {other:?}"),
        }
    }

    #[test]
    fn isolated_rank_is_replanned_around() {
        // both ports of rank 2 go down: it cannot reach the host even by
        // transit, so the supervisor treats it as lost
        let mut rng = StdRng::seed_from_u64(96);
        let inst = MsmInstance::<Bn254G1>::random(160, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(4),
            DistMsmConfig::builder()
                .window_size(8)
                .fault_plan(FaultPlan::none() .with_link_fault(LinkFault::PeerPortDown { rank: 2 }) .with_link_fault(LinkFault::HostPortDown { rank: 2 }))
                .build()
                .unwrap(),
        );
        let rep = engine.execute(&inst).expect("partition recovers");
        assert_eq!(rep.result, inst.reference_result());
        let rec = rep.recovery.unwrap();
        assert_eq!(rec.lost_gpus, vec![2]);
        assert!(rec.faults.iter().any(|f| f.kind == "link-down"));
        coverage_exact(&rec.completed, rec.n_windows, rec.n_buckets);
    }

    #[test]
    fn degraded_link_reprices_but_stays_exact() {
        let mut rng = StdRng::seed_from_u64(97);
        let inst = MsmInstance::<Bn254G1>::random(160, &mut rng);
        let mk = |plan| {
            DistMsm::with_config(
                MultiGpuSystem::dgx_a100(4),
                DistMsmConfig::builder()
                    .window_size(8)
                    .fault_plan(plan)
                    .build()
                    .unwrap(),
            )
            .execute(&inst)
            .expect("degraded link is not fatal")
        };
        let clean = mk(FaultPlan::none());
        let slow = mk(FaultPlan::none().with_link_fault(LinkFault::PeerPortDegraded {
            rank: 1,
            factor: 0.05,
        }));
        assert_eq!(slow.result, clean.result);
        assert!(slow.recovery.unwrap().lost_gpus.is_empty());
        assert!(
            slow.phases.transfer_s >= clean.phases.transfer_s,
            "degraded fabric cannot be cheaper: {} vs {}",
            slow.phases.transfer_s,
            clean.phases.transfer_s
        );
    }

    #[test]
    fn total_partition_is_link_down_error() {
        let mut rng = StdRng::seed_from_u64(98);
        let inst = MsmInstance::<Bn254G1>::random(64, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(2),
            DistMsmConfig::builder()
                .fault_plan(FaultPlan::none() .with_link_fault(LinkFault::HostPortDown { rank: 0 }) .with_link_fault(LinkFault::HostPortDown { rank: 1 }))
                .build()
                .unwrap(),
        );
        match engine.execute(&inst) {
            Err(MsmError::LinkDown { .. }) => {}
            other => panic!("expected LinkDown, got {other:?}"),
        }
    }

    #[test]
    fn sole_gpu_fail_stop_is_device_lost() {
        let mut rng = StdRng::seed_from_u64(99);
        let inst = MsmInstance::<Bn254G1>::random(64, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(1),
            DistMsmConfig::builder()
                .fault_plan(FaultPlan::fail_stop(0, 0))
                .build()
                .unwrap(),
        );
        match engine.execute(&inst) {
            Err(MsmError::DeviceLost { devices }) => assert_eq!(devices, vec![0]),
            other => panic!("expected DeviceLost, got {other:?}"),
        }
    }

    #[test]
    fn faults_are_attempt_scoped() {
        // the same plan that kills GPU 1 on attempt 0 stays quiet on
        // attempt 1 — a service-level retry models the transient clearing
        let mut rng = StdRng::seed_from_u64(100);
        let inst = MsmInstance::<Bn254G1>::random(128, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(4),
            DistMsmConfig::builder()
                .window_size(8)
                .fault_plan(FaultPlan::fail_stop(1, 0))
                .build()
                .unwrap(),
        );
        let first = engine.execute(&inst).expect("attempt 0 recovers");
        assert_eq!(first.recovery.as_ref().unwrap().lost_gpus, vec![1]);
        let second = engine.execute_attempt(&inst, 1).expect("attempt 1 clean");
        assert_eq!(second.result, first.result);
        assert!(second.recovery.unwrap().lost_gpus.is_empty());
        // and re-running attempt 0 reproduces the fault bit-for-bit
        let replay = engine.execute_attempt(&inst, 0).expect("replay");
        assert_eq!(replay.recovery.unwrap(), first.recovery.unwrap());
    }

    #[test]
    fn random_fault_plans_always_recover_exactly() {
        // sweep seeds: whatever mix of faults the plan draws, the result
        // stays bit-exact (device 0 is never fail-stopped by random plans)
        let mut rng = StdRng::seed_from_u64(101);
        let inst = MsmInstance::<Bn254G1>::random(128, &mut rng);
        for seed in 0..6u64 {
            let plan = FaultPlan::random(seed, 8, 0.1, 16);
            let engine = DistMsm::with_config(
                MultiGpuSystem::dgx_a100(8),
                DistMsmConfig::builder()
                    .window_size(6)
                    .fault_plan(plan)
                    .build()
                    .unwrap(),
            );
            let rep = engine.execute(&inst).unwrap_or_else(|e| {
                panic!("seed {seed}: random plan must be recoverable, got {e}")
            });
            assert_eq!(rep.result, inst.reference_result(), "seed {seed}");
            if let Some(rec) = rep.recovery {
                coverage_exact(&rec.completed, rec.n_windows, rec.n_buckets);
            }
        }
    }
}
