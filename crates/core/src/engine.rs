//! The DistMSM execution engine.
//!
//! Orchestrates the full pipeline of Figure 1 over a simulated
//! [`MultiGpuSystem`]: window/bucket-slice planning, per-GPU bucket
//! scatter and bucket-sum (executed functionally, in parallel on host
//! threads), CPU (or GPU) bucket-reduce, and window-reduce — composing
//! the metered kernel statistics into a wall-time estimate.

use crate::bucket_sum::{bucket_sum, threads_per_bucket};
use crate::plan::{plan_slices, Slice};
use crate::reduce::{
    bucket_reduce_gpu_stats, bucket_reduce_serial, cpu_seconds_for_padds, window_reduce,
};
use crate::scatter::{
    scatter_hierarchical, scatter_naive, ScatterConfig, ScatterKind, ScatterOutcome,
    SharedMemoryOverflow,
};
use distmsm_comms::{run_collective, CollectiveStrategy, CommConfig, CommSchedule};
use distmsm_ec::{Curve, FieldElement, MsmInstance, XyzzPoint};
use distmsm_gpu_sim::{
    estimate_kernel_time, CostModelConfig, LaunchStats, MultiGpuSystem,
};
use distmsm_kernel::{EcKernelModel, PaddOptimizations};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct DistMsmConfig {
    /// Window size `s`; `None` selects the §3.1 optimum for the system.
    pub window_size: Option<u32>,
    /// Scatter implementation; `None` selects hierarchical whenever the
    /// slice fits in shared memory (DistMSM's choice), naive otherwise.
    pub scatter: Option<ScatterKind>,
    /// Hierarchical-scatter tuning.
    pub scatter_cfg: ScatterConfig,
    /// PADD-kernel optimisation set.
    pub kernel_opts: PaddOptimizations,
    /// Run bucket-reduce on the CPU (§3.2.3) instead of the GPU.
    pub bucket_reduce_on_cpu: bool,
    /// Thread-block size of the bucket-sum kernel.
    pub block_size: u32,
    /// Model the CPU reduce as pipelined with GPU work (§3.2.3).
    pub pipelined: bool,
    /// Stream packed 4-byte per-window coefficient views (DistMSM's
    /// choice; charged a one-time repacking pre-pass) instead of reading
    /// full λ-bit scalars in every scatter.
    pub packed_coefficients: bool,
    /// Recode scalars into signed digits (§6's adopted technique): halves
    /// every window's bucket count (`2^s → 2^{s−1}+1`) at the cost of one
    /// extra carry window.
    pub signed_digits: bool,
    /// How per-GPU window partials are combined when bucket-reduce runs
    /// on the GPUs: the reduction executes bit-exactly over EC points
    /// through `distmsm-comms` and its transfer cost is routed through
    /// the system's interconnect (topology-aware on DGX presets).
    pub collective: CollectiveStrategy,
}

impl Default for DistMsmConfig {
    fn default() -> Self {
        Self {
            window_size: None,
            scatter: None,
            scatter_cfg: ScatterConfig::default(),
            kernel_opts: PaddOptimizations::all(),
            bucket_reduce_on_cpu: true,
            block_size: 256,
            pipelined: true,
            packed_coefficients: true,
            signed_digits: false,
            collective: CollectiveStrategy::HostGather,
        }
    }
}

/// Wall-time breakdown of one MSM, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Bucket-scatter across all GPUs (max over GPUs).
    pub scatter_s: f64,
    /// Bucket-sum across all GPUs (max over GPUs).
    pub bucket_sum_s: f64,
    /// Bucket-reduce (CPU or GPU).
    pub bucket_reduce_s: f64,
    /// Window-reduce on the CPU.
    pub window_reduce_s: f64,
    /// Communication: the device→host gather of bucket partials (CPU
    /// reduce path) or the inter-GPU collective over window partials
    /// (GPU reduce path), routed through the system's fabric.
    pub transfer_s: f64,
}

/// Result of one (simulated) MSM execution.
#[derive(Clone, Debug)]
pub struct MsmReport<C: Curve> {
    /// The MSM value (bit-exact, verified against references in tests).
    pub result: XyzzPoint<C>,
    /// Window size used.
    pub window_size: u32,
    /// Number of windows.
    pub n_windows: u32,
    /// Time per phase.
    pub phases: PhaseBreakdown,
    /// Estimated wall time in seconds.
    pub total_s: f64,
    /// Per-GPU busy time in seconds.
    pub per_gpu_s: Vec<f64>,
    /// All metered kernel launches (for breakdown harnesses).
    pub launches: Vec<LaunchStats>,
    /// The communication schedule behind `phases.transfer_s` (`None`
    /// for reports composed without a fabric, e.g. merged baselines).
    pub comm: Option<CommSchedule>,
}

/// Errors an MSM execution can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MsmError {
    /// Hierarchical scatter ran out of shared memory (paper: `s > 14`).
    ScatterOverflow(SharedMemoryOverflow),
    /// The instance was empty.
    EmptyInstance,
}

impl core::fmt::Display for MsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ScatterOverflow(e) => write!(f, "{e}"),
            Self::EmptyInstance => write!(f, "MSM instance has no points"),
        }
    }
}

impl std::error::Error for MsmError {}

/// The DistMSM engine bound to a system description.
#[derive(Clone, Debug)]
pub struct DistMsm {
    system: MultiGpuSystem,
    config: DistMsmConfig,
    cost_cfg: CostModelConfig,
}

impl DistMsm {
    /// Creates an engine with the default configuration.
    pub fn new(system: MultiGpuSystem) -> Self {
        Self::with_config(system, DistMsmConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(system: MultiGpuSystem, config: DistMsmConfig) -> Self {
        Self {
            system,
            config,
            cost_cfg: CostModelConfig::default(),
        }
    }

    /// The system this engine runs on.
    pub fn system(&self) -> &MultiGpuSystem {
        &self.system
    }

    /// The active configuration.
    pub fn config(&self) -> &DistMsmConfig {
        &self.config
    }

    /// Effective concurrent threads per GPU for a kernel model.
    fn gpu_threads(&self, model: &EcKernelModel) -> u64 {
        let d = &self.system.devices[0];
        let resident = d.resident_threads_per_sm(
            model.regs_per_thread(),
            model.shared_mem_per_block(self.config.block_size),
            self.config.block_size,
        );
        (u64::from(resident) * u64::from(d.sm_count)).max(1)
    }

    /// Chooses the window size: explicit config, or the minimiser of the
    /// engine's own cost estimate (which — unlike the raw §3.1 op count —
    /// accounts for the CPU bucket-reduce, pushing multi-GPU runs to the
    /// small windows of §3.2).
    pub fn window_size_for(&self, n: usize, curve: &crate::analytic::CurveDesc) -> u32 {
        self.config.window_size.unwrap_or_else(|| {
            crate::analytic::estimate_distmsm(n as u64, curve, &self.system, &self.config)
                .window_size
        })
    }

    /// Executes an MSM, returning the verified-exact result and the
    /// simulated timing.
    ///
    /// # Errors
    ///
    /// [`MsmError::ScatterOverflow`] when a forced hierarchical scatter
    /// does not fit in shared memory; [`MsmError::EmptyInstance`] for
    /// zero-length input.
    pub fn execute<C: Curve>(&self, instance: &MsmInstance<C>) -> Result<MsmReport<C>, MsmError> {
        if instance.is_empty() {
            return Err(MsmError::EmptyInstance);
        }
        let model = EcKernelModel::new(C::Base::LIMBS32, self.config.kernel_opts);
        let gpu_threads = self.gpu_threads(&model);
        let desc = crate::analytic::CurveDesc {
            name: C::NAME,
            limbs32: C::Base::LIMBS32,
            scalar_bits: C::SCALAR_BITS,
            a_is_zero: C::A_IS_ZERO,
        };
        let s = self.window_size_for(instance.len(), &desc);
        let (n_windows, n_buckets) = if self.config.signed_digits {
            (C::SCALAR_BITS.div_ceil(s) + 1, (1u32 << (s - 1)) + 1)
        } else {
            (C::SCALAR_BITS.div_ceil(s), 1u32 << s)
        };
        let slices = plan_slices(n_windows, n_buckets, self.system.n_gpus());
        // signed-digit recoding happens once, up front (like the packed
        // coefficient pre-pass; same memory-bound cost class)
        let digits: Option<Vec<Vec<i32>>> = self.config.signed_digits.then(|| {
            instance
                .scalars
                .iter()
                .map(|k| crate::signed::recode_signed(k, s, C::SCALAR_BITS))
                .collect()
        });

        // decide scatter kind per slice (DistMSM: hierarchical when it fits)
        let scatter_kind = |slice: &Slice| -> Result<ScatterKind, MsmError> {
            match self.config.scatter {
                Some(ScatterKind::Naive) => Ok(ScatterKind::Naive),
                Some(ScatterKind::Hierarchical) => {
                    let needed =
                        crate::scatter::hierarchical_shared_bytes(slice.len(), &self.config.scatter_cfg);
                    if needed > self.config.scatter_cfg.shared_mem_per_block {
                        Err(MsmError::ScatterOverflow(SharedMemoryOverflow {
                            needed,
                            available: self.config.scatter_cfg.shared_mem_per_block,
                        }))
                    } else {
                        Ok(ScatterKind::Hierarchical)
                    }
                }
                None => {
                    let needed =
                        crate::scatter::hierarchical_shared_bytes(slice.len(), &self.config.scatter_cfg);
                    if needed > self.config.scatter_cfg.shared_mem_per_block {
                        Ok(ScatterKind::Naive)
                    } else {
                        Ok(ScatterKind::Hierarchical)
                    }
                }
            }
        };

        // ---- per-slice functional execution (host-parallel) -------------
        struct SliceOutcome<C: Curve> {
            slice: Slice,
            scatter_stats: LaunchStats,
            sum: crate::bucket_sum::BucketSumOutcome<C>,
        }

        let mut outcomes: Vec<Option<Result<SliceOutcome<C>, MsmError>>> =
            (0..slices.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let chunk = slices.len().div_ceil(
                std::thread::available_parallelism().map_or(4, |p| p.get()),
            );
            for (slice_chunk, out_chunk) in
                slices.chunks(chunk.max(1)).zip(outcomes.chunks_mut(chunk.max(1)))
            {
                let model = &model;
                let config = &self.config;
                let digits = &digits;
                scope.spawn(move || {
                    for (slice, out) in slice_chunk.iter().zip(out_chunk.iter_mut()) {
                        let kind = match scatter_kind(slice) {
                            Ok(k) => k,
                            Err(e) => {
                                *out = Some(Err(e));
                                continue;
                            }
                        };
                        let coeff_bytes = if config.packed_coefficients {
                            4.0
                        } else {
                            f64::from(C::SCALAR_BITS.div_ceil(8))
                        };
                        let scattered: Result<ScatterOutcome, _> = match (&digits, kind) {
                            (Some(d), kind) => crate::scatter::scatter_signed_digits(
                                d,
                                slice,
                                kind,
                                gpu_threads,
                                &config.scatter_cfg,
                                coeff_bytes,
                            ),
                            (None, ScatterKind::Naive) => Ok(scatter_naive(
                                &instance.scalars,
                                s,
                                slice,
                                gpu_threads,
                                coeff_bytes,
                            )),
                            (None, ScatterKind::Hierarchical) => scatter_hierarchical(
                                &instance.scalars,
                                s,
                                slice,
                                &config.scatter_cfg,
                                coeff_bytes,
                            ),
                        };
                        let scattered = match scattered {
                            Ok(sc) => sc,
                            Err(e) => {
                                *out = Some(Err(MsmError::ScatterOverflow(e)));
                                continue;
                            }
                        };
                        let tpb = threads_per_bucket(gpu_threads, u64::from(slice.len()));
                        let sum = if digits.is_some() {
                            crate::bucket_sum::bucket_sum_signed(
                                &instance.points,
                                &scattered.buckets,
                                tpb,
                                model,
                                config.block_size,
                            )
                        } else {
                            bucket_sum(
                                &instance.points,
                                &scattered.buckets,
                                tpb,
                                model,
                                config.block_size,
                            )
                        };
                        *out = Some(Ok(SliceOutcome {
                            slice: *slice,
                            scatter_stats: scattered.stats,
                            sum,
                        }));
                    }
                });
            }
        });

        let mut done = Vec::with_capacity(slices.len());
        for o in outcomes {
            done.push(o.expect("all slices processed")?);
        }

        // ---- compose per-GPU times --------------------------------------
        let n_gpus = self.system.n_gpus();
        let prepass = if self.config.packed_coefficients {
            crate::scatter::scalar_prepass_seconds(
                instance.len() as u64,
                u64::from(C::SCALAR_BITS.div_ceil(8)),
                self.system.devices[0].mem_bandwidth_gbps,
                n_gpus,
            )
        } else {
            0.0
        };
        let mut scatter_per_gpu = vec![prepass; n_gpus];
        let mut sum_per_gpu = vec![0.0f64; n_gpus];
        let mut launches = Vec::new();
        for oc in &done {
            let dev = &self.system.devices[oc.slice.gpu];
            scatter_per_gpu[oc.slice.gpu] +=
                estimate_kernel_time(dev, &oc.scatter_stats, &self.cost_cfg).total();
            sum_per_gpu[oc.slice.gpu] +=
                estimate_kernel_time(dev, &oc.sum.stats, &self.cost_cfg).total();
            launches.push(oc.scatter_stats.clone());
            launches.push(oc.sum.stats.clone());
        }

        // ---- bucket-reduce ----------------------------------------------
        // group slices per window, reduce each slice with its offset, and
        // merge (slices of one window compose additively). On the CPU
        // path the host holds every partial (gathered below); on the GPU
        // path each GPU keeps its own window partials, merged by the
        // configured collective.
        let mut window_results = vec![XyzzPoint::<C>::identity(); n_windows as usize];
        let mut gpu_partials: Vec<Vec<XyzzPoint<C>>> =
            vec![vec![XyzzPoint::identity(); n_windows as usize]; n_gpus];
        let mut cpu_padds: u64 = 0;
        let mut gpu_reduce_per_gpu = vec![0.0f64; n_gpus];
        for oc in &done {
            let (w, ops) = bucket_reduce_serial(&oc.sum.sums, oc.slice.bucket_lo);
            if self.config.bucket_reduce_on_cpu {
                window_results[oc.slice.window as usize] =
                    window_results[oc.slice.window as usize].padd(&w);
                cpu_padds += ops + 1;
            } else {
                gpu_partials[oc.slice.gpu][oc.slice.window as usize] =
                    gpu_partials[oc.slice.gpu][oc.slice.window as usize].padd(&w);
                let stats = bucket_reduce_gpu_stats(
                    u64::from(oc.slice.len()),
                    s,
                    gpu_threads,
                    &model,
                    C::A_IS_ZERO,
                    self.config.block_size,
                );
                let dev = &self.system.devices[oc.slice.gpu];
                gpu_reduce_per_gpu[oc.slice.gpu] +=
                    estimate_kernel_time(dev, &stats, &self.cost_cfg).total();
                launches.push(stats);
            }
        }

        // ---- communication ------------------------------------------------
        let point_bytes = 4.0 * C::Base::LIMBS32 as f64 * 4.0; // XYZZ coords
        let comm = if self.config.bucket_reduce_on_cpu {
            // every bucket partial crosses to the host before the CPU
            // reduce (previously charged as one flat-pipe transfer)
            crate::comm::bucket_gather_schedule(&slices, point_bytes, &self.system)
        } else {
            // per-GPU window partials merge across the fabric with real
            // PADDs; the host receives the reduced vector
            let (merged, sched) = run_collective(
                self.config.collective,
                &gpu_partials,
                |a, b| a.padd(b),
                &self.system.fabric(),
                &CommConfig::default(),
                point_bytes,
            );
            window_results = merged;
            sched
        };
        let transfer_s = comm.total_s;
        // host-side combines implied by the collective (e.g. host-gather
        // reduces (g−1)·n_windows pairs on the CPU)
        let comm_host_s =
            cpu_seconds_for_padds(comm.host_reduce_ops, &model, self.system.cpu.int_ops_per_sec);

        // ---- window-reduce ------------------------------------------------
        let (result, wr_ops) = window_reduce(&window_results, s);

        // ---- timing composition -------------------------------------------
        let cpu_reduce_s = cpu_seconds_for_padds(cpu_padds, &model, self.system.cpu.int_ops_per_sec);
        let window_reduce_s =
            cpu_seconds_for_padds(wr_ops, &model, self.system.cpu.int_ops_per_sec);

        let per_gpu_s: Vec<f64> = (0..n_gpus)
            .map(|g| scatter_per_gpu[g] + sum_per_gpu[g] + gpu_reduce_per_gpu[g])
            .collect();
        let gpu_makespan = per_gpu_s.iter().copied().fold(0.0, f64::max);

        let bucket_reduce_s = if self.config.bucket_reduce_on_cpu {
            cpu_reduce_s
        } else {
            gpu_reduce_per_gpu.iter().copied().fold(0.0, f64::max) + comm_host_s
        };

        let total_s = if self.config.bucket_reduce_on_cpu && self.config.pipelined {
            // §3.2.3: the CPU reduce streams behind the GPUs; only the
            // last window's reduce sits on the critical path.
            let tail = cpu_reduce_s / f64::from(n_windows.max(1));
            gpu_makespan.max(cpu_reduce_s) + transfer_s + tail + window_reduce_s
        } else {
            gpu_makespan + transfer_s + bucket_reduce_s + window_reduce_s
        };

        Ok(MsmReport {
            result,
            window_size: s,
            n_windows,
            phases: PhaseBreakdown {
                scatter_s: scatter_per_gpu.iter().copied().fold(0.0, f64::max),
                bucket_sum_s: sum_per_gpu.iter().copied().fold(0.0, f64::max),
                bucket_reduce_s,
                window_reduce_s,
                transfer_s,
            },
            total_s,
            per_gpu_s,
            launches,
            comm: Some(comm),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ec::curves::{Bls12381G1, Bn254G1, Mnt4753G1};
    use rand::{rngs::StdRng, SeedableRng};

    fn check_correct<C: Curve>(n: usize, n_gpus: usize, seed: u64, cfg: DistMsmConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = MsmInstance::<C>::random(n, &mut rng);
        let engine = DistMsm::with_config(MultiGpuSystem::dgx_a100(n_gpus), cfg);
        let report = engine.execute(&inst).expect("execution succeeds");
        assert_eq!(report.result, inst.reference_result(), "MSM result wrong");
        assert!(report.total_s > 0.0 && report.total_s.is_finite());
    }

    #[test]
    fn correct_on_one_gpu() {
        check_correct::<Bn254G1>(200, 1, 1, DistMsmConfig::default());
    }

    #[test]
    fn correct_on_eight_gpus() {
        check_correct::<Bn254G1>(300, 8, 2, DistMsmConfig::default());
    }

    #[test]
    fn correct_with_explicit_small_window() {
        check_correct::<Bn254G1>(
            256,
            4,
            3,
            DistMsmConfig {
                window_size: Some(5),
                ..DistMsmConfig::default()
            },
        );
    }

    #[test]
    fn correct_with_naive_scatter_and_gpu_reduce() {
        check_correct::<Bn254G1>(
            128,
            2,
            4,
            DistMsmConfig {
                scatter: Some(ScatterKind::Naive),
                bucket_reduce_on_cpu: false,
                ..DistMsmConfig::default()
            },
        );
    }

    #[test]
    fn correct_on_bls12381() {
        check_correct::<Bls12381G1>(100, 8, 5, DistMsmConfig::default());
    }

    #[test]
    fn correct_on_mnt4753() {
        check_correct::<Mnt4753G1>(
            50,
            4,
            6,
            DistMsmConfig {
                window_size: Some(8),
                ..DistMsmConfig::default()
            },
        );
    }

    #[test]
    fn more_gpus_when_windows_split() {
        // 32 GPUs vs few windows exercises bucket-slice splitting
        check_correct::<Bn254G1>(
            200,
            32,
            7,
            DistMsmConfig {
                window_size: Some(4),
                ..DistMsmConfig::default()
            },
        );
    }

    #[test]
    fn signed_digits_engine_is_correct() {
        for (gpus, s) in [(1usize, None), (4, Some(9u32)), (8, Some(6))] {
            check_correct::<Bn254G1>(
                220,
                gpus,
                40 + gpus as u64,
                DistMsmConfig {
                    window_size: s,
                    signed_digits: true,
                    ..DistMsmConfig::default()
                },
            );
        }
    }

    #[test]
    fn signed_digits_use_fewer_buckets() {
        let mut rng = StdRng::seed_from_u64(44);
        let inst = MsmInstance::<Bn254G1>::random(128, &mut rng);
        let mk = |signed| {
            DistMsm::with_config(
                MultiGpuSystem::dgx_a100(2),
                DistMsmConfig {
                    window_size: Some(10),
                    signed_digits: signed,
                    ..DistMsmConfig::default()
                },
            )
            .execute(&inst)
            .unwrap()
        };
        let unsigned = mk(false);
        let signed = mk(true);
        assert_eq!(signed.result, unsigned.result);
        assert_eq!(signed.n_windows, unsigned.n_windows + 1);
        // bucket-reduce work halves with the bucket count
        assert!(
            signed.phases.bucket_reduce_s < 0.7 * unsigned.phases.bucket_reduce_s,
            "signed {} vs unsigned {}",
            signed.phases.bucket_reduce_s,
            unsigned.phases.bucket_reduce_s
        );
    }

    #[test]
    fn window_partial_gather_charged_and_monotone() {
        // Satellite fix: the device→host gather of per-GPU window
        // partials used to be free on the GPU-reduce path. It must now
        // appear in the phase report and grow with GPU count and with
        // point size.
        fn transfer<C: Curve>(gpus: usize) -> f64 {
            let mut rng = StdRng::seed_from_u64(77);
            let inst = MsmInstance::<C>::random(128, &mut rng);
            let engine = DistMsm::with_config(
                MultiGpuSystem::dgx_a100(gpus),
                DistMsmConfig {
                    window_size: Some(8),
                    scatter: Some(ScatterKind::Naive),
                    bucket_reduce_on_cpu: false,
                    ..DistMsmConfig::default()
                },
            );
            let rep = engine.execute(&inst).expect("execution succeeds");
            assert_eq!(rep.result, inst.reference_result());
            let comm = rep.comm.expect("engine reports its comm schedule");
            assert_eq!(comm.n_ranks, gpus);
            rep.phases.transfer_s
        }
        // monotone in GPU count (more partial vectors cross the fabric)
        let t1 = transfer::<Bn254G1>(1);
        let t2 = transfer::<Bn254G1>(2);
        let t4 = transfer::<Bn254G1>(4);
        let t8 = transfer::<Bn254G1>(8);
        assert!(t1 > 0.0, "gather must be charged, got {t1}");
        assert!(t2 > t1 && t4 > t2 && t8 > t4, "{t1} {t2} {t4} {t8}");
        // monotone in point size at equal window count: BLS12-381 points
        // (12 limbs) outweigh BN254 (8); MNT4-753 (24 limbs, more
        // windows) outweighs both
        let bn = transfer::<Bn254G1>(4);
        let bls = transfer::<Bls12381G1>(4);
        let mnt = transfer::<Mnt4753G1>(4);
        assert!(bls > bn && mnt > bls, "{bn} {bls} {mnt}");
    }

    #[test]
    fn collective_strategies_all_bit_exact_in_engine() {
        let mut rng = StdRng::seed_from_u64(78);
        let inst = MsmInstance::<Bn254G1>::random(160, &mut rng);
        for strat in distmsm_comms::CollectiveStrategy::ALL {
            let engine = DistMsm::with_config(
                MultiGpuSystem::dgx_a100(4),
                DistMsmConfig {
                    window_size: Some(7),
                    bucket_reduce_on_cpu: false,
                    collective: strat,
                    ..DistMsmConfig::default()
                },
            );
            let rep = engine.execute(&inst).expect("execution succeeds");
            assert_eq!(rep.result, inst.reference_result(), "{}", strat.name());
            assert!(rep.phases.transfer_s > 0.0);
        }
    }

    #[test]
    fn forced_hierarchical_overflow_reported() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = MsmInstance::<Bn254G1>::random(64, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(1),
            DistMsmConfig {
                window_size: Some(16),
                scatter: Some(ScatterKind::Hierarchical),
                ..DistMsmConfig::default()
            },
        );
        match engine.execute(&inst) {
            Err(MsmError::ScatterOverflow(e)) => assert!(e.needed > e.available),
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn empty_instance_rejected() {
        let inst = MsmInstance::<Bn254G1> {
            points: vec![],
            scalars: vec![],
        };
        let engine = DistMsm::new(MultiGpuSystem::dgx_a100(1));
        assert_eq!(engine.execute(&inst).unwrap_err(), MsmError::EmptyInstance);
    }

    #[test]
    fn auto_scatter_falls_back_to_naive_for_large_windows() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = MsmInstance::<Bn254G1>::random(64, &mut rng);
        let engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(1),
            DistMsmConfig {
                window_size: Some(18),
                scatter: None,
                ..DistMsmConfig::default()
            },
        );
        let report = engine.execute(&inst).expect("auto mode must not fail");
        assert_eq!(report.result, inst.reference_result());
    }
}
