//! The *bucket-reduce* and *window-reduce* steps.
//!
//! Bucket-reduce computes `W = Σ_b b·B_b` for one window. Executed
//! serially (the CPU offload of §3.2.3) it is two PADDs per bucket via
//! the classic suffix-sum trick; executed as a GPU parallel reduction it
//! costs each thread `2s·⌈2^s/N_T⌉ + …` operations (§3.1) — which is why
//! DistMSM moves it to the CPU for small windows.

use distmsm_ec::{Curve, Scalar, XyzzPoint};
use distmsm_gpu_sim::{LaunchStats, ThreadCost};
use distmsm_kernel::EcKernelModel;

/// Serial bucket-reduce over a bucket slice `[lo, lo + sums.len())`:
/// returns `Σ_i (lo + i)·B_i` and the number of PADD-equivalent
/// operations spent (for the CPU cost model).
pub fn bucket_reduce_serial<C: Curve>(sums: &[XyzzPoint<C>], lo: u32) -> (XyzzPoint<C>, u64) {
    if sums.is_empty() {
        return (XyzzPoint::identity(), 0);
    }
    // suffix sums give Σ (i+1)·B_i …
    let mut running = XyzzPoint::<C>::identity();
    let mut acc = XyzzPoint::<C>::identity();
    let mut ops: u64 = 0;
    for b in sums.iter().rev() {
        running = running.padd(b);
        acc = acc.padd(&running);
        ops += 2;
    }
    // … so correct by (lo - 1)·ΣB_i (negative correction for lo = 0).
    let correction: i64 = i64::from(lo) - 1;
    if correction != 0 {
        let scaled = running.scalar_mul(&C::Scalar::from_u64(correction.unsigned_abs()));
        let adj = if correction < 0 { scaled.neg() } else { scaled };
        acc = acc.padd(&adj);
        ops += 2 * (64 - correction.unsigned_abs().leading_zeros() as u64) + 1;
    }
    (acc, ops)
}

/// GPU parallel bucket-reduce statistics (the baseline path the paper
/// argues against for small `s`): per-thread cost per §3.1.
pub fn bucket_reduce_gpu_stats(
    n_buckets: u64,
    s: u32,
    gpu_threads: u64,
    model: &EcKernelModel,
    a_is_zero: bool,
    block_size: u32,
) -> LaunchStats {
    let threads = n_buckets.min(gpu_threads).max(1);
    let bpt = (n_buckets as f64 / gpu_threads as f64).ceil().max(1.0);
    let log_nt = (gpu_threads as f64).log2();
    // 2s·⌈2^s/N_T⌉ PADD+PDBL pairs, then the parallel reduction
    let pair = model.padd_cost().add(&model.pdbl_cost(a_is_zero));
    let mut max_thread = pair.scale(f64::from(s) * bpt);
    let tail = (bpt + log_nt).min(f64::from(s));
    max_thread = max_thread.add(&model.padd_cost().scale(tail));
    max_thread.global_syncs += log_nt.min(f64::from(s));

    let mut stats = LaunchStats::new(model.profile("bucket-reduce-gpu", block_size), threads);
    stats.total = max_thread.scale(threads as f64);
    stats.max_thread = max_thread;
    stats
}

/// Window-reduce: combines per-window results with Horner's rule,
/// `acc ← 2^s·acc + W_j` from the most significant window down. Returns
/// the final MSM value and the EC op count (`λ` PDBLs + `N_win` PADDs —
/// negligible, performed on the CPU).
pub fn window_reduce<C: Curve>(window_results: &[XyzzPoint<C>], s: u32) -> (XyzzPoint<C>, u64) {
    let mut acc = XyzzPoint::<C>::identity();
    let mut ops = 0;
    for w in window_results.iter().rev() {
        for _ in 0..s {
            acc = acc.pdbl();
            ops += 1;
        }
        acc = acc.padd(w);
        ops += 1;
    }
    (acc, ops)
}

/// CPU seconds for `padd_ops` PADD-equivalent operations, converting the
/// GPU-kernel op model to 64-bit host arithmetic (a quarter of the
/// 32-bit-limb MAC count).
pub fn cpu_seconds_for_padds(padd_ops: u64, model: &EcKernelModel, cpu_ops_per_sec: f64) -> f64 {
    let int_ops_per_padd = ThreadCost::default().add(&model.padd_cost()).int_ops / 4.0;
    padd_ops as f64 * int_ops_per_padd / cpu_ops_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ec::curves::Bn254G1;
    use distmsm_ec::{Curve, Scalar};
    use distmsm_kernel::{EcKernelModel, PaddOptimizations};

    fn multiples(ks: &[u64]) -> Vec<XyzzPoint<Bn254G1>> {
        let g = Bn254G1::generator();
        ks.iter().map(|&k| g.scalar_mul(&Scalar::from_u64(k))).collect()
    }

    #[test]
    fn reduce_from_bucket_zero() {
        // buckets 0..4 holding k·G with k = [7, 1, 2, 3]:
        // expected Σ b·B_b = 0·7G + 1·1G + 2·2G + 3·3G = 14G
        let sums = multiples(&[7, 1, 2, 3]);
        let (w, ops) = bucket_reduce_serial(&sums, 0);
        assert_eq!(w, Bn254G1::generator().scalar_mul(&Scalar::from_u64(14)));
        assert!(ops >= 8);
    }

    #[test]
    fn reduce_with_offset_slice() {
        // buckets 5..8 holding [1G, 1G, 2G]: Σ = 5·1 + 6·1 + 7·2 = 25
        let sums = multiples(&[1, 1, 2]);
        let (w, _) = bucket_reduce_serial(&sums, 5);
        assert_eq!(w, Bn254G1::generator().scalar_mul(&Scalar::from_u64(25)));
    }

    #[test]
    fn reduce_slices_compose() {
        // splitting a window's buckets across two "GPUs" must not change
        // the reduced value
        let all = multiples(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let (whole, _) = bucket_reduce_serial(&all, 0);
        let (lo, _) = bucket_reduce_serial(&all[..4], 0);
        let (hi, _) = bucket_reduce_serial(&all[4..], 4);
        assert_eq!(whole, lo.padd(&hi));
    }

    #[test]
    fn empty_reduce_is_identity() {
        let (w, ops) = bucket_reduce_serial::<Bn254G1>(&[], 7);
        assert!(w.is_identity());
        assert_eq!(ops, 0);
    }

    #[test]
    fn window_reduce_matches_direct() {
        // windows of width 4 holding W_j = j+1 times G:
        // Σ 2^{4j}·(j+1)·G
        let ws = multiples(&[1, 2, 3]);
        let (r, ops) = window_reduce(&ws, 4);
        let expect = 1 + 2 * (1 << 4) + 3 * (1 << 8);
        assert_eq!(r, Bn254G1::generator().scalar_mul(&Scalar::from_u64(expect)));
        assert_eq!(ops, 3 * 4 + 3);
    }

    #[test]
    fn gpu_reduce_stats_grow_with_s() {
        let model = EcKernelModel::new(8, PaddOptimizations::all());
        let small = bucket_reduce_gpu_stats(1 << 11, 11, 1 << 16, &model, true, 256);
        let large = bucket_reduce_gpu_stats(1 << 20, 20, 1 << 16, &model, true, 256);
        assert!(large.max_thread.int_ops > small.max_thread.int_ops);
    }

    #[test]
    fn cpu_seconds_linear() {
        let model = EcKernelModel::new(8, PaddOptimizations::all());
        let t1 = cpu_seconds_for_padds(1000, &model, 1.5e11);
        let t2 = cpu_seconds_for_padds(2000, &model, 1.5e11);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
