//! Window-partial checkpointing for supervised giant MSMs.
//!
//! A `2^26`-class MSM is the most expensive phase of the proof pipeline
//! (PAPERS.md: ZKProphet), so losing an in-flight shard to a pod crash
//! means paying the dominant cost twice. This module makes the windowed
//! Pippenger evaluation *resumable*: windows are computed in ascending
//! order, and every [`CheckpointConfig::interval`] completed windows the
//! engine hands the caller an encoded [`WindowCheckpoint`] — the prefix
//! of window partials `W_0..W_k` — to append to its durable journal. A
//! restarted pod decodes the newest durable checkpoint and recomputes
//! only the remaining windows.
//!
//! Restored checkpoints are **untrusted state** under the 2G2T
//! outsourcing model: decoding validates framing and curve membership
//! (a bit-flipped coordinate fails [`point_from_uncompressed`]), but a
//! *valid-looking* wrong checkpoint (e.g. two partials swapped) can only
//! be caught downstream — the fleet layer resumes both the real and the
//! blinded-twin streams and re-runs the `R2 = α·R1 + V` check on the
//! finished pair before the result is used, falling back to a scratch
//! recompute on rejection (`distmsm-fleet`'s crash soak exercises
//! exactly this).
//!
//! Recovery economics ([`estimate_checkpoint_recovery`]): resuming costs
//! the lost-window recompute plus checkpoint-write overhead, so recovery
//! beats restart-from-scratch whenever at least one checkpoint is
//! durable at the crash — for a mid-run crash, any interval at or below
//! `n_windows / 2` (the documented threshold asserted by the crash
//! soak and pinned in `BENCH_msm.json`'s `ckpt_rows`).

use crate::analytic::CurveDesc;
use crate::engine::{window_shape, DistMsm};
use distmsm_ec::serialize::{point_from_uncompressed, point_to_uncompressed, CanonicalBytes};
use distmsm_ec::{Affine, Curve, MsmInstance, Scalar, XyzzPoint};

/// Modeled fixed latency of one durable checkpoint append, seconds.
pub const CHECKPOINT_LATENCY_S: f64 = 100e-6;
/// Modeled durable-write throughput cost, seconds per byte (1 GB/s).
pub const CHECKPOINT_BYTE_S: f64 = 1e-9;

/// How often the windowed engine emits durable checkpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Emit a checkpoint every `interval` completed windows (≥ 1).
    pub interval: u32,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self { interval: 4 }
    }
}

/// A durable prefix of the windowed evaluation: the partials
/// `W_0 .. W_{next_window-1}`, normalised to affine for a canonical
/// byte encoding.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowCheckpoint<C: Curve> {
    /// Pippenger window size `s` the partials were computed with.
    pub window_size: u32,
    /// First window still to compute; `partials.len() == next_window`.
    pub next_window: u32,
    /// Completed window partials `W_0 .. W_{next_window-1}`.
    pub partials: Vec<XyzzPoint<C>>,
}

/// Typed failures of the checkpointed execution path. Restored
/// checkpoints are untrusted input, so every defect is an error value,
/// never a panic.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Checkpoint bytes that do not parse, or contain a coordinate that
    /// is non-canonical / off-curve.
    Undecodable {
        /// What failed.
        detail: String,
    },
    /// A checkpoint computed with a different window size than the
    /// resuming engine uses.
    WindowSizeMismatch {
        /// Window size the engine would use.
        expected: u32,
        /// Window size the checkpoint claims.
        found: u32,
    },
    /// A checkpoint claiming more completed windows than the scalar
    /// width allows.
    WindowOutOfRange {
        /// Windows the shape admits.
        n_windows: u32,
        /// `next_window` the checkpoint claims.
        found: u32,
    },
    /// The checkpoint interval must be at least one window.
    ZeroInterval,
    /// The instance is empty (mirrors `MsmError::EmptyInstance`).
    EmptyInstance,
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::Undecodable { detail } => {
                write!(f, "undecodable checkpoint: {detail}")
            }
            CheckpointError::WindowSizeMismatch { expected, found } => {
                write!(f, "checkpoint window size {found} != engine window size {expected}")
            }
            CheckpointError::WindowOutOfRange { n_windows, found } => {
                write!(f, "checkpoint next_window {found} exceeds {n_windows} windows")
            }
            CheckpointError::ZeroInterval => write!(f, "checkpoint interval must be ≥ 1"),
            CheckpointError::EmptyInstance => write!(f, "cannot checkpoint an empty MSM"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl<C: Curve> WindowCheckpoint<C> {
    /// The empty checkpoint: nothing computed yet.
    pub fn empty(window_size: u32) -> Self {
        Self { window_size, next_window: 0, partials: Vec::new() }
    }

    /// Canonical byte encoding:
    /// `window_size: u32 ‖ next_window: u32 ‖ affine points`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.window_size.to_le_bytes());
        out.extend_from_slice(&self.next_window.to_le_bytes());
        for p in &self.partials {
            out.extend(point_to_uncompressed(&p.to_affine()));
        }
        out
    }

    /// Strict decode; validates lengths, canonical field ranges and
    /// curve membership of every partial.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 8 {
            return Err(CheckpointError::Undecodable { detail: "short header".into() });
        }
        let window_size =
            u32::from_le_bytes(bytes[0..4].try_into().expect("4-byte slice"));
        let next_window =
            u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
        let point_len = 1 + 2 * C::Base::encoded_len();
        let body = &bytes[8..];
        if body.len() != next_window as usize * point_len {
            return Err(CheckpointError::Undecodable {
                detail: format!(
                    "{} partial bytes, expected {} × {}",
                    body.len(),
                    next_window,
                    point_len
                ),
            });
        }
        let mut partials = Vec::with_capacity(next_window as usize);
        for (w, chunk) in body.chunks_exact(point_len).enumerate() {
            let p: Affine<C> = point_from_uncompressed(chunk).ok_or_else(|| {
                CheckpointError::Undecodable {
                    detail: format!("partial {w} is not a canonical on-curve point"),
                }
            })?;
            partials.push(p.to_xyzz());
        }
        Ok(Self { window_size, next_window, partials })
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + self.partials.len() * (1 + 2 * C::Base::encoded_len())
    }
}

/// One unsigned Pippenger window partial `W_w = Σ_i digit_w(k_i)·P_i`
/// by bucket accumulation and suffix running-sum.
pub fn window_partial<C: Curve>(
    points: &[Affine<C>],
    scalars: &[C::Scalar],
    w: u32,
    s: u32,
    n_buckets: usize,
) -> XyzzPoint<C> {
    let mut buckets = vec![XyzzPoint::<C>::identity(); n_buckets];
    for (p, k) in points.iter().zip(scalars) {
        let d = k.window(w * s, s) as usize;
        if d != 0 {
            buckets[d].pacc(p);
        }
    }
    let mut running = XyzzPoint::identity();
    let mut partial = XyzzPoint::identity();
    for b in buckets.iter().skip(1).rev() {
        running = running.padd(b);
        partial = partial.padd(&running);
    }
    partial
}

/// Horner fold of a full window-partial vector: `R = Σ_w 2^{w·s}·W_w`.
pub fn fold_window_partials<C: Curve>(partials: &[XyzzPoint<C>], s: u32) -> XyzzPoint<C> {
    let mut acc = XyzzPoint::identity();
    for w in (0..partials.len()).rev() {
        for _ in 0..s {
            acc = acc.pdbl();
        }
        acc = acc.padd(&partials[w]);
    }
    acc
}

/// Outcome of a (possibly resumed) checkpointed windowed execution.
#[derive(Clone, Debug)]
pub struct WindowedMsmReport<C: Curve> {
    /// The MSM result (bit-exact vs the serial reference).
    pub result: XyzzPoint<C>,
    /// Total windows of the evaluation.
    pub n_windows: u32,
    /// Windows actually computed this run (`n_windows` from scratch,
    /// fewer on resume).
    pub windows_computed: u32,
    /// Checkpoints emitted to the sink this run.
    pub checkpoints_taken: u32,
    /// Modeled compute seconds, scaled from the engine's analytic
    /// estimate by the fraction of windows computed.
    pub compute_s: f64,
    /// Modeled durable-write seconds for the emitted checkpoints.
    pub checkpoint_s: f64,
}

impl DistMsm {
    /// Executes an MSM window-by-window, emitting a durable
    /// [`WindowCheckpoint`] to `sink` every [`CheckpointConfig::interval`]
    /// completed windows, and resuming from `resume` when given.
    ///
    /// The caller owns durability: `sink` typically appends
    /// `checkpoint.encode()` to a `distmsm-journal` log. The final
    /// window never emits a checkpoint (the completed result supersedes
    /// it).
    ///
    /// `resume` is validated (window size, range, point validity is the
    /// caller's decode step) but **not trusted**: callers in the 2G2T
    /// outsourcing model must re-verify the finished result against a
    /// blinded twin before use.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on an empty instance, a zero interval, or a
    /// resume checkpoint inconsistent with this engine's window shape.
    pub fn execute_windowed<C: Curve, F>(
        &self,
        instance: &MsmInstance<C>,
        cfg: &CheckpointConfig,
        resume: Option<WindowCheckpoint<C>>,
        mut sink: F,
    ) -> Result<WindowedMsmReport<C>, CheckpointError>
    where
        F: FnMut(&WindowCheckpoint<C>),
    {
        let n = instance.points.len();
        if n == 0 {
            return Err(CheckpointError::EmptyInstance);
        }
        if cfg.interval == 0 {
            return Err(CheckpointError::ZeroInterval);
        }
        let curve = CurveDesc::of::<C>();
        let s = self.window_size_for(n, &curve);
        let (n_windows, n_buckets) = window_shape(C::SCALAR_BITS, s, false);

        let mut ckpt = match resume {
            Some(r) => {
                if r.window_size != s {
                    return Err(CheckpointError::WindowSizeMismatch {
                        expected: s,
                        found: r.window_size,
                    });
                }
                if r.next_window > n_windows || r.partials.len() != r.next_window as usize {
                    return Err(CheckpointError::WindowOutOfRange {
                        n_windows,
                        found: r.next_window.max(r.partials.len() as u32),
                    });
                }
                r
            }
            None => WindowCheckpoint::empty(s),
        };

        let start = ckpt.next_window;
        let mut checkpoints_taken = 0u32;
        let mut checkpoint_s = 0.0f64;
        for w in start..n_windows {
            let partial =
                window_partial(&instance.points, &instance.scalars, w, s, n_buckets as usize);
            ckpt.partials.push(partial);
            ckpt.next_window = w + 1;
            let done = ckpt.next_window - start;
            if ckpt.next_window < n_windows && done % cfg.interval == 0 {
                sink(&ckpt);
                checkpoints_taken += 1;
                checkpoint_s +=
                    CHECKPOINT_LATENCY_S + ckpt.encoded_len() as f64 * CHECKPOINT_BYTE_S;
            }
        }

        let windows_computed = n_windows - start;
        let compute_s = self.estimate_seconds(n, &curve) * f64::from(windows_computed)
            / f64::from(n_windows.max(1));
        Ok(WindowedMsmReport {
            result: fold_window_partials(&ckpt.partials, s),
            n_windows,
            windows_computed,
            checkpoints_taken,
            compute_s,
            checkpoint_s,
        })
    }
}

/// One row of the checkpoint-interval recovery trajectory: the modeled
/// cost of a mid-run pod crash with and without durable window
/// checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointRecoveryEstimate {
    /// Checkpoint interval, windows.
    pub interval: u32,
    /// Total windows of the evaluation.
    pub n_windows: u32,
    /// Checkpoint-write overhead added to the fault-free run, seconds.
    pub overhead_s: f64,
    /// Cost of resuming after a crash at window `n_windows / 2`:
    /// recompute from the newest durable boundary, seconds.
    pub recovery_s: f64,
    /// Cost of restarting the evaluation from scratch, seconds.
    pub scratch_s: f64,
}

/// Models the recovery economics of [`DistMsm::execute_windowed`] for a
/// crash at the run's midpoint (window `⌊W/2⌋`): recovery recomputes
/// only the windows past the newest durable checkpoint, so it is
/// strictly cheaper than scratch iff at least one checkpoint was
/// durable — i.e. iff `interval ≤ ⌊W/2⌋`, the documented threshold.
pub fn estimate_checkpoint_recovery(
    engine: &DistMsm,
    n: u64,
    curve: &CurveDesc,
    point_bytes: usize,
    interval: u32,
) -> CheckpointRecoveryEstimate {
    let s = engine.window_size_for(n as usize, curve);
    let n_windows = window_shape(curve.scalar_bits, s, false).0;
    let interval = interval.max(1);
    let total_s = engine.estimate_seconds(n as usize, curve);
    let per_window_s = total_s / f64::from(n_windows.max(1));

    // Checkpoints emitted during a full fault-free run (the final
    // window never checkpoints); checkpoint k carries k·interval
    // partials.
    let emitted = (n_windows.saturating_sub(1)) / interval;
    let mut overhead_s = 0.0;
    for k in 1..=emitted {
        let bytes = 8 + (k * interval) as usize * point_bytes;
        overhead_s += CHECKPOINT_LATENCY_S + bytes as f64 * CHECKPOINT_BYTE_S;
    }

    let crash_window = n_windows / 2;
    let durable = (crash_window / interval) * interval;
    let recovery_s = per_window_s * f64::from(n_windows - durable);
    CheckpointRecoveryEstimate {
        interval,
        n_windows,
        overhead_s,
        recovery_s,
        scratch_s: total_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ec::curves::Bn254G1;
    use distmsm_gpu_sim::MultiGpuSystem;
    use rand::{rngs::StdRng, SeedableRng};

    fn engine() -> DistMsm {
        DistMsm::with_config(
            MultiGpuSystem::flat_pool(2),
            crate::DistMsmConfig::builder()
                .window_size(8)
                .build()
                .expect("static test config is valid"),
        )
    }

    fn instance(n: usize) -> MsmInstance<Bn254G1> {
        MsmInstance::random(n, &mut StdRng::seed_from_u64(9))
    }

    #[test]
    fn windowed_matches_reference_and_checkpoints_roundtrip() {
        let inst = instance(37);
        let eng = engine();
        let mut saved: Vec<Vec<u8>> = Vec::new();
        let report = eng
            .execute_windowed(&inst, &CheckpointConfig { interval: 3 }, None, |c| {
                saved.push(c.encode())
            })
            .expect("checkpointed run succeeds");
        assert_eq!(report.result.to_affine(), inst.reference_result().to_affine());
        assert_eq!(report.windows_computed, report.n_windows);
        assert_eq!(report.checkpoints_taken as usize, saved.len());
        assert!(report.checkpoints_taken > 0);
        assert!(report.checkpoint_s > 0.0 && report.compute_s > 0.0);
        for bytes in &saved {
            let c = WindowCheckpoint::<Bn254G1>::decode(bytes).expect("own encoding decodes");
            assert_eq!(c.partials.len(), c.next_window as usize);
        }
    }

    #[test]
    fn resume_from_every_checkpoint_is_bit_exact_and_cheaper() {
        let inst = instance(29);
        let eng = engine();
        let mut saved: Vec<Vec<u8>> = Vec::new();
        let full = eng
            .execute_windowed(&inst, &CheckpointConfig { interval: 4 }, None, |c| {
                saved.push(c.encode())
            })
            .expect("full run succeeds");
        for bytes in &saved {
            let ckpt = WindowCheckpoint::<Bn254G1>::decode(bytes).expect("decodes");
            let resumed_windows = full.n_windows - ckpt.next_window;
            let report = eng
                .execute_windowed(&inst, &CheckpointConfig { interval: 4 }, Some(ckpt), |_| {})
                .expect("resumed run succeeds");
            assert_eq!(report.result.to_affine(), full.result.to_affine());
            assert_eq!(report.windows_computed, resumed_windows);
            assert!(report.compute_s < full.compute_s, "resume must be cheaper");
        }
    }

    #[test]
    fn corrupt_and_mismatched_checkpoints_are_typed_errors() {
        let inst = instance(21);
        let eng = engine();
        let mut saved: Vec<Vec<u8>> = Vec::new();
        eng.execute_windowed(&inst, &CheckpointConfig { interval: 2 }, None, |c| {
            saved.push(c.encode())
        })
        .expect("run succeeds");
        let good = saved.last().expect("at least one checkpoint").clone();

        // Bit-flipped coordinate: fails canonical/on-curve validation.
        let mut flipped = good.clone();
        let off = flipped.len() - 3;
        flipped[off] ^= 0x10;
        assert!(matches!(
            WindowCheckpoint::<Bn254G1>::decode(&flipped),
            Err(CheckpointError::Undecodable { .. })
        ));

        // Truncated bytes: length mismatch.
        assert!(matches!(
            WindowCheckpoint::<Bn254G1>::decode(&good[..good.len() - 1]),
            Err(CheckpointError::Undecodable { .. })
        ));

        // Window-size mismatch is rejected at resume.
        let mut wrong = WindowCheckpoint::<Bn254G1>::decode(&good).expect("decodes");
        wrong.window_size += 1;
        assert!(matches!(
            eng.execute_windowed(&inst, &CheckpointConfig::default(), Some(wrong), |_| {}),
            Err(CheckpointError::WindowSizeMismatch { .. })
        ));

        // Out-of-range next_window is rejected.
        let mut far = WindowCheckpoint::<Bn254G1>::decode(&good).expect("decodes");
        far.next_window = 10_000;
        assert!(matches!(
            eng.execute_windowed(&inst, &CheckpointConfig::default(), Some(far), |_| {}),
            Err(CheckpointError::WindowOutOfRange { .. })
        ));
    }

    #[test]
    fn swapped_partials_decode_but_diverge() {
        // A valid-looking wrong checkpoint: decoding cannot catch it —
        // this is exactly why restored state is re-verified via 2G2T at
        // the fleet layer before use.
        let inst = instance(18);
        let eng = engine();
        let mut saved: Vec<Vec<u8>> = Vec::new();
        let full = eng
            .execute_windowed(&inst, &CheckpointConfig { interval: 2 }, None, |c| {
                saved.push(c.encode())
            })
            .expect("run succeeds");
        let mut ckpt =
            WindowCheckpoint::<Bn254G1>::decode(saved.last().expect("checkpoint")).expect("decodes");
        ckpt.partials.swap(0, 1);
        let report = eng
            .execute_windowed(&inst, &CheckpointConfig { interval: 2 }, Some(ckpt), |_| {})
            .expect("corrupt-but-decodable checkpoint resumes");
        assert_ne!(
            report.result.to_affine(),
            full.result.to_affine(),
            "swapped partials must change the result (and be caught by 2G2T)"
        );
    }

    #[test]
    fn recovery_estimate_threshold() {
        let eng = engine();
        let curve = CurveDesc::of::<Bn254G1>();
        let w = window_shape(254, 8, false).0;
        for interval in [1u32, 2, 4, 8, 16] {
            let e = estimate_checkpoint_recovery(&eng, 1 << 12, &curve, 97, interval);
            assert_eq!(e.n_windows, w);
            if interval <= w / 2 {
                assert!(
                    e.recovery_s < e.scratch_s,
                    "interval {interval} ≤ W/2 must beat scratch"
                );
            }
            assert!(e.overhead_s > 0.0);
        }
        // Past the threshold no checkpoint is durable at the midpoint.
        let e = estimate_checkpoint_recovery(&eng, 1 << 12, &curve, 97, w);
        assert_eq!(e.recovery_s, e.scratch_s);
    }
}
