//! The *bucket-scatter* step: naive vs. three-level hierarchical (§3.2.1).
//!
//! Both variants are executed functionally (producing the actual bucket
//! contents) and metered for the simulator. The naive variant issues one
//! global atomic per coefficient; with few buckets (small windows — the
//! multi-GPU regime) those atomics contend heavily. The hierarchical
//! variant (the paper's Algorithm 3) first scatters within a thread block
//! in shared memory, committing each local bucket with a single global
//! atomic — at the price of shared-memory capacity, which runs out for
//! large windows (the paper reports execution failures at `s > 14`).

use crate::plan::Slice;
use distmsm_ec::Scalar;
use distmsm_gpu_sim::trace::LaunchRecorder;
use distmsm_gpu_sim::{KernelProfile, LaunchStats, ThreadCost};
use distmsm_kernel::ir::{self, IndexExpr, PlanIr, Poly, Region, RegionFamily, SymBound};

/// Simulated address namespaces for the access trace (see
/// `distmsm_gpu_sim::trace`). Each launch gets its own trace, so bases only
/// need to be distinct *within* one kernel.
#[cfg(feature = "trace")]
mod addr {
    /// Global: packed per-window coefficient array, indexed by point.
    pub const COEFF: u64 = 0x1000_0000_0000;
    /// Global: per-bucket append cursors, indexed by absolute bucket.
    pub const CURSOR: u64 = 0x2000_0000_0000;
    /// Global: bucket payload; `DATA + (bucket << 24 | slot)`.
    pub const DATA: u64 = 0x4000_0000_0000;
    /// Shared (block-local): per-local-bucket counters.
    pub const SHM_CNT: u64 = 0x100_0000;
    /// Shared (block-local): locally scattered point slots.
    pub const SHM_SLOT: u64 = 0x200_0000;
}

/// Emits the naive-scatter access pattern: every thread reads its
/// coefficients and appends matching points straight into the global
/// buckets — one cursor atomic plus one payload write per insert. The
/// payload slot is the point's final position in its bucket, i.e. the
/// location the claimed cursor value denotes; slots are therefore unique
/// and the only cross-thread collisions are the (atomic) cursor bumps.
#[cfg(feature = "trace")]
fn emit_naive_trace(
    rec: &mut LaunchRecorder,
    n_points: usize,
    per_thread_points: u64,
    buckets: &[Vec<u32>],
    bucket_lo: u32,
) {
    use distmsm_gpu_sim::trace::{AccessKind, Space};
    let thread_of = |i: usize| {
        let t = i as u64 / per_thread_points.max(1);
        ((t / 256) as u32, (t % 256) as u32) // profile block size is 256
    };
    for i in 0..n_points {
        let (blk, tid) = thread_of(i);
        rec.access(blk, tid, 0, Space::Global, AccessKind::Read, addr::COEFF + i as u64);
    }
    for (bi, bucket) in buckets.iter().enumerate() {
        let abs = u64::from(bucket_lo) + bi as u64;
        for (slot, &entry) in bucket.iter().enumerate() {
            let i = (entry & !SIGN_BIT) as usize;
            let (blk, tid) = thread_of(i);
            rec.access(blk, tid, 0, Space::Global, AccessKind::Atomic, addr::CURSOR + abs);
            rec.access(
                blk,
                tid,
                0,
                Space::Global,
                AccessKind::Write,
                addr::DATA + ((abs << 24) | slot as u64),
            );
        }
    }
}

/// Emits the hierarchical-scatter access pattern (Algorithm 3). Phase 0 is
/// the in-block local scatter: coefficient reads, two shared-memory
/// counter atomics per matching point (count + offset claim) and one write
/// into the block's slot array. After the block's declared barriers, the
/// commit phase issues one global cursor atomic per non-empty local bucket
/// and writes the claimed (disjoint) payload range. `contrib(i)` returns
/// the slice-local bucket of point `i`, or `None` when it lands outside.
#[cfg(feature = "trace")]
fn emit_hierarchical_trace(
    rec: &mut LaunchRecorder,
    n_points: usize,
    range: usize,
    bucket_lo: u32,
    cfg: &ScatterConfig,
    contrib: impl Fn(usize) -> Option<usize>,
) {
    use distmsm_gpu_sim::trace::{AccessKind, Space};
    let ppb = (cfg.block_size as usize * cfg.points_per_thread as usize).max(1);
    let k = (cfg.points_per_thread as usize).max(1);
    let barrier_count = 3 + (f64::from(cfg.block_size).log2().ceil() as u32);
    let n_blocks = n_points.div_ceil(ppb).max(1);
    let mut cursors = vec![0u64; range];
    for blk in 0..n_blocks {
        let start = blk * ppb;
        let end = (start + ppb).min(n_points);
        let mut local: Vec<Vec<usize>> = vec![Vec::new(); range];
        for i in start..end {
            let j = i - start;
            let tid = (j / k) as u32;
            rec.access(blk as u32, tid, 0, Space::Global, AccessKind::Read, addr::COEFF + i as u64);
            if let Some(bi) = contrib(i) {
                rec.access(blk as u32, tid, 0, Space::Shared, AccessKind::Atomic, addr::SHM_CNT + bi as u64);
                rec.access(blk as u32, tid, 0, Space::Shared, AccessKind::Atomic, addr::SHM_CNT + bi as u64);
                rec.access(blk as u32, tid, 0, Space::Shared, AccessKind::Write, addr::SHM_SLOT + j as u64);
                local[bi].push(i);
            }
        }
        rec.block_barriers(blk as u32, cfg.block_size, barrier_count);
        for (bi, pts) in local.iter().enumerate() {
            if pts.is_empty() {
                continue;
            }
            let tid = (bi % cfg.block_size as usize) as u32;
            let abs = u64::from(bucket_lo) + bi as u64;
            rec.access(blk as u32, tid, barrier_count, Space::Shared, AccessKind::Read, addr::SHM_CNT + bi as u64);
            rec.access(blk as u32, tid, barrier_count, Space::Global, AccessKind::Atomic, addr::CURSOR + abs);
            for _ in pts {
                let slot = cursors[bi];
                cursors[bi] += 1;
                rec.access(
                    blk as u32,
                    tid,
                    barrier_count,
                    Space::Global,
                    AccessKind::Write,
                    addr::DATA + ((abs << 24) | slot),
                );
            }
        }
    }
}

/// Which scatter implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScatterKind {
    /// One global atomic per coefficient.
    Naive,
    /// The paper's three-level hierarchical scatter (Algorithm 3).
    Hierarchical,
}

/// Tuning of the hierarchical scatter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScatterConfig {
    /// Threads per block.
    pub block_size: u32,
    /// Coefficients handled per thread (`K` in Algorithm 3).
    pub points_per_thread: u32,
    /// Shared memory available to one block, in bytes.
    pub shared_mem_per_block: u32,
}

impl Default for ScatterConfig {
    fn default() -> Self {
        Self {
            block_size: 1024,
            points_per_thread: 32,
            shared_mem_per_block: 164 * 1024,
        }
    }
}

/// Scatter failure: the local buckets do not fit in shared memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedMemoryOverflow {
    /// Bytes the block would need.
    pub needed: u32,
    /// Bytes available.
    pub available: u32,
}

impl core::fmt::Display for SharedMemoryOverflow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "hierarchical scatter needs {} B of shared memory per block but only {} B are available",
            self.needed, self.available
        )
    }
}

impl std::error::Error for SharedMemoryOverflow {}

/// Seconds for the one-time scalar pre-pass: the full λ-bit scalars are
/// read once (distributed over the GPUs), repacked into 4-byte per-window
/// coefficient views, and the packed views staged on every GPU (each GPU
/// scans all N coefficients for its bucket slice). Purely memory-bound.
pub fn scalar_prepass_seconds(
    n_points: u64,
    scalar_bytes: u64,
    bandwidth_gbps: f64,
    n_gpus: usize,
) -> f64 {
    let repack = n_points as f64 * (scalar_bytes as f64 * 1.5) / n_gpus as f64;
    let stage = n_points as f64 * 4.0;
    (repack + stage) / (bandwidth_gbps * 1e9)
}

/// Result of scattering one window slice on one GPU.
#[derive(Clone, Debug)]
pub struct ScatterOutcome {
    /// Point indices per bucket, indexed by `bucket - slice.bucket_lo`.
    /// Bucket 0 (zero coefficient) is never populated.
    pub buckets: Vec<Vec<u32>>,
    /// Metered launch statistics for the simulator.
    pub stats: LaunchStats,
}

fn bucket_of<S: Scalar>(scalar: &S, window: u32, s: u32) -> u64 {
    scalar.window(window * s, s)
}

/// Naive scatter: every coefficient lands in its global bucket through
/// one global atomic on the bucket's cursor.
pub fn scatter_naive<S: Scalar>(
    scalars: &[S],
    s: u32,
    slice: &Slice,
    gpu_threads: u64,
    coeff_bytes: f64,
) -> ScatterOutcome {
    let range = slice.len() as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); range];
    let mut inserts: u64 = 0;
    for (i, k) in scalars.iter().enumerate() {
        let b = bucket_of(k, slice.window, s);
        if b == 0 {
            continue;
        }
        if b >= u64::from(slice.bucket_lo) && b < u64::from(slice.bucket_hi) {
            buckets[(b - u64::from(slice.bucket_lo)) as usize].push(i as u32);
            inserts += 1;
        }
    }

    let stats =
        naive_scatter_stats(scalars.len() as u64, inserts, slice.len(), gpu_threads, coeff_bytes);

    let rec = LaunchRecorder::start("scatter-naive", slice.gpu as u16);
    #[cfg(feature = "trace")]
    let mut rec = rec;
    #[cfg(feature = "trace")]
    if rec.active() {
        let per_thread = (scalars.len() as u64).div_ceil(stats.threads);
        emit_naive_trace(&mut rec, scalars.len(), per_thread, &buckets, slice.bucket_lo);
        rec.note_metered_atomics(stats.distinct_atomic_addrs);
    }
    rec.commit();

    ScatterOutcome { buckets, stats }
}

/// Builds the naive-scatter launch statistics from event counts. Shared
/// between the functional path (exact counts) and the analytic
/// paper-scale path (expected counts).
/// `coeff_bytes` is the per-coefficient read width: full λ-bit scalars
/// (32–96 B) for a standalone kernel, 4 B when the engine's packed
/// per-window views are in use (their one-time construction is charged by
/// [`scalar_prepass_seconds`]).
pub fn naive_scatter_stats(
    n_points: u64,
    inserts: u64,
    slice_buckets: u32,
    gpu_threads: u64,
    coeff_bytes: f64,
) -> LaunchStats {
    let threads = n_points.min(gpu_threads).max(1);
    let per_thread_points = n_points.div_ceil(threads) as f64;
    let per_thread_inserts = inserts.div_ceil(threads).max(1) as f64;
    let scalar_bytes = coeff_bytes;

    let profile = KernelProfile::new("scatter-naive", 32, 0, 256);
    let mut stats = LaunchStats::new(profile, threads);
    let per_thread = ThreadCost {
        int_ops: per_thread_points * 6.0,
        global_atomics: per_thread_inserts,
        global_bytes: per_thread_points * scalar_bytes + per_thread_inserts * 8.0,
        ..ThreadCost::default()
    };
    stats.max_thread = per_thread;
    stats.total = per_thread.scale(threads as f64);
    // contention: all concurrent threads hammer the slice's bucket cursors
    stats.distinct_atomic_addrs = u64::from(slice_buckets).max(1);
    stats
}

/// Shared-memory bytes one hierarchical-scatter block needs for a slice:
/// one `u32` counter per local bucket plus a 2-byte `point_id` slot per
/// locally scattered point (Algorithm 3's `reg_idx ‖ tid` encoding).
pub fn hierarchical_shared_bytes(slice_buckets: u32, cfg: &ScatterConfig) -> u32 {
    4 * slice_buckets + 2 * cfg.block_size * cfg.points_per_thread
}

/// Three-level hierarchical scatter (Algorithm 3): registers → shared
/// memory → one global atomic per (block, non-empty bucket).
///
/// # Errors
///
/// Fails with [`SharedMemoryOverflow`] when the per-block local buckets
/// exceed shared memory — the paper's observed failure mode for `s > 14`.
pub fn scatter_hierarchical<S: Scalar>(
    scalars: &[S],
    s: u32,
    slice: &Slice,
    cfg: &ScatterConfig,
    coeff_bytes: f64,
) -> Result<ScatterOutcome, SharedMemoryOverflow> {
    let needed = hierarchical_shared_bytes(slice.len(), cfg);
    if needed > cfg.shared_mem_per_block {
        return Err(SharedMemoryOverflow {
            needed,
            available: cfg.shared_mem_per_block,
        });
    }

    let range = slice.len() as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); range];
    let points_per_block = (cfg.block_size * cfg.points_per_thread) as usize;
    let n_blocks = scalars.len().div_ceil(points_per_block).max(1);
    let mut inserts: u64 = 0;
    let mut committed_buckets: u64 = 0; // global atomics actually issued

    for (block_idx, block) in scalars.chunks(points_per_block.max(1)).enumerate() {
        // local scatter: group this block's points by bucket
        let mut local: Vec<Vec<u32>> = vec![Vec::new(); range];
        let offset = block_idx * points_per_block;
        for (j, k) in block.iter().enumerate() {
            let b = bucket_of(k, slice.window, s);
            if b == 0 {
                continue;
            }
            if b >= u64::from(slice.bucket_lo) && b < u64::from(slice.bucket_hi) {
                local[(b - u64::from(slice.bucket_lo)) as usize].push((offset + j) as u32);
            }
        }
        // commit: one global cursor atomic per non-empty local bucket
        for (bi, l) in local.into_iter().enumerate() {
            if !l.is_empty() {
                committed_buckets += 1;
                inserts += l.len() as u64;
                buckets[bi].extend(l);
            }
        }
    }

    let _ = inserts;
    let stats = hierarchical_scatter_stats(
        n_blocks as u64,
        committed_buckets,
        slice.len(),
        cfg,
        coeff_bytes,
    );

    let rec = LaunchRecorder::start("scatter-hierarchical", slice.gpu as u16);
    #[cfg(feature = "trace")]
    let mut rec = rec;
    #[cfg(feature = "trace")]
    if rec.active() {
        emit_hierarchical_trace(&mut rec, scalars.len(), range, slice.bucket_lo, cfg, |i| {
            let b = bucket_of(&scalars[i], slice.window, s);
            (b != 0 && b >= u64::from(slice.bucket_lo) && b < u64::from(slice.bucket_hi))
                .then(|| (b - u64::from(slice.bucket_lo)) as usize)
        });
        rec.note_metered_atomics(stats.distinct_atomic_addrs);
    }
    rec.commit();

    Ok(ScatterOutcome { buckets, stats })
}

/// Builds the hierarchical-scatter launch statistics from event counts.
/// Shared between the functional path (exact committed-bucket counts) and
/// the analytic paper-scale path (expected counts).
/// See [`naive_scatter_stats`] for the meaning of `coeff_bytes`.
pub fn hierarchical_scatter_stats(
    n_blocks: u64,
    committed_buckets: u64,
    slice_buckets: u32,
    cfg: &ScatterConfig,
    coeff_bytes: f64,
) -> LaunchStats {
    let threads = n_blocks * u64::from(cfg.block_size);
    let k = f64::from(cfg.points_per_thread);
    let buckets_per_thread = (u64::from(slice_buckets).div_ceil(u64::from(cfg.block_size))) as f64;
    let commit_atomics_per_thread = (committed_buckets.div_ceil(threads.max(1)).max(1)) as f64;
    let per_thread = ThreadCost {
        // coefficient decode + register caching (lines 2–6) + shared store
        int_ops: k * 8.0 + buckets_per_thread * (f64::from(cfg.block_size).log2() + 2.0),
        // one counter increment and one offset claim per point (lines 6, 10)
        shared_atomics: 2.0 * k,
        // prefix sum + phase transitions
        barriers: 3.0 + f64::from(cfg.block_size).log2(),
        global_atomics: commit_atomics_per_thread,
        global_bytes: k * coeff_bytes + k * 4.0,
        shared_bytes: k * 2.0 * 2.0,
        ..ThreadCost::default()
    };
    let profile = KernelProfile::new(
        "scatter-hierarchical",
        32, // Algorithm 3: "register usage per thread is 32, regardless of bucket count"
        hierarchical_shared_bytes(slice_buckets, cfg),
        cfg.block_size,
    );
    let mut stats = LaunchStats::new(profile, threads);
    stats.max_thread = per_thread;
    stats.total = per_thread.scale(threads as f64);
    stats.distinct_atomic_addrs = u64::from(slice_buckets).max(1) * n_blocks;
    stats.distinct_shared_addrs = u64::from(slice_buckets).max(1);
    stats
}

/// Sign-encoding for signed-digit scatter entries: the MSB of the stored
/// point index carries the digit's sign.
pub const SIGN_BIT: u32 = 1 << 31;

/// Scatters precomputed signed digits (one row per point, one column per
/// window) for a slice over buckets `0..=2^{s−1}` of `slice.window`.
/// Entries carry [`SIGN_BIT`] for negative digits. The launch statistics
/// reuse the naive/hierarchical builders — the kernels are identical up
/// to the magnitude/sign split.
pub fn scatter_signed_digits(
    digits: &[Vec<i32>],
    slice: &Slice,
    kind: ScatterKind,
    gpu_threads: u64,
    cfg: &ScatterConfig,
    coeff_bytes: f64,
) -> Result<ScatterOutcome, SharedMemoryOverflow> {
    let range = slice.len() as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); range];
    let mut inserts: u64 = 0;
    for (i, row) in digits.iter().enumerate() {
        let d = row[slice.window as usize];
        if d == 0 {
            continue;
        }
        let b = d.unsigned_abs() as u64;
        if b >= u64::from(slice.bucket_lo) && b < u64::from(slice.bucket_hi) {
            let mut entry = i as u32;
            if d < 0 {
                entry |= SIGN_BIT;
            }
            buckets[(b - u64::from(slice.bucket_lo)) as usize].push(entry);
            inserts += 1;
        }
    }
    let stats = match kind {
        ScatterKind::Naive => {
            naive_scatter_stats(digits.len() as u64, inserts, slice.len(), gpu_threads, coeff_bytes)
        }
        ScatterKind::Hierarchical => {
            let needed = hierarchical_shared_bytes(slice.len(), cfg);
            if needed > cfg.shared_mem_per_block {
                return Err(SharedMemoryOverflow {
                    needed,
                    available: cfg.shared_mem_per_block,
                });
            }
            let ppb = u64::from(cfg.block_size) * u64::from(cfg.points_per_thread);
            let n_blocks = (digits.len() as u64).div_ceil(ppb).max(1);
            // committed-bucket estimate mirrors the unsigned path
            let committed = (inserts.min(n_blocks * u64::from(slice.len()))).max(1);
            hierarchical_scatter_stats(n_blocks, committed, slice.len(), cfg, coeff_bytes)
        }
    };

    let rec = LaunchRecorder::start(stats.profile.name, slice.gpu as u16);
    #[cfg(feature = "trace")]
    let mut rec = rec;
    #[cfg(feature = "trace")]
    if rec.active() {
        match kind {
            ScatterKind::Naive => {
                let per_thread = (digits.len() as u64).div_ceil(stats.threads);
                emit_naive_trace(&mut rec, digits.len(), per_thread, &buckets, slice.bucket_lo);
            }
            ScatterKind::Hierarchical => {
                emit_hierarchical_trace(&mut rec, digits.len(), range, slice.bucket_lo, cfg, |i| {
                    let d = digits[i][slice.window as usize];
                    let b = d.unsigned_abs() as u64;
                    (d != 0 && b >= u64::from(slice.bucket_lo) && b < u64::from(slice.bucket_hi))
                        .then(|| (b - u64::from(slice.bucket_lo)) as usize)
                });
            }
        }
        rec.note_metered_atomics(stats.distinct_atomic_addrs);
    }
    rec.commit();

    Ok(ScatterOutcome { buckets, stats })
}

/// Slot bits of the `DATA` payload namespace: bucket `abs` writes slot
/// `slot` at `DATA + (abs << SLOT_BITS | slot)`, so each bucket owns a
/// band of `2^SLOT_BITS` addresses.
pub const SLOT_BITS: u32 = 24;

/// Symbolic IR of the bucket-payload commit phase: bucket `bkt` of
/// `NB` appends its entries into the stride-`2^24` address band
/// `[bkt·2^24, bkt·2^24 + S)`, where `S` bounds the per-bucket slot
/// count. The bands are pairwise disjoint for **all** bucket counts
/// given the emitter-guaranteed side condition `2^24 − S ≥ 0` (the
/// append cursor claims unique slots strictly below the shift). The
/// write set is sparse by design — no coverage obligation.
pub fn commit_write_ir() -> PlanIr {
    let band = Poly::con(1 << SLOT_BITS);
    let bkt = Poly::var("bkt");
    PlanIr {
        name: "scatter-commit".into(),
        space: (
            IndexExpr::con(0),
            IndexExpr::Poly(Poly::var("NB").mul(&band)),
        ),
        cover: false,
        families: vec![RegionFamily {
            writer: "bucket",
            param: "bkt",
            count: IndexExpr::var("NB"),
            region: Region::Interval {
                lo: IndexExpr::Poly(bkt.mul(&band)),
                hi: IndexExpr::Poly(bkt.mul(&band).add(&Poly::var("S"))),
            },
        }],
        bounds: vec![SymBound::at_least("NB", 1), SymBound::at_least("S", 1)],
        // S ≤ 2^24: slot counts never reach the bucket shift.
        assumptions: vec![band.sub(&Poly::var("S"))],
    }
}

/// Symbolic IR of the hierarchical scatter's block tiling (Algorithm 3
/// phase 0): block `blk` of `⌈N/P⌉` consumes points
/// `[blk·P, min((blk+1)·P, N))`, `P = block_size · points_per_thread`.
/// Disjoint and exactly covering `[0, N)` for all `N` and `P`.
pub fn scatter_block_ir() -> PlanIr {
    PlanIr {
        name: "scatter-block-tile".into(),
        space: (IndexExpr::con(0), IndexExpr::var("N")),
        cover: true,
        families: vec![ir::strided_tile_family(
            "block",
            "blk",
            &Poly::var("N"),
            &Poly::var("P"),
        )],
        bounds: vec![SymBound::at_least("N", 1), SymBound::at_least("P", 1)],
        assumptions: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ff::Uint;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn scalars(n: usize, seed: u64) -> Vec<Uint<4>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Uint([rng.random(), rng.random(), rng.random(), rng.random::<u64>() >> 2]))
            .collect()
    }

    fn full_slice(s: u32) -> Slice {
        Slice {
            gpu: 0,
            window: 3,
            bucket_lo: 0,
            bucket_hi: 1 << s,
        }
    }

    #[test]
    fn naive_and_hierarchical_agree() {
        let ks = scalars(4096, 1);
        let s = 8;
        let slice = full_slice(s);
        let naive = scatter_naive(&ks, s, &slice, 1 << 16, 4.0);
        let hier = scatter_hierarchical(&ks, s, &slice, &ScatterConfig::default(), 4.0).unwrap();
        assert_eq!(naive.buckets.len(), hier.buckets.len());
        for (a, b) in naive.buckets.iter().zip(&hier.buckets) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "bucket contents must agree as multisets");
        }
    }

    #[test]
    fn buckets_contain_correct_points() {
        let ks = scalars(512, 2);
        let s = 6;
        let slice = full_slice(s);
        let out = scatter_naive(&ks, s, &slice, 1 << 16, 4.0);
        for (bi, bucket) in out.buckets.iter().enumerate() {
            for &p in bucket {
                assert_eq!(
                    ks[p as usize].window(slice.window * s, s),
                    bi as u64,
                    "point {p} in wrong bucket"
                );
            }
        }
        // bucket 0 never populated
        assert!(out.buckets[0].is_empty());
    }

    #[test]
    fn slice_restricts_range() {
        let ks = scalars(2048, 3);
        let s = 8;
        let slice = Slice {
            gpu: 1,
            window: 3,
            bucket_lo: 64,
            bucket_hi: 128,
        };
        let out = scatter_hierarchical(&ks, s, &slice, &ScatterConfig::default(), 4.0).unwrap();
        assert_eq!(out.buckets.len(), 64);
        let full = scatter_naive(&ks, s, &full_slice(s), 1 << 16, 4.0);
        for (i, b) in out.buckets.iter().enumerate() {
            let mut got = b.clone();
            let mut expect = full.buckets[64 + i].clone();
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn shared_memory_overflow_at_large_windows() {
        // the paper: "when s > 14, shared memory is insufficient ...
        // leading to execution failures"
        let ks = scalars(64, 4);
        let cfg = ScatterConfig::default();
        assert!(scatter_hierarchical(&ks, 14, &full_slice(14), &cfg, 4.0).is_ok());
        let err = scatter_hierarchical(&ks, 15, &full_slice(15), &cfg, 4.0).unwrap_err();
        assert!(err.needed > err.available);
        assert!(err.to_string().contains("shared memory"));
    }

    #[test]
    fn naive_metering_counts_inserts() {
        let ks = scalars(1000, 5);
        let out = scatter_naive(&ks, 8, &full_slice(8), 1 << 10, 4.0);
        // ~1000 inserts minus zero-coefficient skips
        let inserted: usize = out.buckets.iter().map(Vec::len).sum();
        assert!(inserted > 900);
        assert!(out.stats.total.global_atomics >= inserted as f64 * 0.9);
        assert_eq!(out.stats.distinct_atomic_addrs, 1 << 8);
    }

    #[test]
    fn hierarchical_issues_fewer_global_atomics() {
        let ks = scalars(1 << 14, 6);
        let s = 8; // small window: the multi-GPU regime
        let slice = full_slice(s);
        let naive = scatter_naive(&ks, s, &slice, 1 << 16, 4.0);
        let hier = scatter_hierarchical(&ks, s, &slice, &ScatterConfig::default(), 4.0).unwrap();
        assert!(
            hier.stats.total.global_atomics < naive.stats.total.global_atomics / 8.0,
            "hierarchical {} vs naive {}",
            hier.stats.total.global_atomics,
            naive.stats.total.global_atomics
        );
    }
}
