//! Baseline MSM implementations for comparison.
//!
//! The paper benchmarks against single-GPU-optimised implementations
//! (Bellperson, cuZK, Icicle, Mina, sppark, Yrrid) and reports the best
//! per cell as "BG". For baselines without multi-GPU support it
//! "augments them by parallelizing along the N-dim" — each GPU runs the
//! full single-GPU algorithm on an `N/G` slice of the points and the CPU
//! adds the per-GPU results.
//!
//! [`BestGpuBaseline`] reproduces that family: large single-GPU-optimal
//! windows, naive scatter, on-GPU bucket-reduce, N-dim multi-GPU split.
//! [`BestGpuBaseline::no_opt`] is the paper's NO-OPT configuration for
//! Figure 10 (single-GPU Pippenger design *and* no PADD kernel
//! optimisations).

use crate::engine::{DistMsm, DistMsmConfig, MsmError, MsmReport, PhaseBreakdown};
use crate::reduce::cpu_seconds_for_padds;
use crate::scatter::ScatterKind;
use distmsm_comms::{run_collective, CollectiveStrategy, CommConfig};
use distmsm_ec::{Curve, MsmInstance, XyzzPoint};
use distmsm_gpu_sim::MultiGpuSystem;
use distmsm_kernel::{EcKernelModel, PaddOptimizations};

/// Kernel quality of a baseline: the leading baselines ship hand-tuned
/// kernels (dedicated accumulation, good schedules) but none of the
/// paper's tensor-core or spill machinery.
pub fn tuned_baseline_kernel() -> PaddOptimizations {
    PaddOptimizations {
        dedicated_pacc: true,
        optimal_order: true,
        explicit_spill: false,
        tc_montmul: false,
        tc_onthefly_compact: false,
    }
}

/// A single-GPU-designed Pippenger implementation augmented for
/// multi-GPU by splitting points across GPUs (N-dim).
#[derive(Clone, Debug)]
pub struct BestGpuBaseline {
    system: MultiGpuSystem,
    kernel_opts: PaddOptimizations,
    window_size: Option<u32>,
}

impl BestGpuBaseline {
    /// Best-baseline configuration (tuned kernels).
    pub fn new(system: MultiGpuSystem) -> Self {
        Self {
            system,
            kernel_opts: tuned_baseline_kernel(),
            window_size: None,
        }
    }

    /// The paper's NO-OPT configuration: same algorithm, no kernel
    /// optimisations at all.
    pub fn no_opt(system: MultiGpuSystem) -> Self {
        Self {
            system,
            kernel_opts: PaddOptimizations::none(),
            window_size: None,
        }
    }

    /// Overrides the window size (defaults to the single-GPU optimum —
    /// the defining trait of these baselines).
    pub fn with_window_size(mut self, s: u32) -> Self {
        self.window_size = Some(s);
        self
    }

    /// The underlying system.
    pub fn system(&self) -> &MultiGpuSystem {
        &self.system
    }

    /// Executes the baseline MSM: each GPU runs single-GPU Pippenger on a
    /// point slice; the CPU merges the per-GPU results.
    ///
    /// # Errors
    ///
    /// Propagates sub-MSM failures (see [`MsmError`]).
    pub fn execute<C: Curve>(&self, instance: &MsmInstance<C>) -> Result<MsmReport<C>, MsmError> {
        if instance.is_empty() {
            return Err(MsmError::EmptyInstance);
        }
        let g = self.system.n_gpus();
        let n = instance.len();
        let single_gpu = MultiGpuSystem {
            devices: vec![self.system.devices[0].clone()],
            cpu: self.system.cpu.clone(),
            interconnect_gbps: self.system.interconnect_gbps,
            peer_gbps: self.system.peer_gbps,
            // each sub-MSM runs on one GPU; the merge below crosses the
            // real fabric
            topology: None,
        };
        // the single-GPU optimum: what these implementations were tuned
        // for — chosen by minimising the baseline's own cost estimate,
        // like a real implementation's empirical window tuning
        let s = self.window_size.unwrap_or_else(|| {
            let desc = crate::analytic::CurveDesc {
                name: C::NAME,
                limbs32: <C::Base as distmsm_ec::FieldElement>::LIMBS32,
                scalar_bits: C::SCALAR_BITS,
                a_is_zero: C::A_IS_ZERO,
            };
            crate::analytic::estimate_best_gpu(n as u64, &desc, &self.system, self.kernel_opts)
                .window_size
        });
        let config = DistMsmConfig {
            window_size: Some(s),
            scatter: Some(ScatterKind::Naive),
            kernel_opts: self.kernel_opts,
            bucket_reduce_on_cpu: false,
            pipelined: false,
            packed_coefficients: false, // baselines stream raw scalars
            ..DistMsmConfig::default()
        };
        let engine = DistMsm::with_config(single_gpu, config);

        let mut partials: Vec<Vec<XyzzPoint<C>>> = Vec::with_capacity(g);
        let mut per_gpu_s = Vec::with_capacity(g);
        let mut phases = PhaseBreakdown::default();
        let mut launches = Vec::new();
        let mut window_size = 0;
        let mut n_windows = 0;
        for slice in 0..g {
            let lo = n * slice / g;
            let hi = n * (slice + 1) / g;
            if lo == hi {
                per_gpu_s.push(0.0);
                partials.push(vec![XyzzPoint::identity()]);
                continue;
            }
            let sub = MsmInstance {
                points: instance.points[lo..hi].to_vec(),
                scalars: instance.scalars[lo..hi].to_vec(),
            };
            let rep = engine.execute(&sub)?;
            partials.push(vec![rep.result]);
            per_gpu_s.push(rep.total_s);
            phases.scatter_s = phases.scatter_s.max(rep.phases.scatter_s);
            phases.bucket_sum_s = phases.bucket_sum_s.max(rep.phases.bucket_sum_s);
            phases.bucket_reduce_s = phases.bucket_reduce_s.max(rep.phases.bucket_reduce_s);
            phases.window_reduce_s += rep.phases.window_reduce_s;
            phases.transfer_s = phases.transfer_s.max(rep.phases.transfer_s);
            launches.extend(rep.launches);
            window_size = rep.window_size;
            n_windows = rep.n_windows;
        }
        // The CPU merge of per-GPU results crosses the real fabric (the
        // N-dim augmentation ships one point per GPU to the host).
        let point_bytes = 4.0 * <C::Base as distmsm_ec::FieldElement>::LIMBS32 as f64 * 4.0;
        let (merged, sched) = run_collective(
            CollectiveStrategy::HostGather,
            &partials,
            |a, b| a.padd(b),
            &self.system.fabric(),
            &CommConfig::default(),
            point_bytes,
        );
        let model = EcKernelModel::new(
            <C::Base as distmsm_ec::FieldElement>::LIMBS32,
            self.kernel_opts,
        );
        let merge_s = sched.total_s
            + cpu_seconds_for_padds(
                sched.host_reduce_ops,
                &model,
                self.system.cpu.int_ops_per_sec,
            );
        phases.transfer_s += sched.total_s;
        let total_s = per_gpu_s.iter().copied().fold(0.0, f64::max) + merge_s;
        Ok(MsmReport {
            result: merged[0],
            window_size,
            n_windows,
            phases,
            total_s,
            per_gpu_s,
            launches,
            comm: Some(sched),
            recovery: None,
        })
    }
}

/// Relative single-GPU calibration of the named baselines per curve,
/// reproducing the Table 3 "BG" superscripts: which implementation wins a
/// given (curve, size) cell. Factors are multipliers on
/// [`BestGpuBaseline`]'s time (lower = faster implementation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NamedBaseline {
    /// Implementation name as in Table 2.
    pub name: &'static str,
    /// Table 2 identifier.
    pub id: u8,
    /// Single-GPU time multiplier vs the generic tuned baseline.
    pub single_gpu_factor: f64,
    /// Additional per-doubling-of-GPUs inefficiency (poor scaling —
    /// Figure 8 shows Yrrid scaling worst).
    pub scaling_penalty: f64,
}

/// The baseline implementations of Table 2 with calibration factors
/// chosen to reproduce the paper's relative standings (Yrrid fastest on
/// one GPU for BLS12-377 but worst scaling; sppark strong generally;
/// Mina far behind on MNT4753).
pub fn named_baselines(curve: &str) -> Vec<NamedBaseline> {
    match curve {
        "BLS12-377" => vec![
            NamedBaseline { name: "Yrrid", id: 6, single_gpu_factor: 0.72, scaling_penalty: 1.35 },
            NamedBaseline { name: "sppark", id: 5, single_gpu_factor: 1.00, scaling_penalty: 1.10 },
            NamedBaseline { name: "cuZK", id: 2, single_gpu_factor: 1.15, scaling_penalty: 1.02 },
            NamedBaseline { name: "Icicle", id: 3, single_gpu_factor: 1.40, scaling_penalty: 1.12 },
        ],
        "BLS12-381" => vec![
            NamedBaseline { name: "sppark", id: 5, single_gpu_factor: 1.00, scaling_penalty: 1.10 },
            NamedBaseline { name: "cuZK", id: 2, single_gpu_factor: 1.18, scaling_penalty: 1.02 },
            NamedBaseline { name: "Icicle", id: 3, single_gpu_factor: 1.45, scaling_penalty: 1.12 },
            NamedBaseline { name: "Bellperson", id: 1, single_gpu_factor: 6.0, scaling_penalty: 1.15 },
        ],
        "BN254" => vec![
            NamedBaseline { name: "sppark", id: 5, single_gpu_factor: 1.00, scaling_penalty: 1.10 },
            NamedBaseline { name: "Icicle", id: 3, single_gpu_factor: 1.35, scaling_penalty: 1.12 },
        ],
        // The generic simulated baseline already suffers the full
        // register-pressure collapse on 753-bit integers, so the named
        // factors are small; Mina leads (the paper's Table 3 superscript)
        // until cuZK's flatter scaling overtakes it at high GPU counts.
        // Mina's MNT4753 kernels predate every §4 optimisation and run
        // far from a tuned implementation (the paper measures DistMSM at
        // 15.5× Mina on average); cuZK trails it on this curve.
        "MNT4753" => vec![
            NamedBaseline { name: "Mina", id: 4, single_gpu_factor: 5.0, scaling_penalty: 1.08 },
            NamedBaseline { name: "cuZK", id: 2, single_gpu_factor: 7.5, scaling_penalty: 1.02 },
        ],
        _ => vec![NamedBaseline { name: "generic", id: 0, single_gpu_factor: 1.0, scaling_penalty: 1.1 }],
    }
}

/// The best named baseline's time for a GPU count, given the generic
/// baseline's measured/simulated time.
pub fn best_named_time(curve: &str, generic_time_s: f64, n_gpus: usize) -> (f64, &'static str, u8) {
    let doublings = (n_gpus as f64).log2();
    named_baselines(curve)
        .into_iter()
        .map(|b| {
            let t = generic_time_s * b.single_gpu_factor * b.scaling_penalty.powf(doublings);
            (t, b.name, b.id)
        })
        .min_by(|a, b| a.0.total_cmp(&b.0))
        // infallible: named_baselines always returns at least the
        // generic fallback entry
        .expect("non-empty baseline set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ec::curves::Bn254G1;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn baseline_is_correct() {
        let mut rng = StdRng::seed_from_u64(31);
        let inst = MsmInstance::<Bn254G1>::random(200, &mut rng);
        for g in [1usize, 4] {
            let b = BestGpuBaseline::new(MultiGpuSystem::dgx_a100(g)).with_window_size(8);
            let rep = b.execute(&inst).expect("baseline runs");
            assert_eq!(rep.result, inst.reference_result(), "g={g}");
        }
    }

    #[test]
    fn no_opt_is_correct() {
        let mut rng = StdRng::seed_from_u64(32);
        let inst = MsmInstance::<Bn254G1>::random(150, &mut rng);
        let noopt = BestGpuBaseline::no_opt(MultiGpuSystem::dgx_a100(2))
            .with_window_size(8)
            .execute(&inst)
            .unwrap();
        assert_eq!(noopt.result, inst.reference_result());
    }

    #[test]
    fn no_opt_is_slower_at_scale() {
        // At paper-scale N the kernel optimisations dominate; at toy N the
        // fixed intra-bucket merge overhead hides them, so this claim is
        // checked analytically.
        use crate::analytic::{estimate_best_gpu, CurveDesc};
        let sys = MultiGpuSystem::dgx_a100(8);
        let tuned = estimate_best_gpu(1 << 24, &CurveDesc::MNT4753, &sys, tuned_baseline_kernel());
        let noopt =
            estimate_best_gpu(1 << 24, &CurveDesc::MNT4753, &sys, PaddOptimizations::none());
        assert!(
            noopt.total_s > tuned.total_s,
            "NO-OPT {} must be slower than tuned {}",
            noopt.total_s,
            tuned.total_s
        );
    }

    #[test]
    fn yrrid_wins_single_gpu_bls377_but_loses_at_scale() {
        // Table 3 / §5.1: Yrrid leads BLS12-377 on one GPU; by 32 GPUs it
        // is outpaced (even by cuZK).
        let (_, name1, _) = best_named_time("BLS12-377", 1.0, 1);
        assert_eq!(name1, "Yrrid");
        let (_, name32, _) = best_named_time("BLS12-377", 1.0, 32);
        assert_ne!(name32, "Yrrid");
    }

    #[test]
    fn mina_is_the_mnt4753_baseline() {
        let (_, name, id) = best_named_time("MNT4753", 1.0, 8);
        assert_eq!(name, "Mina");
        assert_eq!(id, 4);
    }

    #[test]
    fn empty_rejected() {
        let b = BestGpuBaseline::new(MultiGpuSystem::dgx_a100(1));
        let inst = MsmInstance::<Bn254G1> {
            points: vec![],
            scalars: vec![],
        };
        assert!(matches!(b.execute(&inst), Err(MsmError::EmptyInstance)));
    }
}
