//! Paper-scale analytic timing (no functional execution).
//!
//! The evaluation sizes (`N = 2^22 … 2^28`, Table 3) cannot be executed
//! functionally on a development machine, so this module evaluates the
//! same cost composition as [`crate::engine`] from *expected* event
//! counts. The expectation formulas are validated against functional
//! metering at reduced `N` by the `analytic_matches_functional`
//! integration tests.

use crate::baseline::best_named_time;
use crate::bucket_sum::{bucket_sum_stats, threads_per_bucket};
use crate::engine::{DistMsmConfig, PhaseBreakdown};
use crate::plan::plan_slices;
use crate::reduce::{bucket_reduce_gpu_stats, cpu_seconds_for_padds};
use crate::scatter::{
    hierarchical_scatter_stats, hierarchical_shared_bytes, naive_scatter_stats, ScatterKind,
};
use distmsm_gpu_sim::{estimate_kernel_time, CostModelConfig, MultiGpuSystem};
use distmsm_kernel::EcKernelModel;

/// Static description of a curve for analytic runs (no point arithmetic
/// is performed, only limb widths and scalar widths matter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CurveDesc {
    /// Curve name as used in the paper's tables.
    pub name: &'static str,
    /// 32-bit limbs per base-field element.
    pub limbs32: usize,
    /// Scalar bit width λ.
    pub scalar_bits: u32,
    /// Whether `a = 0` in the curve equation.
    pub a_is_zero: bool,
}

impl CurveDesc {
    /// The descriptor matching a statically-known [`distmsm_ec::Curve`]
    /// type, so generic callers (e.g. the service front-end estimating
    /// deadlines) can obtain analytic timings without a lookup table.
    pub fn of<C: distmsm_ec::Curve>() -> Self {
        Self {
            name: C::NAME,
            limbs32: <C::Base as distmsm_ec::FieldElement>::LIMBS32,
            scalar_bits: C::SCALAR_BITS,
            a_is_zero: C::A_IS_ZERO,
        }
    }

    /// BN254 (Table 1: 254-bit scalars and points).
    pub const BN254: Self = Self {
        name: "BN254",
        limbs32: 8,
        scalar_bits: 254,
        a_is_zero: true,
    };
    /// BLS12-377 (253-bit scalars, 377-bit points).
    pub const BLS12_377: Self = Self {
        name: "BLS12-377",
        limbs32: 12,
        scalar_bits: 253,
        a_is_zero: true,
    };
    /// BLS12-381 (255-bit scalars, 381-bit points).
    pub const BLS12_381: Self = Self {
        name: "BLS12-381",
        limbs32: 12,
        scalar_bits: 255,
        a_is_zero: true,
    };
    /// MNT4-753 (753-bit everything; `a = 2`).
    pub const MNT4753: Self = Self {
        name: "MNT4753",
        limbs32: 24,
        scalar_bits: 753,
        a_is_zero: false,
    };

    /// The four curves of the paper's evaluation.
    pub const ALL: [Self; 4] = [Self::BN254, Self::BLS12_377, Self::BLS12_381, Self::MNT4753];
}

/// Analytic timing result (mirror of `MsmReport` without a point value).
#[derive(Clone, Debug)]
pub struct MsmEstimate {
    /// Window size used.
    pub window_size: u32,
    /// Number of windows.
    pub n_windows: u32,
    /// Per-phase breakdown.
    pub phases: PhaseBreakdown,
    /// Total estimated seconds.
    pub total_s: f64,
    /// Whether the configuration could execute at all (hierarchical
    /// scatter overflow ⇒ `false`, the paper's `s > 14` failures).
    pub feasible: bool,
}

/// Estimates a DistMSM execution at scale `n` on `system`.
///
/// With `config.window_size == None` the window size is chosen by
/// minimising this very estimate over `s ∈ 4..=22` — DistMSM tunes itself
/// against its own cost model, which (unlike the raw §3.1 op count)
/// includes the CPU bucket-reduce and transfer costs that push multi-GPU
/// configurations toward small windows (§3.2).
pub fn estimate_distmsm(
    n: u64,
    curve: &CurveDesc,
    system: &MultiGpuSystem,
    config: &DistMsmConfig,
) -> MsmEstimate {
    match config.window_size {
        Some(s) => estimate_distmsm_with_s(n, curve, system, config, s),
        None => (4..=22u32)
            .map(|s| estimate_distmsm_with_s(n, curve, system, config, s))
            .min_by(|a, b| a.total_s.total_cmp(&b.total_s))
            // infallible: the literal range 4..=22 is non-empty
            .expect("non-empty window range"),
    }
}

/// [`estimate_distmsm`] at an explicit window size.
pub fn estimate_distmsm_with_s(
    n: u64,
    curve: &CurveDesc,
    system: &MultiGpuSystem,
    config: &DistMsmConfig,
    s: u32,
) -> MsmEstimate {
    let cost_cfg = CostModelConfig::default();
    let model = EcKernelModel::new(curve.limbs32, config.kernel_opts);
    let dev = &system.devices[0];
    let resident = dev.resident_threads_per_sm(
        model.regs_per_thread(),
        model.shared_mem_per_block(config.block_size),
        config.block_size,
    );
    let gpu_threads = (u64::from(resident) * u64::from(dev.sm_count)).max(1);

    let (n_windows, n_buckets) = if config.signed_digits {
        (curve.scalar_bits.div_ceil(s) + 1, (1u64 << (s - 1)) + 1)
    } else {
        (curve.scalar_bits.div_ceil(s), 1u64 << s)
    };
    let slices = plan_slices(n_windows, n_buckets as u32, system.n_gpus());

    let n_gpus = system.n_gpus();
    let prepass = if config.packed_coefficients {
        crate::scatter::scalar_prepass_seconds(
            n,
            u64::from(curve.scalar_bits.div_ceil(8)),
            system.devices[0].mem_bandwidth_gbps,
            n_gpus,
        )
    } else {
        0.0
    };
    let coeff_bytes = if config.packed_coefficients {
        4.0
    } else {
        f64::from(curve.scalar_bits.div_ceil(8))
    };
    let mut scatter_per_gpu = vec![prepass; n_gpus];
    let mut sum_per_gpu = vec![0.0f64; n_gpus];
    let mut gpu_reduce_per_gpu = vec![0.0f64; n_gpus];
    let mut cpu_padds = 0u64;
    let mut feasible = true;

    for slice in &slices {
        let dev = &system.devices[slice.gpu];
        let slice_buckets = u64::from(slice.len());
        let expected_inserts = n * slice_buckets / n_buckets;

        // --- scatter ------------------------------------------------------
        let kind = match config.scatter {
            Some(k) => k,
            None => {
                if hierarchical_shared_bytes(slice.len(), &config.scatter_cfg)
                    > config.scatter_cfg.shared_mem_per_block
                {
                    ScatterKind::Naive
                } else {
                    ScatterKind::Hierarchical
                }
            }
        };
        let scatter_stats = match kind {
            ScatterKind::Naive => {
                naive_scatter_stats(n, expected_inserts, slice.len(), gpu_threads, coeff_bytes)
            }
            ScatterKind::Hierarchical => {
                if hierarchical_shared_bytes(slice.len(), &config.scatter_cfg)
                    > config.scatter_cfg.shared_mem_per_block
                {
                    feasible = false;
                    continue;
                }
                let points_per_block = u64::from(config.scatter_cfg.block_size)
                    * u64::from(config.scatter_cfg.points_per_thread);
                let n_blocks = n.div_ceil(points_per_block).max(1);
                // expected non-empty local buckets per block
                let lam = points_per_block as f64 / n_buckets as f64;
                let nonempty_frac = 1.0 - (-lam).exp();
                let committed = (slice_buckets as f64 * nonempty_frac * n_blocks as f64) as u64;
                hierarchical_scatter_stats(
                    n_blocks,
                    committed.max(1),
                    slice.len(),
                    &config.scatter_cfg,
                    coeff_bytes,
                )
            }
        };
        scatter_per_gpu[slice.gpu] += estimate_kernel_time(dev, &scatter_stats, &cost_cfg).total();

        // --- bucket-sum -----------------------------------------------------
        let tpb = threads_per_bucket(gpu_threads, slice_buckets);
        let sum_stats =
            bucket_sum_stats(expected_inserts, slice_buckets, tpb, &model, config.block_size);
        sum_per_gpu[slice.gpu] += estimate_kernel_time(dev, &sum_stats, &cost_cfg).total();

        // --- bucket-reduce --------------------------------------------------
        if config.bucket_reduce_on_cpu {
            cpu_padds += 2 * slice_buckets + 1;
        } else {
            let stats = bucket_reduce_gpu_stats(
                slice_buckets,
                s,
                gpu_threads,
                &model,
                curve.a_is_zero,
                config.block_size,
            );
            gpu_reduce_per_gpu[slice.gpu] +=
                estimate_kernel_time(dev, &stats, &cost_cfg).total();
        }
    }

    let point_bytes = 4.0 * curve.limbs32 as f64 * 4.0;
    // identical schedules to the engine's gather/collective (see
    // `crate::comm`): the transfer term stays in lockstep by construction
    let comm = if config.bucket_reduce_on_cpu {
        crate::comm::bucket_gather_schedule(&slices, point_bytes, system)
    } else {
        crate::comm::window_partial_plan(config.collective, n_windows, point_bytes, system)
    };
    let transfer_s = comm.total_s;
    let comm_host_s =
        cpu_seconds_for_padds(comm.host_reduce_ops, &model, system.cpu.int_ops_per_sec);
    let cpu_reduce_s = cpu_seconds_for_padds(cpu_padds, &model, system.cpu.int_ops_per_sec);
    let wr_ops = u64::from(curve.scalar_bits) + u64::from(n_windows);
    let window_reduce_s = cpu_seconds_for_padds(wr_ops, &model, system.cpu.int_ops_per_sec);

    let per_gpu: Vec<f64> = (0..n_gpus)
        .map(|g| scatter_per_gpu[g] + sum_per_gpu[g] + gpu_reduce_per_gpu[g])
        .collect();
    let gpu_makespan = per_gpu.iter().copied().fold(0.0, f64::max);
    let bucket_reduce_s = if config.bucket_reduce_on_cpu {
        cpu_reduce_s
    } else {
        gpu_reduce_per_gpu.iter().copied().fold(0.0, f64::max) + comm_host_s
    };
    let total_s = if !feasible {
        f64::INFINITY
    } else if config.bucket_reduce_on_cpu && config.pipelined {
        let tail = cpu_reduce_s / f64::from(n_windows.max(1));
        gpu_makespan.max(cpu_reduce_s) + transfer_s + tail + window_reduce_s
    } else {
        gpu_makespan + transfer_s + bucket_reduce_s + window_reduce_s
    };

    MsmEstimate {
        window_size: s,
        n_windows,
        phases: PhaseBreakdown {
            scatter_s: scatter_per_gpu.iter().copied().fold(0.0, f64::max),
            bucket_sum_s: sum_per_gpu.iter().copied().fold(0.0, f64::max),
            bucket_reduce_s,
            window_reduce_s,
            transfer_s,
        },
        total_s,
        feasible,
    }
}

/// Estimates the N-dim-split single-GPU-design baseline at scale `n`.
pub fn estimate_best_gpu(
    n: u64,
    curve: &CurveDesc,
    system: &MultiGpuSystem,
    kernel_opts: distmsm_kernel::PaddOptimizations,
) -> MsmEstimate {
    let g = system.n_gpus() as u64;
    let single = MultiGpuSystem {
        devices: vec![system.devices[0].clone()],
        cpu: system.cpu.clone(),
        interconnect_gbps: system.interconnect_gbps,
        peer_gbps: system.peer_gbps,
        // one GPU sees no inter-GPU fabric; the flat host pipe suffices
        topology: None,
    };
    // Baselines tune their window size empirically for their own design
    // (large windows, naive scatter, on-GPU reduce), so pick the s that
    // minimises their own estimate.
    let base_config = |s: u32| DistMsmConfig {
        window_size: Some(s),
        scatter: Some(ScatterKind::Naive),
        kernel_opts,
        bucket_reduce_on_cpu: false,
        pipelined: false,
        packed_coefficients: false, // baselines stream raw scalars
        ..DistMsmConfig::default()
    };
    (10..=22u32)
        .map(|s| estimate_distmsm((n / g).max(1), curve, &single, &base_config(s)))
        .min_by(|a, b| a.total_s.total_cmp(&b.total_s))
        // infallible: the literal range 10..=22 is non-empty
        .expect("non-empty window range")
}

/// The best named baseline ("BG") time at scale `n`, with the winning
/// implementation's name and Table 2 id.
pub fn estimate_best_baseline(
    n: u64,
    curve: &CurveDesc,
    system: &MultiGpuSystem,
) -> (f64, &'static str, u8) {
    let generic = estimate_best_gpu(n, curve, system, crate::baseline::tuned_baseline_kernel());
    best_named_time(curve.name, generic.total_s, system.n_gpus())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_scales_with_n() {
        let sys = MultiGpuSystem::dgx_a100(8);
        let cfg = DistMsmConfig::default();
        let small = estimate_distmsm(1 << 20, &CurveDesc::BN254, &sys, &cfg);
        let large = estimate_distmsm(1 << 24, &CurveDesc::BN254, &sys, &cfg);
        assert!(large.total_s > 4.0 * small.total_s, "{} vs {}", large.total_s, small.total_s);
    }

    #[test]
    fn estimate_scales_with_gpus() {
        let cfg = DistMsmConfig::default();
        let one = estimate_distmsm(1 << 26, &CurveDesc::BN254, &MultiGpuSystem::dgx_a100(1), &cfg);
        let eight =
            estimate_distmsm(1 << 26, &CurveDesc::BN254, &MultiGpuSystem::dgx_a100(8), &cfg);
        let speedup = one.total_s / eight.total_s;
        assert!(speedup > 3.0, "8-GPU speedup only {speedup}");
    }

    #[test]
    fn mnt4753_is_much_slower() {
        let sys = MultiGpuSystem::dgx_a100(8);
        let cfg = DistMsmConfig::default();
        let bn = estimate_distmsm(1 << 24, &CurveDesc::BN254, &sys, &cfg);
        let mnt = estimate_distmsm(1 << 24, &CurveDesc::MNT4753, &sys, &cfg);
        assert!(mnt.total_s > 5.0 * bn.total_s);
    }

    #[test]
    fn infeasible_when_hierarchical_forced_large() {
        let sys = MultiGpuSystem::dgx_a100(1);
        let cfg = DistMsmConfig {
            window_size: Some(16),
            scatter: Some(ScatterKind::Hierarchical),
            ..DistMsmConfig::default()
        };
        let e = estimate_distmsm(1 << 22, &CurveDesc::BN254, &sys, &cfg);
        assert!(!e.feasible);
        assert!(e.total_s.is_infinite());
    }

    #[test]
    fn signed_digits_help_at_scale() {
        // halved buckets cut the CPU reduce; the extra window costs ~4%
        let sys = MultiGpuSystem::dgx_a100(16);
        let base = estimate_distmsm(1 << 26, &CurveDesc::BN254, &sys, &DistMsmConfig::default());
        let signed_cfg = DistMsmConfig {
            signed_digits: true,
            ..DistMsmConfig::default()
        };
        let signed = estimate_distmsm(1 << 26, &CurveDesc::BN254, &sys, &signed_cfg);
        let ratio = signed.total_s / base.total_s;
        assert!((0.7..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn distmsm_beats_baseline_at_scale() {
        let sys = MultiGpuSystem::dgx_a100(16);
        let d = estimate_distmsm(1 << 26, &CurveDesc::BLS12_381, &sys, &DistMsmConfig::default());
        let (bg, _, _) = estimate_best_baseline(1 << 26, &CurveDesc::BLS12_381, &sys);
        assert!(d.total_s < bg, "DistMSM {} vs BG {bg}", d.total_s);
    }
}
