//! Topology-routed communication costing shared by [`crate::engine`]
//! and [`crate::analytic`].
//!
//! Both the functional engine and the paper-scale analytic model derive
//! their transfer terms from the *same* deterministic schedules built
//! here, so the `analytic_matches_functional` validation holds by
//! construction: the engine executes the collective over real points,
//! the analytic model plans the identical flows over unit data, and
//! both read `CommSchedule::total_s`.

use crate::plan::Slice;
use distmsm_comms::{
    gather_to_host, plan_collective, CollectiveStrategy, CommConfig, CommSchedule,
};
use distmsm_gpu_sim::MultiGpuSystem;

/// Bytes of bucket partial sums each GPU must ship to the host before a
/// CPU-side bucket-reduce: every slice contributes its bucket count.
pub fn per_gpu_bucket_bytes(slices: &[Slice], n_gpus: usize, point_bytes: f64) -> Vec<f64> {
    let mut per = vec![0.0; n_gpus];
    for sl in slices {
        per[sl.gpu] += f64::from(sl.len()) * point_bytes;
    }
    per
}

/// Plans the device→host gather of bucket partials (CPU bucket-reduce
/// path), routed through the system's fabric.
pub fn bucket_gather_schedule(
    slices: &[Slice],
    point_bytes: f64,
    system: &MultiGpuSystem,
) -> CommSchedule {
    let per = per_gpu_bucket_bytes(slices, system.n_gpus(), point_bytes);
    gather_to_host(&per, &system.fabric(), &CommConfig::default())
}

/// Plans the inter-GPU reduction of per-GPU window partials (GPU
/// bucket-reduce path) under `strategy`, routed through the system's
/// fabric. The engine's [`distmsm_comms::run_collective`] over real EC
/// points emits the identical flows and cost.
pub fn window_partial_plan(
    strategy: CollectiveStrategy,
    n_windows: u32,
    point_bytes: f64,
    system: &MultiGpuSystem,
) -> CommSchedule {
    plan_collective(
        strategy,
        system.n_gpus(),
        n_windows as usize,
        point_bytes,
        &system.fabric(),
        &CommConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_slices;

    #[test]
    fn bucket_bytes_cover_every_slice() {
        let slices = plan_slices(16, 1 << 10, 8);
        let per = per_gpu_bucket_bytes(&slices, 8, 128.0);
        let total: f64 = per.iter().sum();
        assert!((total - 16.0 * 1024.0 * 128.0).abs() < 1e-6);
        assert!(per.iter().all(|&b| b > 0.0));
    }

    #[test]
    fn flat_bucket_gather_reduces_to_legacy_formula_when_even() {
        // Evenly divisible plan: the flat gather must equal
        // total_bytes / interconnect exactly.
        let sys = MultiGpuSystem::flat_pool(4);
        let slices = plan_slices(16, 1 << 8, 4);
        let sched = bucket_gather_schedule(&slices, 128.0, &sys);
        let legacy = sys.transfer_time(16.0 * 256.0 * 128.0);
        assert!((sched.total_s - legacy).abs() < 1e-12 * legacy);
    }

    #[test]
    fn window_plan_scales_with_gpus_and_point_size() {
        let strat = CollectiveStrategy::HostGather;
        let t = |gpus: usize, pb: f64| {
            window_partial_plan(strat, 16, pb, &MultiGpuSystem::dgx_a100(gpus)).total_s
        };
        assert!(t(2, 128.0) > t(1, 128.0));
        assert!(t(8, 128.0) > t(4, 128.0));
        assert!(t(4, 384.0) > t(4, 128.0));
    }
}
