//! Pipelined execution of MSM batches (§3.2.3).
//!
//! "Proof generation involves several MSM calculations and other GPU
//! tasks, which means that bucket-reduce can be efficiently pipelined."
//! This module makes that claim executable: a batch of MSMs flows through
//! a two-stage pipeline — GPUs (scatter + bucket-sum) and CPU
//! (bucket-reduce + window-reduce) — so the CPU stage of proof `i`
//! overlaps the GPU stage of proof `i+1`.

use crate::engine::{DistMsm, DistMsmConfig, MsmError};
use distmsm_ec::{Curve, MsmInstance, XyzzPoint};
use distmsm_gpu_sim::MultiGpuSystem;

/// Result of a pipelined batch.
#[derive(Clone, Debug)]
pub struct PipelineReport<C: Curve> {
    /// Per-MSM results (bit-exact).
    pub results: Vec<XyzzPoint<C>>,
    /// Per-MSM `(gpu stage, cpu stage)` seconds.
    pub stages: Vec<(f64, f64)>,
    /// Makespan with the two-stage pipeline.
    pub pipelined_s: f64,
    /// Makespan if every MSM ran to completion before the next started.
    pub serial_s: f64,
    /// Total fabric time across the batch: every per-MSM gather or
    /// collective, routed through the system's interconnect topology by
    /// the engine. Rides the GPU stage of the flow-shop.
    pub comm_s: f64,
    /// Total recovery overhead across the batch (zero without a fault
    /// plan): backoff, recompute, self-check and checkpoint seconds as
    /// reported per MSM by the supervisor. Already contained in the
    /// stage times — surfaced so batch callers can see what faults cost.
    pub recovery_s: f64,
    /// MSMs in the batch whose supervisor observed at least one fault.
    pub faulted_msms: u32,
}

impl<C: Curve> PipelineReport<C> {
    /// Time saved by pipelining, as a fraction of the serial makespan.
    pub fn saving(&self) -> f64 {
        1.0 - self.pipelined_s / self.serial_s
    }
}

/// Executes a batch of MSM instances through the two-stage pipeline.
///
/// # Errors
///
/// Propagates the first MSM failure.
pub fn execute_batch<C: Curve>(
    system: &MultiGpuSystem,
    config: &DistMsmConfig,
    batch: &[MsmInstance<C>],
) -> Result<PipelineReport<C>, MsmError> {
    // stage times come from unpipelined per-MSM reports so the pipeline
    // model composes them itself
    let engine = DistMsm::with_config(
        system.clone(),
        DistMsmConfig {
            pipelined: false,
            ..config.clone()
        },
    );
    let mut results = Vec::with_capacity(batch.len());
    let mut stages = Vec::with_capacity(batch.len());
    let mut comm_s = 0.0;
    let mut recovery_s = 0.0;
    let mut faulted_msms = 0u32;
    for inst in batch {
        let rep = engine.execute(inst)?;
        let cpu = rep.phases.bucket_reduce_s + rep.phases.window_reduce_s;
        // recovery overhead is inside total_s and rides the GPU stage:
        // re-planned slices recompute on GPUs before the reduce can close
        let gpu = rep.total_s - cpu;
        comm_s += rep.phases.transfer_s;
        if let Some(rec) = &rep.recovery {
            recovery_s += rec.recovery_s();
            faulted_msms += u32::from(!rec.faults.is_empty());
        }
        results.push(rep.result);
        stages.push((gpu, cpu));
    }

    // classic two-stage flow-shop makespan
    let mut gpu_done = 0.0f64;
    let mut cpu_done = 0.0f64;
    for &(gpu, cpu) in &stages {
        gpu_done += gpu;
        cpu_done = gpu_done.max(cpu_done) + cpu;
    }
    let serial_s: f64 = stages.iter().map(|&(g, c)| g + c).sum();

    Ok(PipelineReport {
        results,
        stages,
        pipelined_s: cpu_done,
        serial_s,
        comm_s,
        recovery_s,
        faulted_msms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ec::curves::Bn254G1;
    use rand::{rngs::StdRng, SeedableRng};

    fn batch(n: usize, count: usize, seed: u64) -> Vec<MsmInstance<Bn254G1>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| MsmInstance::<Bn254G1>::random(n, &mut rng))
            .collect()
    }

    #[test]
    fn pipeline_results_are_correct() {
        let b = batch(96, 3, 950);
        let rep = execute_batch(
            &MultiGpuSystem::dgx_a100(4),
            &DistMsmConfig::default(),
            &b,
        )
        .unwrap();
        for (inst, got) in b.iter().zip(&rep.results) {
            assert_eq!(*got, inst.reference_result());
        }
    }

    #[test]
    fn pipelining_never_slower_and_overlaps() {
        let b = batch(128, 4, 951);
        let rep = execute_batch(
            &MultiGpuSystem::dgx_a100(8),
            &DistMsmConfig {
                window_size: Some(9),
                ..DistMsmConfig::default()
            },
            &b,
        )
        .unwrap();
        assert!(rep.pipelined_s <= rep.serial_s + 1e-12);
        // with >1 MSM and nonzero CPU stages there must be real overlap
        assert!(rep.saving() > 0.0, "saving {}", rep.saving());
    }

    #[test]
    fn batch_comm_rides_the_topology() {
        // The pod topology makes the batch's fabric time strictly larger
        // than the flat-pool lie at the same GPU count.
        let b = batch(96, 2, 953);
        let cfg = DistMsmConfig {
            window_size: Some(8),
            ..DistMsmConfig::default()
        };
        let pod = execute_batch(&MultiGpuSystem::dgx_a100(16), &cfg, &b).unwrap();
        let flat = execute_batch(&MultiGpuSystem::flat_pool(16), &cfg, &b).unwrap();
        assert!(pod.comm_s > 0.0);
        assert!(flat.comm_s > 0.0);
        assert!(pod.comm_s > flat.comm_s, "pod {} vs flat {}", pod.comm_s, flat.comm_s);
    }

    #[test]
    fn faulted_batch_stays_exact_and_surfaces_recovery() {
        let b = batch(96, 3, 954);
        let clean_cfg = DistMsmConfig {
            window_size: Some(8),
            ..DistMsmConfig::default()
        };
        let faulted_cfg = DistMsmConfig {
            fault_plan: distmsm_gpu_sim::FaultPlan::fail_stop(2, 0),
            ..clean_cfg.clone()
        };
        let sys = MultiGpuSystem::dgx_a100(4);
        let clean = execute_batch(&sys, &clean_cfg, &b).unwrap();
        let rep = execute_batch(&sys, &faulted_cfg, &b).unwrap();
        for (inst, got) in b.iter().zip(&rep.results) {
            assert_eq!(*got, inst.reference_result());
        }
        assert_eq!(clean.recovery_s, 0.0);
        assert_eq!(clean.faulted_msms, 0);
        assert_eq!(rep.faulted_msms, 3, "every MSM sees the fail-stop");
        assert!(rep.recovery_s > 0.0);
        assert!(rep.pipelined_s > clean.pipelined_s, "recovery is not free");
        assert!(rep.pipelined_s <= rep.serial_s + 1e-12);
    }

    #[test]
    fn single_msm_gains_nothing() {
        let b = batch(64, 1, 952);
        let rep = execute_batch(
            &MultiGpuSystem::dgx_a100(2),
            &DistMsmConfig::default(),
            &b,
        )
        .unwrap();
        assert!((rep.pipelined_s - rep.serial_s).abs() < 1e-15);
    }
}
