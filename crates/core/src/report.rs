//! The unified report surface: every timing artefact the workspace
//! produces — an engine [`MsmReport`], a supervisor [`RecoveryReport`],
//! a comms [`CommSchedule`] — answers the same three questions (what is
//! it, how long did it take, where did the time go) through one trait,
//! so bench tables, JSON dumps and the telemetry sum-consistency rule
//! consume any of them without per-type adapters.

use crate::engine::MsmReport;
use crate::supervisor::RecoveryReport;
use distmsm_comms::CommSchedule;
use distmsm_ec::Curve;

/// One named phase of a report's time breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Phase name. Engine reports use the telemetry category vocabulary
    /// (`"scatter"`, `"bucket-sum"`, `"bucket-reduce"`,
    /// `"window-reduce"`, `"transfer"`, `"recovery"`) so live-span
    /// aggregations compare key-for-key.
    pub name: String,
    /// Simulated seconds attributed to the phase.
    pub seconds: f64,
}

impl Phase {
    fn new(name: &str, seconds: f64) -> Self {
        Self {
            name: name.to_string(),
            seconds,
        }
    }
}

/// Common surface over the workspace's timing reports.
pub trait Report {
    /// Stable report-kind tag (`"msm"`, `"recovery"`, `"comm-schedule"`).
    fn kind(&self) -> &'static str;

    /// Total simulated seconds the report covers.
    fn total_s(&self) -> f64;

    /// Named time breakdown. Phases need not sum to [`Report::total_s`]
    /// (device phases overlap; pipelined phases hide behind each other) —
    /// the composition rule belongs to each report's producer.
    fn phase_breakdown(&self) -> Vec<Phase>;

    /// The report as a small JSON object
    /// (`{"kind", "total_s", "phases": [{"name", "seconds"}]}`).
    fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phase_breakdown()
            .iter()
            .map(|p| {
                format!(
                    "{{\"name\":{},\"seconds\":{}}}",
                    json_str(&p.name),
                    json_num(p.seconds)
                )
            })
            .collect();
        format!(
            "{{\"kind\":{},\"total_s\":{},\"phases\":[{}]}}",
            json_str(self.kind()),
            json_num(self.total_s()),
            phases.join(",")
        )
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an f64 with a JSON-safe fallback for non-finite values.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

impl<C: Curve> Report for MsmReport<C> {
    fn kind(&self) -> &'static str {
        "msm"
    }

    fn total_s(&self) -> f64 {
        self.total_s
    }

    fn phase_breakdown(&self) -> Vec<Phase> {
        let mut phases = vec![
            Phase::new("scatter", self.phases.scatter_s),
            Phase::new("bucket-sum", self.phases.bucket_sum_s),
            Phase::new("bucket-reduce", self.phases.bucket_reduce_s),
            Phase::new("window-reduce", self.phases.window_reduce_s),
            Phase::new("transfer", self.phases.transfer_s),
        ];
        if let Some(rec) = &self.recovery {
            phases.push(Phase::new("recovery", rec.recovery_s()));
        }
        phases
    }
}

impl Report for RecoveryReport {
    fn kind(&self) -> &'static str {
        "recovery"
    }

    fn total_s(&self) -> f64 {
        self.recovery_s()
    }

    fn phase_breakdown(&self) -> Vec<Phase> {
        vec![
            Phase::new("backoff", self.backoff_s),
            Phase::new("recompute", self.recompute_s),
            Phase::new("self-check", self.self_check_s),
            Phase::new("checkpoint", self.checkpoint_s),
        ]
    }
}

impl Report for CommSchedule {
    fn kind(&self) -> &'static str {
        "comm-schedule"
    }

    fn total_s(&self) -> f64 {
        self.total_s
    }

    fn phase_breakdown(&self) -> Vec<Phase> {
        self.step_s
            .iter()
            .enumerate()
            .map(|(i, &s)| Phase::new(&format!("step{i}"), s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DistMsm;
    use distmsm_ec::curves::Bn254G1;
    use distmsm_ec::MsmInstance;
    use distmsm_gpu_sim::MultiGpuSystem;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn msm_report_phases_use_telemetry_vocabulary() {
        let mut rng = StdRng::seed_from_u64(11);
        let inst = MsmInstance::<Bn254G1>::random(64, &mut rng);
        let rep = DistMsm::new(MultiGpuSystem::dgx_a100(2))
            .execute(&inst)
            .expect("runs");
        let names: Vec<String> = rep.phase_breakdown().iter().map(|p| p.name.clone()).collect();
        assert_eq!(
            names,
            ["scatter", "bucket-sum", "bucket-reduce", "window-reduce", "transfer"]
        );
        assert_eq!(Report::total_s(&rep), rep.total_s);
        assert_eq!(rep.kind(), "msm");
    }

    #[test]
    fn recovery_report_totals_its_phases() {
        let mut rec = RecoveryReport::default();
        rec.backoff_s = 1.0;
        rec.recompute_s = 2.0;
        rec.self_check_s = 0.25;
        rec.checkpoint_s = 0.5;
        let sum: f64 = rec.phase_breakdown().iter().map(|p| p.seconds).sum();
        assert_eq!(sum, Report::total_s(&rec));
        assert_eq!(rec.kind(), "recovery");
    }

    #[test]
    fn comm_schedule_phases_are_steps() {
        let mut sched = CommSchedule::new("host-gather", 2, 2, 8.0);
        sched.steps.push(distmsm_comms::CommStep {
            flows: vec![distmsm_comms::Flow {
                src: distmsm_comms::Endpoint::Rank(0),
                dst: distmsm_comms::Endpoint::Host,
                lo: 0,
                hi: 1,
                bytes: 1e6,
                reduced: true,
            }],
        });
        sched.finalize(
            &distmsm_comms::Fabric::Flat {
                host_gbps: 64.0,
                peer_gbps: 600.0,
            },
            &distmsm_comms::CommConfig::default(),
        );
        let phases = sched.phase_breakdown();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "step0");
        let sum: f64 = phases.iter().map(|p| p.seconds).sum();
        assert!((sum - sched.total_s).abs() < 1e-18);
    }

    #[test]
    fn to_json_is_valid_and_carries_phases() {
        let mut rec = RecoveryReport::default();
        rec.recompute_s = 2.5;
        let json = rec.to_json();
        assert!(json.contains("\"kind\":\"recovery\""), "{json}");
        assert!(json.contains("\"name\":\"recompute\""), "{json}");
        assert!(json.contains("2.5"), "{json}");
        // balanced braces as a cheap well-formedness check
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count()
        );
    }
}
