//! Work assignment of windows and bucket ranges to GPUs.
//!
//! DistMSM's flexible distribution (§3.2.2): the `N_win × 2^s` buckets of
//! all windows form one flat range that is sliced evenly across GPUs —
//! whole windows when counts divide, fractional windows otherwise (the
//! paper's example: three GPUs on two windows → two GPUs take ⅔ of a
//! window each, the third handles the remaining ⅓ of both).

/// One GPU's responsibility: a bucket range of one window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slice {
    /// GPU index.
    pub gpu: usize,
    /// Window index.
    pub window: u32,
    /// First bucket (inclusive). Bucket 0 is never stored (zero
    /// coefficient contributes nothing), but ranges are expressed over
    /// the full `0..2^s` space for simplicity.
    pub bucket_lo: u32,
    /// One past the last bucket.
    pub bucket_hi: u32,
}

impl Slice {
    /// Buckets in the slice.
    pub fn len(&self) -> u32 {
        self.bucket_hi - self.bucket_lo
    }

    /// True when the slice covers no buckets.
    pub fn is_empty(&self) -> bool {
        self.bucket_lo >= self.bucket_hi
    }
}

/// Splits `n_windows × n_buckets` buckets evenly over `n_gpus` GPUs,
/// producing per-GPU window slices.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn plan_slices(n_windows: u32, n_buckets: u32, n_gpus: usize) -> Vec<Slice> {
    assert!(n_windows > 0 && n_buckets > 0 && n_gpus > 0);
    let total = u64::from(n_windows) * u64::from(n_buckets);
    let mut out = Vec::new();
    for gpu in 0..n_gpus {
        let lo = total * gpu as u64 / n_gpus as u64;
        let hi = total * (gpu as u64 + 1) / n_gpus as u64;
        let mut cur = lo;
        while cur < hi {
            let window = (cur / u64::from(n_buckets)) as u32;
            let in_window = (cur % u64::from(n_buckets)) as u32;
            let end = ((window as u64 + 1) * u64::from(n_buckets)).min(hi);
            out.push(Slice {
                gpu,
                window,
                bucket_lo: in_window,
                bucket_hi: in_window + (end - cur) as u32,
            });
            cur = end;
        }
    }
    out
}

/// Number of GPUs cooperating on each window under a plan.
pub fn gpus_per_window(slices: &[Slice], n_windows: u32) -> Vec<usize> {
    let mut counts = vec![0usize; n_windows as usize];
    for s in slices {
        counts[s.window as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coverage_ok(slices: &[Slice], n_windows: u32, n_buckets: u32) {
        // every (window, bucket) covered exactly once
        let mut seen = vec![0u32; (n_windows * n_buckets) as usize];
        for s in slices {
            for b in s.bucket_lo..s.bucket_hi {
                seen[(s.window * n_buckets + b) as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage must be exact");
    }

    #[test]
    fn whole_windows_when_divisible() {
        let slices = plan_slices(8, 1 << 10, 8);
        coverage_ok(&slices, 8, 1 << 10);
        assert_eq!(slices.len(), 8);
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(s.gpu, i);
            assert_eq!(s.window, i as u32);
            assert_eq!(s.len(), 1 << 10);
        }
    }

    #[test]
    fn paper_example_three_gpus_two_windows() {
        // §3.2.2: two GPUs handle ⅔ of each window, the third the
        // remaining ⅓ from both.
        let nb = 999; // divisible by 3 for exactness
        let slices = plan_slices(2, nb, 3);
        coverage_ok(&slices, 2, nb);
        // GPU 0: ⅔ of window 0; GPU 1: ⅓ of window 0 + ⅓ of window 1;
        // GPU 2: ⅔ of window 1 (an equivalent rotation of the example)
        let per_gpu: Vec<u32> = (0..3)
            .map(|g| slices.iter().filter(|s| s.gpu == g).map(Slice::len).sum())
            .collect();
        assert_eq!(per_gpu, vec![666, 666, 666]);
        let gpw = gpus_per_window(&slices, 2);
        assert_eq!(gpw, vec![2, 2]);
    }

    #[test]
    fn more_gpus_than_windows_splits_buckets() {
        let slices = plan_slices(4, 1 << 8, 16);
        coverage_ok(&slices, 4, 1 << 8);
        let gpw = gpus_per_window(&slices, 4);
        assert!(gpw.iter().all(|&g| g == 4));
        // each GPU gets a quarter window
        assert!(slices.iter().all(|s| s.len() == 64));
    }

    #[test]
    fn fewer_gpus_than_windows() {
        let slices = plan_slices(23, 1 << 11, 16);
        coverage_ok(&slices, 23, 1 << 11);
        // balanced to within one bucket
        let loads: Vec<u64> = (0..16)
            .map(|g| {
                slices
                    .iter()
                    .filter(|s| s.gpu == g)
                    .map(|s| u64::from(s.len()))
                    .sum()
            })
            .collect();
        let min = *loads.iter().min().unwrap();
        let max = *loads.iter().max().unwrap();
        assert!(max - min <= 1, "loads {loads:?}");
    }

    #[test]
    fn single_gpu_owns_everything() {
        let slices = plan_slices(13, 64, 1);
        coverage_ok(&slices, 13, 64);
        assert!(slices.iter().all(|s| s.gpu == 0));
        assert_eq!(slices.len(), 13);
    }
}
