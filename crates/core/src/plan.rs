//! Work assignment of windows and bucket ranges to GPUs.
//!
//! DistMSM's flexible distribution (§3.2.2): the `N_win × 2^s` buckets of
//! all windows form one flat range that is sliced evenly across GPUs —
//! whole windows when counts divide, fractional windows otherwise (the
//! paper's example: three GPUs on two windows → two GPUs take ⅔ of a
//! window each, the third handles the remaining ⅓ of both).

use distmsm_kernel::ir::{self, IndexExpr, PlanIr, Poly, Region, RegionFamily, Sym, SymBound};
use std::collections::BTreeMap;

/// One GPU's responsibility: a bucket range of one window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slice {
    /// GPU index.
    pub gpu: usize,
    /// Window index.
    pub window: u32,
    /// First bucket (inclusive). Bucket 0 is never stored (zero
    /// coefficient contributes nothing), but ranges are expressed over
    /// the full `0..2^s` space for simplicity.
    pub bucket_lo: u32,
    /// One past the last bucket.
    pub bucket_hi: u32,
}

impl Slice {
    /// Buckets in the slice.
    pub fn len(&self) -> u32 {
        self.bucket_hi - self.bucket_lo
    }

    /// True when the slice covers no buckets.
    pub fn is_empty(&self) -> bool {
        self.bucket_lo >= self.bucket_hi
    }
}

/// Splits `n_windows × n_buckets` buckets evenly over `n_gpus` GPUs,
/// producing per-GPU window slices.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn plan_slices(n_windows: u32, n_buckets: u32, n_gpus: usize) -> Vec<Slice> {
    assert!(n_windows > 0 && n_buckets > 0 && n_gpus > 0);
    let total = u64::from(n_windows) * u64::from(n_buckets);
    let mut out = Vec::new();
    for gpu in 0..n_gpus {
        let lo = total * gpu as u64 / n_gpus as u64;
        let hi = total * (gpu as u64 + 1) / n_gpus as u64;
        let mut cur = lo;
        while cur < hi {
            let window = (cur / u64::from(n_buckets)) as u32;
            let in_window = (cur % u64::from(n_buckets)) as u32;
            let end = ((window as u64 + 1) * u64::from(n_buckets)).min(hi);
            out.push(Slice {
                gpu,
                window,
                bucket_lo: in_window,
                bucket_hi: in_window + (end - cur) as u32,
            });
            cur = end;
        }
    }
    out
}

/// Re-partitions slices lost with failed GPUs across the survivors.
/// The concatenated lost bucket ranges are cut into `survivors.len()`
/// near-equal contiguous shares (balanced to within one bucket), one
/// per survivor — *not* one split per lost slice, because every
/// recovery scatter re-scans all scalars and per-launch costs would
/// multiply with the fan-out. Coverage is exact — the union of the
/// returned slices tiles the union of `lost` — and every returned
/// slice is non-empty and owned by a survivor.
///
/// # Panics
///
/// Panics when `survivors` is empty (total system loss is the caller's
/// error to report).
pub fn replan_slices(lost: &[Slice], survivors: &[usize]) -> Vec<Slice> {
    assert!(!survivors.is_empty(), "re-planning needs at least one survivor");
    let total: u64 = lost.iter().map(|s| u64::from(s.len())).sum();
    let n = survivors.len() as u64;
    let mut out = Vec::new();
    let mut consumed = 0u64; // buckets handed out so far
    let mut k = 0u64; // survivor currently being filled
    for sl in lost {
        let mut lo = u64::from(sl.bucket_lo);
        let hi = u64::from(sl.bucket_hi);
        while lo < hi {
            // survivor k owns concatenated positions [total·k/n, total·(k+1)/n)
            let quota_end = total * (k + 1) / n;
            let take = (quota_end - consumed).min(hi - lo);
            if take == 0 {
                k += 1;
                continue;
            }
            out.push(Slice {
                gpu: survivors[k as usize],
                window: sl.window,
                bucket_lo: lo as u32,
                bucket_hi: (lo + take) as u32,
            });
            lo += take;
            consumed += take;
            if consumed == quota_end && k + 1 < n {
                k += 1;
            }
        }
    }
    out
}

/// Symbolic IR of the flexible-distribution bucket partition: over the
/// flat space `[0, W·B)`, device `g ∈ 0..G` owns the quota tile
/// `[⌊W·B·g/G⌋, ⌊W·B·(g+1)/G⌋)`. Disjointness and exact coverage of
/// this family — for **all** window counts `W`, bucket counts `B` and
/// GPU counts `G` — is what `distmsm-analyze verify` proves (VRF-001 /
/// VRF-002); [`plan_slices`] is the concrete instantiation the
/// grounding pass cross-checks against.
pub fn partition_ir() -> PlanIr {
    let total = Poly::var("W").mul(&Poly::var("B"));
    PlanIr {
        name: "bucket-partition".into(),
        space: (IndexExpr::con(0), IndexExpr::Poly(total.clone())),
        cover: true,
        families: vec![ir::quota_tile_family("device", "g", &total, &Poly::var("G"))],
        bounds: vec![
            SymBound::at_least("W", 1),
            SymBound::at_least("B", 1),
            SymBound::at_least("G", 1),
        ],
        assumptions: Vec::new(),
    }
}

/// Symbolic IR of the window-merge split: the flat range `[0, W·B)` cut
/// at window boundaries, window `w ∈ 0..W` owning `[w·B, w·B + B)`.
/// This is the second axis [`plan_slices`] splits along — the verifier
/// proves the per-window merge regions tile the bucket space exactly.
pub fn window_merge_ir() -> PlanIr {
    let w = Poly::var("w");
    let b = Poly::var("B");
    PlanIr {
        name: "window-merge".into(),
        space: (
            IndexExpr::con(0),
            IndexExpr::Poly(Poly::var("W").mul(&b)),
        ),
        cover: true,
        families: vec![RegionFamily {
            writer: "window",
            param: "w",
            count: IndexExpr::var("W"),
            region: Region::Interval {
                lo: IndexExpr::Poly(w.mul(&b)),
                hi: IndexExpr::Poly(w.mul(&b).add(&b)),
            },
        }],
        bounds: vec![SymBound::at_least("W", 1), SymBound::at_least("B", 1)],
        assumptions: Vec::new(),
    }
}

/// Symbolic IR of [`replan_slices`]'s survivor quotas: the `T` lost
/// buckets, concatenated, are re-tiled across `K` survivors with the
/// same quota rule as the primary partition.
pub fn replan_ir() -> PlanIr {
    let total = Poly::var("T");
    PlanIr {
        name: "replan-survivor-quota".into(),
        space: (IndexExpr::con(0), IndexExpr::Poly(total.clone())),
        cover: true,
        families: vec![ir::quota_tile_family(
            "survivor",
            "k",
            &total,
            &Poly::var("K"),
        )],
        bounds: vec![SymBound::at_least("T", 1), SymBound::at_least("K", 1)],
        assumptions: Vec::new(),
    }
}

/// [`plan_slices`] plus the symbolic [`PlanIr`] describing it, with the
/// concrete symbol environment for grounding cross-checks.
pub fn plan_slices_with_ir(
    n_windows: u32,
    n_buckets: u32,
    n_gpus: usize,
) -> (Vec<Slice>, PlanIr, BTreeMap<Sym, i128>) {
    let slices = plan_slices(n_windows, n_buckets, n_gpus);
    let mut env = BTreeMap::new();
    env.insert("W", i128::from(n_windows));
    env.insert("B", i128::from(n_buckets));
    env.insert("G", n_gpus as i128);
    (slices, partition_ir(), env)
}

/// Splits the point range `[0, n)` of one giant MSM into `n_pods`
/// balanced quota shards — shard `p` owns `[⌊n·p/P⌋, ⌊n·(p+1)/P⌋)`.
/// Every pod computes the full window-partial vector of its shard; the
/// cross-pod reduce tree sums the vectors element-wise over the NIC
/// tier, so the point space (not the bucket space) is what must tile
/// exactly.
///
/// # Panics
///
/// Panics if `n_pods` is zero.
pub fn shard_points(n: usize, n_pods: usize) -> Vec<(usize, usize)> {
    assert!(n_pods > 0, "sharding needs at least one pod");
    (0..n_pods)
        .map(|p| (n * p / n_pods, n * (p + 1) / n_pods))
        .collect()
}

/// Symbolic IR of the fleet point sharding: the point space `[0, N)`
/// tiled by quota across `P` pods. Registered with the static verifier
/// so the VRF-001/VRF-002 disjointness + coverage proofs extend to the
/// cross-pod shard tiles (rule family `FLT`).
pub fn fleet_shard_ir() -> PlanIr {
    let n = Poly::var("N");
    PlanIr {
        name: "fleet-shard".into(),
        space: (IndexExpr::con(0), IndexExpr::Poly(n.clone())),
        cover: true,
        families: vec![ir::quota_tile_family("pod", "p", &n, &Poly::var("P"))],
        bounds: vec![SymBound::at_least("N", 1), SymBound::at_least("P", 1)],
        assumptions: Vec::new(),
    }
}

/// [`shard_points`] plus its symbolic [`PlanIr`] and the concrete symbol
/// environment for grounding cross-checks.
pub fn shard_points_with_ir(
    n: usize,
    n_pods: usize,
) -> (Vec<(usize, usize)>, PlanIr, BTreeMap<Sym, i128>) {
    let shards = shard_points(n, n_pods);
    let mut env = BTreeMap::new();
    env.insert("N", n as i128);
    env.insert("P", n_pods as i128);
    (shards, fleet_shard_ir(), env)
}

/// Re-placement assignment after a pod quarantine: the `s` stranded
/// jobs of the quarantined pod's queue are re-placed across the `h`
/// surviving pods by the same quota rule — survivor `k` absorbs
/// stranded jobs `[⌊s·k/h⌋, ⌊s·(k+1)/h⌋)`.
///
/// # Panics
///
/// Panics if `n_healthy` is zero (a fleet with no survivors has nowhere
/// to re-place; callers shed instead).
pub fn replace_assignments(n_stranded: usize, n_healthy: usize) -> Vec<(usize, usize)> {
    assert!(n_healthy > 0, "re-placement needs at least one healthy pod");
    shard_points(n_stranded, n_healthy)
}

/// Symbolic IR of the quarantine re-placement: the stranded-job space
/// `[0, S)` tiled by quota across the `H` surviving pods. The same
/// coverage proof that guarantees no point of a giant MSM is lost
/// guarantees no stranded job is orphaned by a quarantine.
pub fn fleet_replace_ir() -> PlanIr {
    let s = Poly::var("S");
    PlanIr {
        name: "fleet-replace".into(),
        space: (IndexExpr::con(0), IndexExpr::Poly(s.clone())),
        cover: true,
        families: vec![ir::quota_tile_family("survivor", "h", &s, &Poly::var("H"))],
        bounds: vec![SymBound::at_least("S", 1), SymBound::at_least("H", 1)],
        assumptions: Vec::new(),
    }
}

/// Number of GPUs cooperating on each window under a plan.
pub fn gpus_per_window(slices: &[Slice], n_windows: u32) -> Vec<usize> {
    let mut counts = vec![0usize; n_windows as usize];
    for s in slices {
        counts[s.window as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coverage_ok(slices: &[Slice], n_windows: u32, n_buckets: u32) {
        // every (window, bucket) covered exactly once
        let mut seen = vec![0u32; (n_windows * n_buckets) as usize];
        for s in slices {
            for b in s.bucket_lo..s.bucket_hi {
                seen[(s.window * n_buckets + b) as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage must be exact");
    }

    #[test]
    fn whole_windows_when_divisible() {
        let slices = plan_slices(8, 1 << 10, 8);
        coverage_ok(&slices, 8, 1 << 10);
        assert_eq!(slices.len(), 8);
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(s.gpu, i);
            assert_eq!(s.window, i as u32);
            assert_eq!(s.len(), 1 << 10);
        }
    }

    #[test]
    fn paper_example_three_gpus_two_windows() {
        // §3.2.2: two GPUs handle ⅔ of each window, the third the
        // remaining ⅓ from both.
        let nb = 999; // divisible by 3 for exactness
        let slices = plan_slices(2, nb, 3);
        coverage_ok(&slices, 2, nb);
        // GPU 0: ⅔ of window 0; GPU 1: ⅓ of window 0 + ⅓ of window 1;
        // GPU 2: ⅔ of window 1 (an equivalent rotation of the example)
        let per_gpu: Vec<u32> = (0..3)
            .map(|g| slices.iter().filter(|s| s.gpu == g).map(Slice::len).sum())
            .collect();
        assert_eq!(per_gpu, vec![666, 666, 666]);
        let gpw = gpus_per_window(&slices, 2);
        assert_eq!(gpw, vec![2, 2]);
    }

    #[test]
    fn more_gpus_than_windows_splits_buckets() {
        let slices = plan_slices(4, 1 << 8, 16);
        coverage_ok(&slices, 4, 1 << 8);
        let gpw = gpus_per_window(&slices, 4);
        assert!(gpw.iter().all(|&g| g == 4));
        // each GPU gets a quarter window
        assert!(slices.iter().all(|s| s.len() == 64));
    }

    #[test]
    fn fewer_gpus_than_windows() {
        let slices = plan_slices(23, 1 << 11, 16);
        coverage_ok(&slices, 23, 1 << 11);
        // balanced to within one bucket
        let loads: Vec<u64> = (0..16)
            .map(|g| {
                slices
                    .iter()
                    .filter(|s| s.gpu == g)
                    .map(|s| u64::from(s.len()))
                    .sum()
            })
            .collect();
        let min = *loads.iter().min().unwrap();
        let max = *loads.iter().max().unwrap();
        assert!(max - min <= 1, "loads {loads:?}");
    }

    #[test]
    fn replan_tiles_lost_work_exactly() {
        // lose GPU 3 of 8, re-plan its slices onto the other seven
        let n_windows = 16;
        let n_buckets = 1u32 << 8;
        let slices = plan_slices(n_windows, n_buckets, 8);
        let (lost, kept): (Vec<Slice>, Vec<Slice>) =
            slices.iter().partition(|s| s.gpu == 3);
        let survivors: Vec<usize> = (0..8).filter(|&g| g != 3).collect();
        let recovered = replan_slices(&lost, &survivors);
        assert!(!recovered.is_empty());
        assert!(recovered.iter().all(|s| s.gpu != 3 && !s.is_empty()));
        // kept ∪ recovered covers every (window, bucket) exactly once
        let mut seen = vec![0u32; (n_windows * n_buckets) as usize];
        for s in kept.iter().chain(&recovered) {
            for b in s.bucket_lo..s.bucket_hi {
                seen[(s.window * n_buckets + b) as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "re-plan must tile exactly");
    }

    #[test]
    fn replan_balances_across_survivors() {
        let slices = plan_slices(8, 1 << 10, 8);
        let lost: Vec<Slice> = slices.iter().filter(|s| s.gpu == 0).copied().collect();
        let survivors: Vec<usize> = (1..8).collect();
        let recovered = replan_slices(&lost, &survivors);
        let loads: Vec<u64> = survivors
            .iter()
            .map(|&g| {
                recovered
                    .iter()
                    .filter(|s| s.gpu == g)
                    .map(|s| u64::from(s.len()))
                    .sum()
            })
            .collect();
        let min = *loads.iter().min().unwrap();
        let max = *loads.iter().max().unwrap();
        assert!(max - min <= 1, "loads {loads:?}");
    }

    #[test]
    fn replan_tiny_slice_onto_many_survivors() {
        // a 2-bucket slice across 7 survivors: only 2 sub-slices emerge
        let lost = [Slice {
            gpu: 0,
            window: 3,
            bucket_lo: 10,
            bucket_hi: 12,
        }];
        let survivors: Vec<usize> = (1..8).collect();
        let recovered = replan_slices(&lost, &survivors);
        assert_eq!(recovered.len(), 2);
        let covered: u32 = recovered.iter().map(Slice::len).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn partition_ir_grounds_against_plan_slices() {
        // the symbolic quota tiles must agree with the concrete planner
        for &(w, b, g) in &[
            (8u32, 1u32 << 10, 8usize),
            (2, 999, 3),
            (23, 1 << 11, 16),
            (13, 64, 1),
            (17, 33, 5),
        ] {
            let (slices, ir, env) = plan_slices_with_ir(w, b, g);
            assert_eq!(ir.member_count(0, &env), g as i128);
            for gpu in 0..g {
                let (lo, hi) = ir.member_interval(0, gpu as i128, &env).unwrap();
                let covered: i128 = slices
                    .iter()
                    .filter(|s| s.gpu == gpu)
                    .map(|s| i128::from(s.len()))
                    .sum();
                assert_eq!(hi - lo, covered, "gpu {gpu} quota width");
                if let Some(first) = slices.iter().find(|s| s.gpu == gpu) {
                    let flat = i128::from(first.window) * i128::from(b)
                        + i128::from(first.bucket_lo);
                    assert_eq!(flat, lo, "gpu {gpu} quota start");
                }
            }
            assert_eq!(ir.space.1.eval(&env), i128::from(w) * i128::from(b));
        }
    }

    #[test]
    fn window_merge_ir_tiles_flat_range() {
        let ir = window_merge_ir();
        let mut env = BTreeMap::new();
        env.insert("W", 7i128);
        env.insert("B", 33i128);
        let mut cursor = 0;
        for w in 0..7 {
            let (lo, hi) = ir.member_interval(0, w, &env).unwrap();
            assert_eq!(lo, cursor);
            assert_eq!(hi - lo, 33);
            cursor = hi;
        }
        assert_eq!(cursor, ir.space.1.eval(&env));
    }

    #[test]
    fn single_gpu_owns_everything() {
        let slices = plan_slices(13, 64, 1);
        coverage_ok(&slices, 13, 64);
        assert!(slices.iter().all(|s| s.gpu == 0));
        assert_eq!(slices.len(), 13);
    }
}
