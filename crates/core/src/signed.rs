//! Signed-digit scalar recoding.
//!
//! One of the techniques the paper adopts from the ZPrize winners (§6:
//! "precomputation, signed digits, pipelining…"). A λ-bit scalar is
//! rewritten as `Σ dⱼ·2^{js}` with digits `dⱼ ∈ [−2^{s−1}, 2^{s−1}]`,
//! which halves the bucket count of every window: a negative digit
//! accumulates the (free) negation of the point into bucket `|dⱼ|`.
//! Fewer buckets mean cheaper bucket-reduce — at the cost of higher
//! atomic contention during scatter, which is exactly the trade the
//! hierarchical scatter of §3.2.1 absorbs.

use distmsm_ec::{Affine, Curve, Scalar, XyzzPoint};

/// Signed-window decomposition of one scalar.
///
/// Returns `⌈λ/s⌉ + 1` digits (the final carry may spill into one extra
/// window). Digits satisfy `|dⱼ| ≤ 2^{s−1}` and `Σ dⱼ·2^{js} = k`.
///
/// # Panics
///
/// Panics unless `1 ≤ s ≤ 31`.
pub fn recode_signed<S: Scalar>(k: &S, s: u32, lambda: u32) -> Vec<i32> {
    assert!((1..=31).contains(&s), "window size must be in 1..=31");
    let n_windows = lambda.div_ceil(s) + 1;
    let half = 1i64 << (s - 1);
    let full = 1i64 << s;
    let mut digits = Vec::with_capacity(n_windows as usize);
    let mut carry = 0i64;
    for j in 0..n_windows {
        let raw = k.window(j * s, s) as i64 + carry;
        if raw > half {
            digits.push((raw - full) as i32);
            carry = 1;
        } else {
            digits.push(raw as i32);
            carry = 0;
        }
    }
    debug_assert_eq!(carry, 0, "λ-bit scalars cannot carry past the extra window");
    digits
}

/// Reference MSM over signed digits: buckets `1..=2^{s−1}` per window,
/// negative digits contribute negated points. Used to validate the
/// recoding end-to-end against plain Pippenger.
pub fn signed_pippenger<C: Curve>(
    points: &[Affine<C>],
    scalars: &[C::Scalar],
    s: u32,
) -> XyzzPoint<C> {
    assert_eq!(points.len(), scalars.len());
    let n_windows = C::SCALAR_BITS.div_ceil(s) + 1;
    let n_buckets = (1usize << (s - 1)) + 1;
    let digits: Vec<Vec<i32>> = scalars
        .iter()
        .map(|k| recode_signed(k, s, C::SCALAR_BITS))
        .collect();

    let mut acc = XyzzPoint::<C>::identity();
    for w in (0..n_windows as usize).rev() {
        for _ in 0..s {
            acc = acc.pdbl();
        }
        let mut buckets = vec![XyzzPoint::<C>::identity(); n_buckets];
        for (p, d) in points.iter().zip(&digits) {
            let digit = d[w];
            match digit.cmp(&0) {
                core::cmp::Ordering::Greater => buckets[digit as usize].pacc(p),
                core::cmp::Ordering::Less => buckets[(-digit) as usize].pacc(&p.neg()),
                core::cmp::Ordering::Equal => {}
            }
        }
        let mut running = XyzzPoint::<C>::identity();
        let mut sum = XyzzPoint::<C>::identity();
        for b in buckets.iter().skip(1).rev() {
            running = running.padd(b);
            sum = sum.padd(&running);
        }
        acc = acc.padd(&sum);
    }
    acc
}

/// Bucket-count comparison: signed windows use `2^{s−1} + 1` buckets per
/// window against `2^s` unsigned — the §3.2 bucket-reduce saving.
pub fn signed_bucket_count(s: u32) -> u64 {
    (1u64 << (s - 1)) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ec::curves::Bn254G1;
    use distmsm_ec::MsmInstance;
    use distmsm_ff::Uint;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn reconstruct(digits: &[i32], s: u32) -> (Uint<8>, Uint<8>) {
        // track positive and negative contributions separately in a wide
        // accumulator: Σ d_j 2^{js} = pos − neg
        let mut pos = Uint::<8>::ZERO;
        let mut neg = Uint::<8>::ZERO;
        for (j, &d) in digits.iter().enumerate() {
            let mut v = Uint::<8>::from_u64(d.unsigned_abs() as u64);
            for _ in 0..(j as u32 * s) {
                let (sh, c) = v.shl1();
                assert!(!c);
                v = sh;
            }
            if d >= 0 {
                let (sum, c) = pos.carrying_add(&v);
                assert!(!c);
                pos = sum;
            } else {
                let (sum, c) = neg.carrying_add(&v);
                assert!(!c);
                neg = sum;
            }
        }
        (pos, neg)
    }

    #[test]
    fn recode_reconstructs_scalar() {
        let mut rng = StdRng::seed_from_u64(500);
        for _ in 0..50 {
            let k = Uint::<4>([rng.random(), rng.random(), rng.random(), rng.random::<u64>() >> 2]);
            for s in [3u32, 8, 11, 16] {
                let digits = recode_signed(&k, s, 254);
                let (pos, neg) = reconstruct(&digits, s);
                // pos - neg == k (widened)
                let mut wide_k = Uint::<8>::ZERO;
                wide_k.0[..4].copy_from_slice(&k.0);
                let (diff, borrow) = pos.borrowing_sub(&neg);
                assert!(!borrow, "negative total");
                assert_eq!(diff, wide_k, "s={s}");
            }
        }
    }

    #[test]
    fn digits_bounded() {
        let mut rng = StdRng::seed_from_u64(501);
        for _ in 0..20 {
            let k = Uint::<4>([rng.random(), rng.random(), rng.random(), rng.random::<u64>() >> 2]);
            for s in [4u32, 9, 13] {
                let half = 1i32 << (s - 1);
                for d in recode_signed(&k, s, 254) {
                    assert!(d.abs() <= half, "digit {d} exceeds ±{half} at s={s}");
                }
            }
        }
    }

    #[test]
    fn signed_pippenger_matches_reference() {
        let mut rng = StdRng::seed_from_u64(502);
        let inst = MsmInstance::<Bn254G1>::random(100, &mut rng);
        let expect = inst.reference_result();
        for s in [4u32, 8, 11] {
            let got = signed_pippenger::<Bn254G1>(&inst.points, &inst.scalars, s);
            assert_eq!(got, expect, "s={s}");
        }
    }

    #[test]
    fn zero_and_small_scalars() {
        let digits = recode_signed(&Uint::<4>::ZERO, 8, 254);
        assert!(digits.iter().all(|&d| d == 0));
        let one = recode_signed(&Uint::<4>::ONE, 8, 254);
        assert_eq!(one[0], 1);
        assert!(one[1..].iter().all(|&d| d == 0));
        // boundary: exactly 2^{s-1} stays positive, 2^{s-1}+1 goes negative
        let k = Uint::<4>::from_u64(128);
        assert_eq!(recode_signed(&k, 8, 254)[0], 128);
        let k = Uint::<4>::from_u64(129);
        let d = recode_signed(&k, 8, 254);
        assert_eq!(d[0], 129 - 256);
        assert_eq!(d[1], 1);
    }

    #[test]
    fn bucket_count_halves() {
        assert_eq!(signed_bucket_count(11), 1025);
        assert!(signed_bucket_count(11) * 2 < (1 << 11) + 3);
    }
}
