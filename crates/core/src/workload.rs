//! The per-thread workload model of §3.1 and the window-size optimiser.
//!
//! The paper's core observation: *execution time is determined by the
//! workload assigned to each thread, not the total workload*. The model
//! below reproduces the formulas of §3.1 and therefore Figure 3 — in
//! particular that the optimal window size `s` shrinks from ~20 on one
//! GPU to ~11 on sixteen GPUs, which is what forces the algorithmic
//! redesign of §3.2.

/// Parameters of one MSM execution on a multi-GPU system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Number of points `N`.
    pub n: u64,
    /// Scalar bit width λ.
    pub lambda: u32,
    /// Number of GPUs.
    pub n_gpus: u32,
    /// Concurrent threads per GPU (`N_T`, ≈2^16 for an A100-class device).
    pub threads_per_gpu: u64,
}

impl WorkloadParams {
    /// The configuration used for Figure 3 (`N = 2^26`, `N_T = 2^16`,
    /// `λ = 253`), parameterised by GPU count.
    pub fn figure3(n_gpus: u32) -> Self {
        Self {
            n: 1 << 26,
            lambda: 253,
            n_gpus,
            threads_per_gpu: 1 << 16,
        }
    }

    /// Number of windows for a window size `s`.
    pub fn n_windows(&self, s: u32) -> u32 {
        self.lambda.div_ceil(s)
    }

    /// Per-thread workload (in EC point operations) for window size `s`,
    /// §3.1's summary formula.
    ///
    /// Two regimes:
    /// * `N_gpu ≤ N_win`: each GPU owns whole windows;
    /// * `N_gpu > N_win`: a window's buckets are distributed over
    ///   `⌊N_gpu / N_win⌋` GPUs.
    pub fn per_thread_cost(&self, s: u32) -> f64 {
        assert!(s >= 1, "window size must be at least 1");
        let n_win = u64::from(self.n_windows(s));
        let n_gpu = u64::from(self.n_gpus);
        let n_t = self.threads_per_gpu as f64;
        let n = self.n as f64;
        let buckets = 2f64.powi(s as i32);
        let log_nt = (self.threads_per_gpu as f64).log2();

        if n_gpu <= n_win {
            // ⌈N_win/N_gpu⌉ × ⌈(N + 2^s)/N_T⌉
            let windows_per_gpu = n_win.div_ceil(n_gpu) as f64;
            let scatter_sum = ((n + buckets) / n_t).ceil();
            // bucket-reduce: ⌈2^s/N_T⌉·2s + min(⌈2^s/N_T⌉ + log2 N_T, s)
            let bpt = (buckets / n_t).ceil();
            let reduce = bpt * 2.0 * f64::from(s) + (bpt + log_nt).min(f64::from(s));
            windows_per_gpu * scatter_sum + reduce
        } else {
            // (N + 2^s·2s) / (⌊N_gpu/N_win⌋ × N_T) + log2(2^s/⌊N_gpu/N_win⌋)
            let gpus_per_window = (n_gpu / n_win) as f64;
            (n + buckets * 2.0 * f64::from(s)) / (gpus_per_window * n_t)
                + (buckets / gpus_per_window).log2().max(0.0)
        }
    }

    /// The window size minimising [`Self::per_thread_cost`] over
    /// `1 ..= max_s`.
    pub fn optimal_window_size(&self, max_s: u32) -> u32 {
        (1..=max_s.max(1))
            .min_by(|&a, &b| self.per_thread_cost(a).total_cmp(&self.per_thread_cost(b)))
            // infallible: the clamped range 1..=max(max_s,1) is never empty
            .expect("non-empty range")
    }

    /// The Figure 3 curve: normalised per-thread cost for each window size.
    pub fn cost_curve(&self, s_range: core::ops::RangeInclusive<u32>) -> Vec<(u32, f64)> {
        let costs: Vec<(u32, f64)> = s_range.map(|s| (s, self.per_thread_cost(s))).collect();
        let min = costs
            .iter()
            .map(|&(_, c)| c)
            .fold(f64::INFINITY, f64::min);
        costs.into_iter().map(|(s, c)| (s, c / min)).collect()
    }
}

/// §3.2.3's CPU-offload criterion: the CPU bucket-reduce keeps up with the
/// GPUs as long as the per-window bucket count stays below
/// `N / (gpus_per_cpu × gpu_cpu_ratio)`.
pub fn cpu_reduce_is_free(n: u64, n_buckets: u64, gpus_per_cpu: u64, gpu_cpu_ratio: u64) -> bool {
    n_buckets < n / (gpus_per_cpu * gpu_cpu_ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_optimal_windows() {
        // §3.1: "For a 16-GPU system, the optimal s is 11, while for a
        // single GPU, s is best set at 20."
        //
        // Reproduction note (also in EXPERIMENTS.md): the literal §3.1
        // formulas reproduce the single-GPU optimum (20) exactly; for 16
        // GPUs they place the minimum at s = 16 — the smallest window for
        // which every GPU owns a whole window — rather than the quoted 11.
        // The qualitative claim driving the paper's design (the optimum
        // shrinks sharply with GPU count, pushing MSM into the regime
        // where scatter atomics dominate) holds either way.
        let single = WorkloadParams::figure3(1).optimal_window_size(24);
        let sixteen = WorkloadParams::figure3(16).optimal_window_size(24);
        let thirty_two = WorkloadParams::figure3(32).optimal_window_size(24);
        assert_eq!(single, 20, "single-GPU optimum should match the paper");
        assert!(
            (9..=16).contains(&sixteen),
            "16-GPU optimum {sixteen} outside the multi-GPU regime"
        );
        assert!(sixteen < single, "optimum must shrink with more GPUs");
        assert!(thirty_two <= sixteen, "and keep shrinking at 32 GPUs");
    }

    #[test]
    fn optimum_monotone_in_gpus() {
        let mut last = u32::MAX;
        for g in [1u32, 4, 16] {
            let s = WorkloadParams::figure3(g).optimal_window_size(24);
            assert!(s <= last, "optimum should not grow with GPUs");
            last = s;
        }
    }

    #[test]
    fn cost_curve_normalised() {
        let c = WorkloadParams::figure3(4).cost_curve(6..=24);
        assert_eq!(c.len(), 19);
        let min = c.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        assert!((min - 1.0).abs() < 1e-12);
        assert!(c.iter().all(|&(_, v)| v >= 1.0));
    }

    #[test]
    fn bucket_split_regime_engages() {
        // 32 GPUs with large s (few windows) → bucket splitting
        let p = WorkloadParams::figure3(32);
        let n_win = p.n_windows(22); // 12 windows < 32 GPUs
        assert!(u64::from(p.n_gpus) > u64::from(n_win));
        let c = p.per_thread_cost(22);
        assert!(c.is_finite() && c > 0.0);
    }

    #[test]
    fn more_gpus_never_increase_per_thread_cost_at_fixed_s() {
        for s in [11u32, 16, 20] {
            let c1 = WorkloadParams::figure3(1).per_thread_cost(s);
            let c16 = WorkloadParams::figure3(16).per_thread_cost(s);
            assert!(c16 <= c1, "s={s}: {c16} > {c1}");
        }
    }

    #[test]
    fn cpu_reduce_criterion_matches_paper_formula() {
        // §3.2.3's stated rule: CPU bucket-reduce is free while
        // N_bucket < N/(8×128). For N = 2^28 the formula's boundary is
        // 2^18 (the prose quotes the stricter 2^15, which additionally
        // absorbs the 2-PADD suffix sum and per-window repetition).
        assert!(cpu_reduce_is_free(1 << 28, (1 << 18) - 1, 8, 128));
        assert!(!cpu_reduce_is_free(1 << 28, 1 << 18, 8, 128));
        // the paper's quoted safe point is, a fortiori, safe
        assert!(cpu_reduce_is_free(1 << 28, 1 << 15, 8, 128));
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_rejected() {
        WorkloadParams::figure3(1).per_thread_cost(0);
    }
}
