//! Field parameters for the four elliptic curves evaluated in the paper
//! (Table 1): BN254, BLS12-377, BLS12-381 and MNT4-753.
//!
//! Each marker type implements [`FpParams`] with just the modulus; every
//! Montgomery constant is derived at compile time. The constants were
//! transcribed from the standard curve specifications and are re-validated
//! by the `primality` and curve-consistency tests (DESIGN.md §7).

use crate::fp::{Fp, FpParams};
use crate::uint::Uint;

/// Declares a zero-sized [`FpParams`] marker plus a field type alias.
macro_rules! field_params {
    ($(#[$doc:meta])* $params:ident, $alias:ident, $n:literal, $name:literal, $modulus:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
        pub struct $params;

        impl FpParams<$n> for $params {
            const MODULUS: Uint<$n> = Uint::from_hex($modulus);
            const NAME: &'static str = $name;
        }

        $(#[$doc])*
        pub type $alias = Fp<$params, $n>;
    };
}

field_params!(
    /// BN254 (alt_bn128) base field: 254-bit `q`.
    Bn254Fq,
    FqBn254,
    4,
    "BN254::Fq",
    "0x30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47"
);

field_params!(
    /// BN254 scalar field: 254-bit `r` with two-adicity 28.
    Bn254Fr,
    FrBn254,
    4,
    "BN254::Fr",
    "0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001"
);

field_params!(
    /// BLS12-377 base field: 377-bit `q`.
    Bls12377Fq,
    FqBls12377,
    6,
    "BLS12-377::Fq",
    "0x1ae3a4617c510eac63b05c06ca1493b1a22d9f300f5138f1ef3622fba094800170b5d44300000008508c00000000001"
);

field_params!(
    /// BLS12-377 scalar field: 253-bit `r` (the λ of Table 1).
    Bls12377Fr,
    FrBls12377,
    4,
    "BLS12-377::Fr",
    "0x12ab655e9a2ca55660b44d1e5c37b00159aa76fed00000010a11800000000001"
);

field_params!(
    /// BLS12-381 base field: 381-bit `q`.
    Bls12381Fq,
    FqBls12381,
    6,
    "BLS12-381::Fq",
    "0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab"
);

field_params!(
    /// BLS12-381 scalar field: 255-bit `r`.
    Bls12381Fr,
    FrBls12381,
    4,
    "BLS12-381::Fr",
    "0x73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001"
);

field_params!(
    /// MNT4-753 base field: 753-bit `q` (the register-pressure stress case —
    /// 24 × 32-bit registers per big integer in the paper's kernel analysis).
    Mnt4753Fq,
    FqMnt4753,
    12,
    "MNT4-753::Fq",
    "0x01c4c62d92c41110229022eee2cdadb7f997505b8fafed5eb7e8f96c97d87307fdb925e8a0ed8d99d124d9a15af79db117e776f218059db80f0da5cb537e38685acce9767254a4638810719ac425f0e39d54522cdd119f5e9063de245e8001"
);

field_params!(
    /// MNT4-753 scalar field: 753-bit `r`.
    Mnt4753Fr,
    FrMnt4753,
    12,
    "MNT4-753::Fr",
    "0x01c4c62d92c41110229022eee2cdadb7f997505b8fafed5eb7e8f96c97d87307fdb925e8a0ed8d99d124d9a15af79db26c5c28c859a99b3eebca9429212636b9dff97634993aa4d6c381bc3f0057974ea099170fa13a4fd90776e240000001"
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::FpParams;
    use crate::primality::is_probable_prime;

    #[test]
    fn table1_bit_widths() {
        // Table 1 of the paper: scalar (k_i) and point (P_i) bit widths.
        assert_eq!(Bn254Fr::MODULUS_BITS, 254);
        assert_eq!(Bn254Fq::MODULUS_BITS, 254);
        assert_eq!(Bls12377Fr::MODULUS_BITS, 253);
        assert_eq!(Bls12377Fq::MODULUS_BITS, 377);
        assert_eq!(Bls12381Fr::MODULUS_BITS, 255);
        assert_eq!(Bls12381Fq::MODULUS_BITS, 381);
        assert_eq!(Mnt4753Fr::MODULUS_BITS, 753);
        assert_eq!(Mnt4753Fq::MODULUS_BITS, 753);
    }

    #[test]
    fn all_moduli_prime() {
        assert!(is_probable_prime(&Bn254Fq::MODULUS));
        assert!(is_probable_prime(&Bn254Fr::MODULUS));
        assert!(is_probable_prime(&Bls12377Fq::MODULUS));
        assert!(is_probable_prime(&Bls12377Fr::MODULUS));
        assert!(is_probable_prime(&Bls12381Fq::MODULUS));
        assert!(is_probable_prime(&Bls12381Fr::MODULUS));
        assert!(is_probable_prime(&Mnt4753Fq::MODULUS));
        assert!(is_probable_prime(&Mnt4753Fr::MODULUS));
    }

    #[test]
    fn derived_constants_consistent() {
        // INV * MODULUS ≡ -1 (mod 2^64) for every field.
        fn check<P: FpParams<N>, const N: usize>() {
            assert_eq!(
                P::MODULUS.0[0].wrapping_mul(P::INV),
                u64::MAX,
                "{} INV inconsistent",
                P::NAME
            );
        }
        check::<Bn254Fq, 4>();
        check::<Bn254Fr, 4>();
        check::<Bls12377Fq, 6>();
        check::<Bls12377Fr, 4>();
        check::<Bls12381Fq, 6>();
        check::<Bls12381Fr, 4>();
        check::<Mnt4753Fq, 12>();
        check::<Mnt4753Fr, 12>();
    }

    #[test]
    fn mnt4753_fr_two_adicity_supports_large_ntt() {
        // The MNT4-753 scalar field was designed for SNARK FFTs.
        let two_adicity = Mnt4753Fr::TWO_ADICITY;
        assert!(two_adicity >= 15, "{two_adicity}");
    }
}
