//! Miller–Rabin probabilistic primality testing over [`Uint`].
//!
//! Used by the parameter-validation tests (DESIGN.md §7): every transcribed
//! field modulus must pass before any experiment trusts it.

use crate::mont::MontCtx;
use crate::uint::Uint;

/// Deterministic witness set sufficient for very high confidence at any
/// size (and proven complete below 3.3 · 10^24).
const WITNESSES: [u64; 13] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];

/// Miller–Rabin primality test with fixed witnesses.
///
/// Returns `false` for 0 and 1. For the 253–753-bit field moduli this is a
/// probabilistic test; 13 rounds push the error probability below `4^-13`
/// per witness-independent composite, ample for parameter validation.
pub fn is_probable_prime<const N: usize>(n: &Uint<N>) -> bool {
    if n.is_zero() || *n == Uint::ONE {
        return false;
    }
    // Small primes / even numbers.
    for w in WITNESSES {
        if *n == Uint::from_u64(w) {
            return true;
        }
    }
    if !n.bit(0) {
        return false;
    }
    if n.num_bits() == 64 * N as u32 {
        // MontCtx requires a spare top bit; all real moduli satisfy this.
        // Fall back to rejecting (callers only validate curve moduli).
        return false;
    }

    // n - 1 = 2^s * d
    let (nm1, _) = n.borrowing_sub(&Uint::ONE);
    let mut s = 0u32;
    let mut d = nm1;
    while !d.bit(0) {
        d = d.shr1();
        s += 1;
    }

    let ctx = MontCtx::new(*n);
    let one = ctx.one();
    let minus_one = ctx.sub(&Uint::ZERO, &one);

    'witness: for w in WITNESSES {
        let a = ctx.to_mont(&Uint::from_u64(w));
        if a.is_zero() {
            continue; // witness divides n only if n == w (handled above)
        }
        let mut x = ctx.pow(&a, &d);
        if x == one || x == minus_one {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = ctx.mul(&x, &x);
            if x == minus_one {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_and_composites() {
        let primes = [2u64, 3, 5, 7, 11, 13, 101, 65537, 4294967311];
        let composites = [0u64, 1, 4, 9, 15, 561, 41041, 825265, 4294967297];
        for p in primes {
            assert!(is_probable_prime(&Uint::<2>::from_u64(p)), "{p}");
        }
        for c in composites {
            assert!(!is_probable_prime(&Uint::<2>::from_u64(c)), "{c}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // strong pseudoprime stress: Carmichael numbers
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 530881, 1024651] {
            assert!(!is_probable_prime(&Uint::<2>::from_u64(c)), "{c}");
        }
    }

    #[test]
    fn mersenne_prime_127() {
        let m127 = Uint::<3>::from_hex("0x7fffffffffffffffffffffffffffffff");
        assert!(is_probable_prime(&m127));
        let (m127m2, _) = m127.borrowing_sub(&Uint::from_u64(2));
        assert!(!is_probable_prime(&m127m2));
    }
}
