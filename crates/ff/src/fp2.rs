//! Quadratic extension field `Fp² = Fp[u]/(u² + 1)`.
//!
//! Needed for BN254 G2 (the second MSM input group of a Groth16 prover).
//! The irreducible polynomial is fixed to `u² + 1`, which is valid whenever
//! `-1` is a quadratic non-residue in `Fp` — true for BN254's base field
//! (`q ≡ 3 mod 4`), the only field this reproduction instantiates it for.

use crate::fp::{Fp, FpParams};
use rand::Rng;

/// An element `c0 + c1·u` of the quadratic extension of `Fp`.
///
/// # Examples
///
/// ```
/// use distmsm_ff::{Fp2, params::Bn254Fq};
///
/// type F2 = Fp2<Bn254Fq, 4>;
/// let u = F2::new(0u64.into(), 1u64.into());
/// assert_eq!(u * u, -F2::ONE); // u² = -1
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fp2<P: FpParams<N>, const N: usize> {
    /// Real part.
    pub c0: Fp<P, N>,
    /// Coefficient of `u`.
    pub c1: Fp<P, N>,
}

impl<P: FpParams<N>, const N: usize> Fp2<P, N> {
    /// The additive identity.
    pub const ZERO: Self = Self {
        c0: Fp::ZERO,
        c1: Fp::ZERO,
    };

    /// The multiplicative identity.
    pub const ONE: Self = Self {
        c0: Fp::ONE,
        c1: Fp::ZERO,
    };

    /// Builds `c0 + c1·u`.
    pub const fn new(c0: Fp<P, N>, c1: Fp<P, N>) -> Self {
        Self { c0, c1 }
    }

    /// Embeds a base-field element.
    pub const fn from_base(c0: Fp<P, N>) -> Self {
        Self { c0, c1: Fp::ZERO }
    }

    /// Returns `true` for zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Doubles the element.
    pub fn double(&self) -> Self {
        Self::new(self.c0.double(), self.c1.double())
    }

    /// Squares the element (`(a+bu)² = a²-b² + 2ab·u`).
    pub fn square(&self) -> Self {
        let a = self.c0;
        let b = self.c1;
        Self::new(a * a - b * b, (a * b).double())
    }

    /// Conjugate `c0 - c1·u`.
    pub fn conjugate(&self) -> Self {
        Self::new(self.c0, -self.c1)
    }

    /// Norm `c0² + c1²` (since u² = -1).
    pub fn norm(&self) -> Fp<P, N> {
        self.c0 * self.c0 + self.c1 * self.c1
    }

    /// Multiplicative inverse, or `None` for zero.
    pub fn inverse(&self) -> Option<Self> {
        let inv_norm = self.norm().inverse()?;
        Some(Self::new(self.c0 * inv_norm, -(self.c1 * inv_norm)))
    }

    /// Uniformly random element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(Fp::random(rng), Fp::random(rng))
    }

    /// Exponentiation by a little-endian limb slice.
    pub fn pow(&self, exp: &[u64]) -> Self {
        let mut acc = Self::ONE;
        let mut bits = 64 * exp.len();
        while bits > 0 && (exp[(bits - 1) / 64] >> ((bits - 1) % 64)) & 1 == 0 {
            bits -= 1;
        }
        for i in (0..bits).rev() {
            acc = acc.square();
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                acc *= *self;
            }
        }
        acc
    }

    /// The Frobenius endomorphism `x ↦ x^p`; for `p ≡ 3 (mod 4)` (true for
    /// BN254) this is conjugation.
    pub fn frobenius(&self) -> Self {
        self.conjugate()
    }

    /// Square root in `Fp²`, or `None` for non-squares.
    ///
    /// Uses the norm trick: for `x = a + bu`, any root `c0 + c1·u`
    /// satisfies `c0² = (a ± √(a² + b²))/2` and `c1 = b/(2c0)`; one of the
    /// two signs yields a base-field square whenever `x` is a square.
    pub fn sqrt(&self) -> Option<Self> {
        if self.c1.is_zero() {
            // a + 0u: either √a, or √(-a)·u (since (cu)² = −c²)
            return match self.c0.sqrt() {
                Some(r) => Some(Self::new(r, Fp::ZERO)),
                None => (-self.c0).sqrt().map(|r| Self::new(Fp::ZERO, r)),
            };
        }
        let s = self.norm().sqrt()?;
        let two_inv = Fp::<P, N>::from_u64(2).inverse().expect("odd characteristic");
        let mut t = (self.c0 + s) * two_inv;
        let mut c0 = t.sqrt();
        if c0.is_none() {
            t = (self.c0 - s) * two_inv;
            c0 = t.sqrt();
        }
        let c0 = c0?;
        let c1 = self.c1 * (c0.double()).inverse()?;
        let cand = Self::new(c0, c1);
        (cand.square() == *self).then_some(cand)
    }
}

impl<P: FpParams<N>, const N: usize> Default for Fp2<P, N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<P: FpParams<N>, const N: usize> core::fmt::Display for Fp2<P, N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({} + {}*u)", self.c0, self.c1)
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::Add for Fp2<P, N> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.c0 + rhs.c0, self.c1 + rhs.c1)
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::Sub for Fp2<P, N> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.c0 - rhs.c0, self.c1 - rhs.c1)
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::Mul for Fp2<P, N> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba: (a0 + a1 u)(b0 + b1 u) = a0b0 - a1b1 + ((a0+a1)(b0+b1) - a0b0 - a1b1) u
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let mixed = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Self::new(v0 - v1, mixed - v0 - v1)
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::Neg for Fp2<P, N> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1)
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::AddAssign for Fp2<P, N> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::SubAssign for Fp2<P, N> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::MulAssign for Fp2<P, N> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Bn254Fq;
    use rand::{rngs::StdRng, SeedableRng};

    type F2 = Fp2<Bn254Fq, 4>;

    #[test]
    fn u_squared_is_minus_one() {
        let u = F2::new(Fp::ZERO, Fp::ONE);
        assert_eq!(u * u, -F2::ONE);
    }

    #[test]
    fn field_axioms_random() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let a = F2::random(&mut rng);
            let b = F2::random(&mut rng);
            let c = F2::random(&mut rng);
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a * b, b * a);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert_eq!(a.inverse().unwrap() * a, F2::ONE);
            }
        }
    }

    #[test]
    fn norm_is_multiplicative() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = F2::random(&mut rng);
        let b = F2::random(&mut rng);
        assert_eq!((a * b).norm(), a.norm() * b.norm());
    }

    #[test]
    fn sqrt_of_square_round_trips() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..25 {
            let a = F2::random(&mut rng);
            let sq = a.square();
            let r = sq.sqrt().expect("squares have roots");
            assert!(r == a || r == -a);
        }
        // pure-imaginary and pure-real cases
        let b = F2::new(Fp::ZERO, Fp::from_u64(5));
        let r = b.square().sqrt().unwrap();
        assert!(r == b || r == -b);
        assert_eq!(F2::ZERO.sqrt(), Some(F2::ZERO));
    }

    #[test]
    fn sqrt_rejects_nonsquares() {
        // x is a square in Fp2 iff norm(x) is a square in Fp and the
        // reconstruction succeeds; scan until a non-square appears
        let mut rng = StdRng::seed_from_u64(11);
        let mut rejected = 0;
        for _ in 0..40 {
            let a = F2::random(&mut rng);
            if let Some(r) = a.sqrt() {
                assert_eq!(r.square(), a);
            } else {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "roughly half of Fp2 is non-square");
    }

    #[test]
    fn conjugate_properties() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = F2::random(&mut rng);
        assert_eq!(a * a.conjugate(), Fp2::from_base(a.norm()));
    }
}
