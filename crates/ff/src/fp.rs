//! Generic Montgomery-form prime field.
//!
//! [`Fp<P, N>`] is a field element of the prime field described by the
//! parameter type `P` (one of the markers in [`crate::params`]). Elements
//! are kept in the Montgomery domain at all times; conversion happens only
//! at the API boundary ([`Fp::from_uint`] / [`Fp::to_uint`]).

use crate::mont::{
    add_mod, compute_r, compute_r2, mont_inv64, mont_mul_cios, mont_mul_sos, sub_mod, two_adicity,
};
use crate::uint::Uint;
use core::marker::PhantomData;
use rand::Rng;

/// Compile-time description of a prime field.
///
/// Implementors are zero-sized marker types; only [`FpParams::MODULUS`] and
/// [`FpParams::NAME`] must be provided — every Montgomery constant is derived
/// from the modulus by `const fn`s so the tables cannot drift out of sync.
///
/// This trait is not intended to be implemented outside this workspace but is
/// left open so downstream experiments can add curves.
pub trait FpParams<const N: usize>:
    'static + Sized + Copy + Clone + Send + Sync + core::fmt::Debug + PartialEq + Eq
{
    /// The prime modulus. Must be odd and leave at least one spare bit in
    /// the top limb.
    const MODULUS: Uint<N>;
    /// Human-readable field name (used in diagnostics and reports).
    const NAME: &'static str;

    /// `-MODULUS⁻¹ mod 2^64` (the `n′₀` of the paper's Algorithm 2).
    const INV: u64 = mont_inv64(Self::MODULUS.0[0]);
    /// `R = 2^(64N) mod MODULUS` — the Montgomery form of one.
    const R: Uint<N> = compute_r(&Self::MODULUS);
    /// `R² mod MODULUS` — converts canonical values into the domain.
    const R2: Uint<N> = compute_r2(&Self::MODULUS);
    /// Two-adicity `s` of `MODULUS - 1 = 2^s · odd` (bounds NTT sizes).
    const TWO_ADICITY: u32 = two_adicity(&Self::MODULUS);
    /// Significant bits of the modulus (the `λ` / point widths of Table 1).
    const MODULUS_BITS: u32 = Self::MODULUS.num_bits();
}

/// An element of the prime field `P`, stored in Montgomery form.
///
/// # Examples
///
/// ```
/// use distmsm_ff::{Fp, params::Bn254Fq};
///
/// type F = Fp<Bn254Fq, 4>;
/// let a = F::from_u64(3);
/// let b = F::from_u64(4);
/// assert_eq!((a + b) * a, F::from_u64(21));
/// assert_eq!(a.inverse().unwrap() * a, F::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp<P: FpParams<N>, const N: usize> {
    repr: Uint<N>,
    _params: PhantomData<P>,
}

impl<P: FpParams<N>, const N: usize> Fp<P, N> {
    /// The additive identity.
    pub const ZERO: Self = Self::from_mont(Uint::ZERO);

    /// The multiplicative identity (Montgomery form `R`).
    pub const ONE: Self = Self::from_mont(P::R);

    /// The field modulus (re-exported from the parameter type for
    /// convenience at use sites that only know the alias).
    pub const MODULUS: Uint<N> = P::MODULUS;

    /// Significant bits of the modulus.
    pub const MODULUS_BITS: u32 = P::MODULUS_BITS;

    /// Two-adicity of the multiplicative group.
    pub const TWO_ADICITY: u32 = P::TWO_ADICITY;

    /// Human-readable field name.
    pub const NAME: &'static str = P::NAME;

    /// Wraps an already-Montgomery-form representation.
    ///
    /// Callers must guarantee `repr < MODULUS`; this is the raw constructor
    /// used by the simulated GPU kernels, which operate on Montgomery limbs
    /// directly.
    #[inline]
    pub const fn from_mont(repr: Uint<N>) -> Self {
        Self {
            repr,
            _params: PhantomData,
        }
    }

    /// The raw Montgomery-form limbs.
    #[inline]
    pub const fn mont_repr(&self) -> &Uint<N> {
        &self.repr
    }

    /// Converts a canonical integer into the field, reducing if necessary.
    pub fn from_uint(v: &Uint<N>) -> Self {
        let mut v = *v;
        while !v.lt(&P::MODULUS) {
            let (d, _) = v.borrowing_sub(&P::MODULUS);
            v = d;
        }
        Self::from_mont(mont_mul_cios(&v, &P::R2, &P::MODULUS, P::INV))
    }

    /// Converts a small integer into the field.
    pub fn from_u64(v: u64) -> Self {
        Self::from_uint(&Uint::from_u64(v))
    }

    /// Field element for a signed small integer (negative maps to `p - |v|`).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Self::from_u64(v as u64)
        } else {
            -Self::from_u64(v.unsigned_abs())
        }
    }

    /// Converts back to the canonical integer in `[0, p)`.
    pub fn to_uint(&self) -> Uint<N> {
        mont_mul_cios(&self.repr, &Uint::ONE, &P::MODULUS, P::INV)
    }

    /// Returns `true` for the additive identity.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.repr.is_zero()
    }

    /// Returns `true` for the multiplicative identity.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.repr == P::R
    }

    /// Doubles the element.
    #[inline]
    pub fn double(&self) -> Self {
        Self::from_mont(add_mod(&self.repr, &self.repr, &P::MODULUS))
    }

    /// Squares the element.
    #[inline]
    pub fn square(&self) -> Self {
        *self * *self
    }

    /// Montgomery multiplication via the SOS method (paper Algorithm 2),
    /// functionally identical to `*` (which uses CIOS); exposed so the
    /// kernel-model crate can compare both schedules.
    pub fn mul_sos(&self, rhs: &Self) -> Self {
        Self::from_mont(mont_mul_sos(&self.repr, &rhs.repr, &P::MODULUS, P::INV))
    }

    /// Exponentiation by a little-endian limb slice.
    pub fn pow(&self, exp: &[u64]) -> Self {
        let mut acc = Self::ONE;
        let mut bits = 64 * exp.len();
        while bits > 0 && (exp[(bits - 1) / 64] >> ((bits - 1) % 64)) & 1 == 0 {
            bits -= 1;
        }
        for i in (0..bits).rev() {
            acc = acc.square();
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                acc *= *self;
            }
        }
        acc
    }

    /// Multiplicative inverse, or `None` for zero.
    ///
    /// Uses Fermat's little theorem (`a^(p-2)`), which is branch-free and
    /// correct for any prime modulus.
    pub fn inverse(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        let (pm2, _) = P::MODULUS.borrowing_sub(&Uint::from_u64(2));
        Some(self.pow(&pm2.0))
    }

    /// Legendre symbol: `1` for a nonzero square, `-1` for a non-square,
    /// `0` for zero.
    pub fn legendre(&self) -> i32 {
        if self.is_zero() {
            return 0;
        }
        let (pm1, _) = P::MODULUS.borrowing_sub(&Uint::ONE);
        let e = pm1.shr1();
        let r = self.pow(&e.0);
        if r == Self::ONE {
            1
        } else {
            -1
        }
    }

    /// Square root via Tonelli–Shanks, or `None` for non-squares.
    ///
    /// Used for deterministic curve-point sampling: pick `x`, solve for `y`.
    pub fn sqrt(&self) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        if self.legendre() != 1 {
            return None;
        }
        let s = P::TWO_ADICITY;
        let (pm1, _) = P::MODULUS.borrowing_sub(&Uint::ONE);
        let q = pm1.shr(s); // odd part
        if s == 1 {
            // p ≡ 3 (mod 4): a^((p+1)/4)
            let (p1, _) = P::MODULUS.carrying_add(&Uint::ONE);
            let e = p1.shr(2);
            let r = self.pow(&e.0);
            return (r.square() == *self).then_some(r);
        }
        // find a quadratic non-residue z
        let mut z = Self::from_u64(2);
        while z.legendre() != -1 {
            z += Self::ONE;
        }
        let mut m = s;
        let mut c = z.pow(&q.0);
        let mut t = self.pow(&q.0);
        let q1 = {
            let (v, _) = q.carrying_add(&Uint::ONE);
            v.shr1()
        };
        let mut r = self.pow(&q1.0);
        while !t.is_one() {
            let mut i = 0;
            let mut t2 = t;
            while !t2.is_one() {
                t2 = t2.square();
                i += 1;
                if i == m {
                    return None;
                }
            }
            let mut b = c;
            for _ in 0..(m - i - 1) {
                b = b.square();
            }
            m = i;
            c = b.square();
            t *= c;
            r *= b;
        }
        (r.square() == *self).then_some(r)
    }

    /// Uniformly random field element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling on the top limb keeps the distribution uniform.
        loop {
            let mut limbs = [0u64; N];
            for l in &mut limbs {
                *l = rng.random();
            }
            let top_bits = P::MODULUS_BITS % 64;
            if top_bits != 0 {
                limbs[N - 1] &= (1u64 << top_bits) - 1;
            }
            let v = Uint(limbs);
            if v.lt(&P::MODULUS) {
                return Self::from_mont(mont_mul_cios(&v, &P::R2, &P::MODULUS, P::INV));
            }
        }
    }

    /// A 2^`log_n`-th primitive root of unity, or `None` if the field's
    /// two-adicity is insufficient. The generator is found by searching for
    /// a quadratic non-residue, whose `(p-1)/2^s` power has exact order
    /// `2^s`.
    pub fn root_of_unity(log_n: u32) -> Option<Self> {
        if log_n > P::TWO_ADICITY {
            return None;
        }
        let mut g = Self::from_u64(2);
        while g.legendre() != -1 {
            g += Self::ONE;
        }
        let (pm1, _) = P::MODULUS.borrowing_sub(&Uint::ONE);
        let e = pm1.shr(log_n);
        Some(g.pow(&e.0))
    }
}

impl<P: FpParams<N>, const N: usize> Default for Fp<P, N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<P: FpParams<N>, const N: usize> core::fmt::Debug for Fp<P, N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}(0x{:x})", P::NAME, self.to_uint())
    }
}

impl<P: FpParams<N>, const N: usize> core::fmt::Display for Fp<P, N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "0x{:x}", self.to_uint())
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::Add for Fp<P, N> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::from_mont(add_mod(&self.repr, &rhs.repr, &P::MODULUS))
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::Sub for Fp<P, N> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::from_mont(sub_mod(&self.repr, &rhs.repr, &P::MODULUS))
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::Mul for Fp<P, N> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::from_mont(mont_mul_cios(&self.repr, &rhs.repr, &P::MODULUS, P::INV))
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::Neg for Fp<P, N> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::from_mont(sub_mod(&Uint::ZERO, &self.repr, &P::MODULUS))
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::AddAssign for Fp<P, N> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::SubAssign for Fp<P, N> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<P: FpParams<N>, const N: usize> core::ops::MulAssign for Fp<P, N> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<P: FpParams<N>, const N: usize> core::iter::Sum for Fp<P, N> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<P: FpParams<N>, const N: usize> core::iter::Product for Fp<P, N> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl<P: FpParams<N>, const N: usize> From<u64> for Fp<P, N> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bn254Fq, Bn254Fr, Mnt4753Fq};
    use rand::{rngs::StdRng, SeedableRng};

    type F = Fp<Bn254Fq, 4>;
    type Fr = Fp<Bn254Fr, 4>;
    type Fbig = Fp<Mnt4753Fq, 12>;

    #[test]
    fn identities() {
        assert!(F::ZERO.is_zero());
        assert!(F::ONE.is_one());
        assert_eq!(F::ONE.to_uint(), Uint::ONE);
        assert_eq!(F::from_u64(0), F::ZERO);
    }

    #[test]
    fn add_sub_neg() {
        let a = F::from_u64(100);
        let b = F::from_u64(58);
        assert_eq!(a - b, F::from_u64(42));
        assert_eq!(b - a, -F::from_u64(42));
        assert_eq!(a + (-a), F::ZERO);
    }

    #[test]
    fn mul_distributes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let a = F::random(&mut rng);
            let b = F::random(&mut rng);
            let c = F::random(&mut rng);
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.mul_sos(&b), a * b);
        }
    }

    #[test]
    fn inverse_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let a = F::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.inverse().unwrap() * a, F::ONE);
        }
        assert!(F::ZERO.inverse().is_none());
    }

    #[test]
    fn sqrt_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut squares = 0;
        for _ in 0..20 {
            let a = F::random(&mut rng);
            let sq = a.square();
            let r = sq.sqrt().expect("square must have a root");
            assert!(r == a || r == -a);
            squares += 1;
        }
        assert!(squares > 0);
    }

    #[test]
    fn sqrt_of_nonresidue_is_none() {
        // find a non-residue and check
        let mut z = F::from_u64(2);
        while z.legendre() != -1 {
            z += F::ONE;
        }
        assert!(z.sqrt().is_none());
    }

    #[test]
    fn mnt4753_field_works() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Fbig::random(&mut rng);
        let b = Fbig::random(&mut rng);
        assert_eq!((a + b) - b, a);
        assert_eq!(a * b * b.inverse().unwrap(), a);
        assert_eq!(a.mul_sos(&b), a * b);
        assert_eq!(Fbig::MODULUS_BITS, 753);
    }

    #[test]
    fn bn254_fr_two_adic_root() {
        assert_eq!(Fr::TWO_ADICITY, 28);
        let w = Fr::root_of_unity(4).unwrap();
        let mut acc = Fr::ONE;
        for _ in 0..16 {
            acc *= w;
        }
        assert!(acc.is_one());
        let mut acc8 = Fr::ONE;
        for _ in 0..8 {
            acc8 *= w;
        }
        assert!(!acc8.is_one());
        assert!(Fr::root_of_unity(29).is_none());
    }

    #[test]
    fn from_i64_negative() {
        assert_eq!(F::from_i64(-5) + F::from_u64(5), F::ZERO);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = F::from_u64(3);
        assert_eq!(a.pow(&[5]), F::from_u64(243));
        assert_eq!(a.pow(&[0]), F::ONE);
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", F::ZERO), "0x0");
        assert!(format!("{:?}", F::ONE).contains("BN254"));
    }
}
