//! Montgomery-domain constants and reduction primitives.
//!
//! Every constant needed by a Montgomery-form field — `n′₀ = -p⁻¹ mod 2^64`,
//! `R = 2^(64N) mod p`, `R² mod p` — is computed here by `const fn`s directly
//! from the modulus, so the parameter tables in [`crate::params`] only ever
//! state the modulus itself and cannot drift out of sync with derived
//! constants (DESIGN.md §7).

use crate::uint::{adc, mac, Uint};

/// Computes `-m₀⁻¹ mod 2^64` for an odd `m₀` by Newton iteration.
///
/// This is the `n′₀` of the paper's Algorithm 2 (there for 32-bit limbs; the
/// 32-bit flavour lives in [`crate::u32limb::mont_inv32`]).
///
/// # Panics
///
/// Panics if `m0` is even (a Montgomery modulus must be odd).
pub const fn mont_inv64(m0: u64) -> u64 {
    assert!(m0 & 1 == 1, "Montgomery modulus must be odd");
    // Newton: x_{k+1} = x_k (2 - m0 x_k); doubles correct bits each step.
    let mut inv = 1u64;
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// Doubles `a` modulo `m`, assuming `a < m` and the top bit of `m`'s top
/// limb is clear (true for every modulus in this workspace).
pub const fn double_mod<const N: usize>(a: &Uint<N>, m: &Uint<N>) -> Uint<N> {
    let (d, carry) = a.shl1();
    let (r, borrow) = d.borrowing_sub(m);
    if carry || !borrow {
        r
    } else {
        d
    }
}

/// Adds `a + b mod m`, assuming both inputs `< m`.
pub const fn add_mod<const N: usize>(a: &Uint<N>, b: &Uint<N>, m: &Uint<N>) -> Uint<N> {
    let (s, carry) = a.carrying_add(b);
    let (r, borrow) = s.borrowing_sub(m);
    if carry || !borrow {
        r
    } else {
        s
    }
}

/// Subtracts `a - b mod m`, assuming both inputs `< m`.
pub const fn sub_mod<const N: usize>(a: &Uint<N>, b: &Uint<N>, m: &Uint<N>) -> Uint<N> {
    let (d, borrow) = a.borrowing_sub(b);
    if borrow {
        let (r, _) = d.carrying_add(m);
        r
    } else {
        d
    }
}

/// Computes `2^k mod m` by repeated doubling.
pub const fn pow2_mod<const N: usize>(k: u32, m: &Uint<N>) -> Uint<N> {
    let mut acc = Uint::<N>::ONE;
    // Reduce the initial 1 in case m == 1 is ever passed; moduli are > 1.
    let mut i = 0;
    while i < k {
        acc = double_mod(&acc, m);
        i += 1;
    }
    acc
}

/// `R = 2^(64N) mod m`, the Montgomery radix residue.
pub const fn compute_r<const N: usize>(m: &Uint<N>) -> Uint<N> {
    pow2_mod(64 * N as u32, m)
}

/// `R² = 2^(128N) mod m`, used to convert into the Montgomery domain.
pub const fn compute_r2<const N: usize>(m: &Uint<N>) -> Uint<N> {
    pow2_mod(128 * N as u32, m)
}

/// Number of trailing zero bits of `m - 1` (the two-adicity of the
/// multiplicative group, which bounds NTT sizes).
pub const fn two_adicity<const N: usize>(m: &Uint<N>) -> u32 {
    let (m1, _) = m.borrowing_sub(&Uint::ONE);
    let mut s = 0;
    while s < 64 * N as u32 {
        if m1.bit(s) {
            return s;
        }
        s += 1;
    }
    0
}

/// CIOS Montgomery multiplication: returns `a · b · R⁻¹ mod m`.
///
/// Requires the modulus to leave at least one spare bit in the top limb
/// (all four curves' fields do — see Table 1 of the paper), which lets the
/// running value fit in `N + 1` limbs.
#[inline]
pub fn mont_mul_cios<const N: usize>(a: &Uint<N>, b: &Uint<N>, m: &Uint<N>, inv: u64) -> Uint<N> {
    let mut t = [0u64; 64];
    debug_assert!(N < 64);
    let mut t_extra = 0u64; // t[N]
    for i in 0..N {
        // t += a[i] * b
        let mut carry = 0u64;
        for (j, tj) in t.iter_mut().enumerate().take(N) {
            let (v, c) = mac(*tj, a.0[i], b.0[j], carry);
            *tj = v;
            carry = c;
        }
        let (v, c) = adc(t_extra, carry, 0);
        t_extra = v;
        debug_assert_eq!(c, 0, "modulus must leave a spare top bit");

        // reduce one limb: t = (t + q_i * m) / 2^64
        let q = t[0].wrapping_mul(inv);
        let (_, mut carry) = mac(t[0], q, m.0[0], 0);
        for j in 1..N {
            let (v, c) = mac(t[j], q, m.0[j], carry);
            t[j - 1] = v;
            carry = c;
        }
        let (v, c) = adc(t_extra, carry, 0);
        t[N - 1] = v;
        t_extra = c;
    }
    let mut out = [0u64; N];
    out.copy_from_slice(&t[..N]);
    let r = Uint(out);
    // final conditional subtraction
    let (sub, borrow) = r.borrowing_sub(m);
    if t_extra != 0 || !borrow {
        sub
    } else {
        r
    }
}

/// SOS (Separated Operand Scanning) Montgomery reduction of a double-width
/// value `(lo, hi)`, mirroring the paper's Algorithm 2 at 64-bit limb width.
///
/// Returns `(hi·2^(64N) + lo) · R⁻¹ mod m`.
pub fn mont_reduce_sos<const N: usize>(
    lo: &Uint<N>,
    hi: &Uint<N>,
    m: &Uint<N>,
    inv: u64,
) -> Uint<N> {
    // Working buffer C[0 .. 2N] plus one carry limb.
    let mut c = [0u64; 129];
    debug_assert!(2 * N < 129);
    c[..N].copy_from_slice(&lo.0);
    c[N..2 * N].copy_from_slice(&hi.0);
    for i in 0..N {
        // m_i = C[i] * n'0 mod 2^64  (paper line 3, with 64-bit limbs)
        let q = c[i].wrapping_mul(inv);
        // C += q * m << (64 i)      (paper line 4)
        let mut carry = 0u64;
        for j in 0..N {
            let (v, cr) = mac(c[i + j], q, m.0[j], carry);
            c[i + j] = v;
            carry = cr;
        }
        // propagate the carry through the upper limbs
        let mut k = i + N;
        while carry != 0 {
            let (v, cr) = adc(c[k], carry, 0);
            c[k] = v;
            carry = cr;
            k += 1;
        }
    }
    let mut out = [0u64; N];
    out.copy_from_slice(&c[N..2 * N]);
    let r = Uint(out);
    let overflow = c[2 * N] != 0;
    let (sub, borrow) = r.borrowing_sub(m);
    if overflow || !borrow {
        sub
    } else {
        r
    }
}

/// SOS Montgomery multiplication: widening multiply then [`mont_reduce_sos`].
pub fn mont_mul_sos<const N: usize>(a: &Uint<N>, b: &Uint<N>, m: &Uint<N>, inv: u64) -> Uint<N> {
    let (lo, hi) = a.widening_mul(b);
    mont_reduce_sos(&lo, &hi, m, inv)
}

/// A runtime Montgomery context for an arbitrary odd modulus.
///
/// The compile-time field types in [`crate::fp`] cover the fixed curve
/// fields; `MontCtx` serves callers that receive the modulus at runtime —
/// Miller–Rabin primality checking ([`crate::primality`]) and the simulated
/// GPU kernels that are handed a modulus as plain data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MontCtx<const N: usize> {
    modulus: Uint<N>,
    inv: u64,
    r: Uint<N>,
    r2: Uint<N>,
}

impl<const N: usize> MontCtx<N> {
    /// Builds a context for an odd modulus `m > 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is even or `≤ 1`, or if its top bit is set (every
    /// supported modulus leaves headroom in the top limb).
    pub fn new(modulus: Uint<N>) -> Self {
        assert!(modulus.0[0] & 1 == 1, "modulus must be odd");
        assert!(!modulus.is_zero() && modulus != Uint::ONE, "modulus must exceed 1");
        assert!(
            modulus.num_bits() < 64 * N as u32,
            "modulus must leave a spare top bit"
        );
        let inv = mont_inv64(modulus.0[0]);
        Self {
            modulus,
            inv,
            r: compute_r(&modulus),
            r2: compute_r2(&modulus),
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Uint<N> {
        &self.modulus
    }

    /// `R mod m` — the Montgomery form of 1.
    pub fn one(&self) -> Uint<N> {
        self.r
    }

    /// Converts a canonical value (`< m`) into Montgomery form.
    pub fn to_mont(&self, a: &Uint<N>) -> Uint<N> {
        mont_mul_cios(a, &self.r2, &self.modulus, self.inv)
    }

    /// Converts a Montgomery-form value back to canonical form.
    pub fn from_mont(&self, a: &Uint<N>) -> Uint<N> {
        mont_mul_cios(a, &Uint::ONE, &self.modulus, self.inv)
    }

    /// Montgomery product `a · b · R⁻¹ mod m`.
    pub fn mul(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        mont_mul_cios(a, b, &self.modulus, self.inv)
    }

    /// Modular addition of Montgomery-form values.
    pub fn add(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        add_mod(a, b, &self.modulus)
    }

    /// Modular subtraction of Montgomery-form values.
    pub fn sub(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        sub_mod(a, b, &self.modulus)
    }

    /// Montgomery-form exponentiation `base^exp mod m` (square-and-multiply,
    /// most-significant bit first). `base` is in Montgomery form and the
    /// result is too.
    pub fn pow(&self, base: &Uint<N>, exp: &Uint<N>) -> Uint<N> {
        let mut acc = self.r;
        let bits = exp.num_bits();
        for i in (0..bits).rev() {
            acc = self.mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Uint<4> =
        Uint::from_hex("0x30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47");

    #[test]
    fn inv64_is_inverse() {
        let inv = mont_inv64(P.0[0]);
        assert_eq!(P.0[0].wrapping_mul(inv.wrapping_neg()), 1);
    }

    #[test]
    fn r_and_r2_consistent() {
        let ctx = MontCtx::new(P);
        // R² · R⁻¹ = R (mont multiply R2 by one)
        assert_eq!(ctx.mul(&ctx.r2, &Uint::ONE), ctx.r);
        // to_mont(1) = R
        assert_eq!(ctx.to_mont(&Uint::ONE), ctx.r);
        // round trip
        let x = Uint::<4>::from_u64(123456789);
        assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
    }

    #[test]
    fn cios_matches_sos() {
        let ctx = MontCtx::new(P);
        let mut a = Uint::<4>::from_u64(0xdeadbeef);
        let mut b = Uint::<4>::from_hex("0x123456789abcdef0fedcba9876543210");
        for _ in 0..50 {
            let cios = mont_mul_cios(&a, &b, &P, ctx.inv);
            let sos = mont_mul_sos(&a, &b, &P, ctx.inv);
            assert_eq!(cios, sos);
            a = add_mod(&cios, &b, &P);
            b = double_mod(&b, &P);
        }
    }

    #[test]
    fn mont_mul_small_identity() {
        let ctx = MontCtx::new(P);
        // mont(aR, bR) = abR; with a=3,b=5 => from_mont = 15
        let a = ctx.to_mont(&Uint::from_u64(3));
        let b = ctx.to_mont(&Uint::from_u64(5));
        assert_eq!(ctx.from_mont(&ctx.mul(&a, &b)), Uint::from_u64(15));
    }

    #[test]
    fn pow_fermat() {
        // a^(p-1) = 1 mod p for prime p
        let ctx = MontCtx::new(P);
        let (pm1, _) = P.borrowing_sub(&Uint::ONE);
        let a = ctx.to_mont(&Uint::from_u64(7));
        assert_eq!(ctx.pow(&a, &pm1), ctx.one());
    }

    #[test]
    fn two_adicity_bn254_scalar() {
        let r: Uint<4> =
            Uint::from_hex("0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001");
        assert_eq!(two_adicity(&r), 28);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        MontCtx::new(Uint::<4>::from_u64(100));
    }
}
