//! Fixed-width little-endian big integers.
//!
//! [`Uint<N>`] is a `N × 64`-bit unsigned integer stored as little-endian
//! `u64` limbs. It is the plain-integer substrate under the Montgomery-form
//! field elements in [`crate::fp`]: scalars handed to an MSM are `Uint`s, the
//! window decomposition of Pippenger's algorithm slices `Uint` bits, and the
//! GPU-kernel mirrors in [`crate::u32limb`] view the same values as `u32`
//! limbs.

/// Add with carry: returns `(a + b + carry) mod 2^64` and the carry out.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Subtract with borrow: returns `(a - b - borrow) mod 2^64` and the borrow
/// out (0 or 1).
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Multiply-accumulate: returns `(a + b * c + carry) mod 2^64` and the high
/// 64 bits. Never overflows `u128` because
/// `u64::MAX + u64::MAX² + u64::MAX < u128::MAX`.
#[inline(always)]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// A fixed-width unsigned integer with `N` little-endian 64-bit limbs.
///
/// # Examples
///
/// ```
/// use distmsm_ff::Uint;
///
/// let a = Uint::<4>::from_u64(7);
/// let b = Uint::<4>::from_hex("ff");
/// let (sum, carry) = a.carrying_add(&b);
/// assert_eq!(sum, Uint::from_u64(0x106));
/// assert!(!carry);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const N: usize>(pub [u64; N]);

impl<const N: usize> Uint<N> {
    /// The additive identity.
    pub const ZERO: Self = Self([0; N]);

    /// The multiplicative identity.
    pub const ONE: Self = {
        let mut limbs = [0u64; N];
        limbs[0] = 1;
        Self(limbs)
    };

    /// The all-ones value `2^(64N) - 1`.
    pub const MAX: Self = Self([u64::MAX; N]);

    /// Number of bits in the representation.
    pub const BITS: u32 = 64 * N as u32;

    /// Creates a `Uint` holding a small value.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; N];
        limbs[0] = v;
        Self(limbs)
    }

    /// Creates a `Uint` holding a 128-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `N < 2`.
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        assert!(N >= 2, "Uint::from_u128 requires at least two limbs");
        let mut limbs = [0u64; N];
        limbs[0] = v as u64;
        limbs[1] = (v >> 64) as u64;
        Self(limbs)
    }

    /// Parses a (big-endian) hexadecimal string, with or without a `0x`
    /// prefix. Usable in `const` contexts, which is how every field modulus
    /// in [`crate::params`] is declared.
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters or if the value does not fit in `N`
    /// limbs.
    pub const fn from_hex(s: &str) -> Self {
        let bytes = s.as_bytes();
        let mut start = 0;
        if bytes.len() >= 2 && bytes[0] == b'0' && (bytes[1] == b'x' || bytes[1] == b'X') {
            start = 2;
        }
        let mut limbs = [0u64; N];
        let mut i = bytes.len();
        let mut nibble = 0usize;
        while i > start {
            i -= 1;
            let c = bytes[i];
            if c == b'_' {
                continue;
            }
            let v = match c {
                b'0'..=b'9' => (c - b'0') as u64,
                b'a'..=b'f' => (c - b'a' + 10) as u64,
                b'A'..=b'F' => (c - b'A' + 10) as u64,
                _ => panic!("invalid hexadecimal character"),
            };
            let limb = nibble / 16;
            assert!(limb < N || v == 0, "hex literal does not fit in Uint");
            if limb < N {
                limbs[limb] |= v << ((nibble % 16) * 4);
            }
            nibble += 1;
        }
        Self(limbs)
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub const fn is_zero(&self) -> bool {
        let mut i = 0;
        while i < N {
            if self.0[i] != 0 {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Returns bit `i` (little-endian), or `false` when out of range.
    #[inline]
    pub const fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        if limb >= N {
            return false;
        }
        (self.0[limb] >> (i % 64)) & 1 == 1
    }

    /// Extracts `width ≤ 64` bits starting at bit `lo`, the window-slicing
    /// primitive of Pippenger's algorithm.
    ///
    /// Bits past the end of the integer read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    #[inline]
    pub fn bits(&self, lo: u32, width: u32) -> u64 {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        let limb = (lo / 64) as usize;
        let shift = lo % 64;
        if limb >= N {
            return 0;
        }
        let mut v = self.0[limb] >> shift;
        if shift + width > 64 && limb + 1 < N {
            v |= self.0[limb + 1] << (64 - shift);
        }
        if width == 64 {
            v
        } else {
            v & ((1u64 << width) - 1)
        }
    }

    /// Number of significant bits (0 for zero).
    #[inline]
    pub const fn num_bits(&self) -> u32 {
        let mut i = N;
        while i > 0 {
            i -= 1;
            if self.0[i] != 0 {
                return 64 * i as u32 + 64 - self.0[i].leading_zeros();
            }
        }
        0
    }

    /// Wrapping addition returning the result and whether a carry out of the
    /// top limb occurred.
    #[inline]
    pub const fn carrying_add(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        let mut i = 0;
        while i < N {
            let (v, c) = adc(self.0[i], rhs.0[i], carry);
            out[i] = v;
            carry = c;
            i += 1;
        }
        (Self(out), carry != 0)
    }

    /// Wrapping subtraction returning the result and whether a borrow out of
    /// the top limb occurred (i.e. `self < rhs`).
    #[inline]
    pub const fn borrowing_sub(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut borrow = 0u64;
        let mut i = 0;
        while i < N {
            let (v, b) = sbb(self.0[i], rhs.0[i], borrow);
            out[i] = v;
            borrow = b;
            i += 1;
        }
        (Self(out), borrow != 0)
    }

    /// Schoolbook widening multiplication; returns `(lo, hi)` so that the
    /// full product is `hi · 2^(64N) + lo`.
    pub const fn widening_mul(&self, rhs: &Self) -> (Self, Self) {
        let mut wide = [0u64; 64]; // large enough for any N we instantiate
        assert!(2 * N <= 64, "Uint::widening_mul supports up to 32 limbs");
        let mut i = 0;
        while i < N {
            let mut carry = 0u64;
            let mut j = 0;
            while j < N {
                let (v, c) = mac(wide[i + j], self.0[i], rhs.0[j], carry);
                wide[i + j] = v;
                carry = c;
                j += 1;
            }
            wide[i + N] = carry;
            i += 1;
        }
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        let mut k = 0;
        while k < N {
            lo[k] = wide[k];
            hi[k] = wide[k + N];
            k += 1;
        }
        (Self(lo), Self(hi))
    }

    /// Left shift by one bit; returns the result and the bit shifted out.
    #[inline]
    pub const fn shl1(&self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        let mut i = 0;
        while i < N {
            out[i] = (self.0[i] << 1) | carry;
            carry = self.0[i] >> 63;
            i += 1;
        }
        (Self(out), carry != 0)
    }

    /// Logical right shift by one bit.
    #[inline]
    pub const fn shr1(&self) -> Self {
        let mut out = [0u64; N];
        let mut i = 0;
        while i < N {
            out[i] = self.0[i] >> 1;
            if i + 1 < N {
                out[i] |= self.0[i + 1] << 63;
            }
            i += 1;
        }
        Self(out)
    }

    /// Logical right shift by an arbitrary number of bits.
    pub fn shr(&self, bits: u32) -> Self {
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = [0u64; N];
        for (i, o) in out.iter_mut().enumerate() {
            if i + limb_shift < N {
                *o = self.0[i + limb_shift] >> bit_shift;
                if bit_shift > 0 && i + limb_shift + 1 < N {
                    *o |= self.0[i + limb_shift + 1] << (64 - bit_shift);
                }
            }
        }
        Self(out)
    }

    /// Constant-width comparison.
    #[inline]
    pub const fn const_cmp(&self, rhs: &Self) -> core::cmp::Ordering {
        let mut i = N;
        while i > 0 {
            i -= 1;
            if self.0[i] < rhs.0[i] {
                return core::cmp::Ordering::Less;
            }
            if self.0[i] > rhs.0[i] {
                return core::cmp::Ordering::Greater;
            }
        }
        core::cmp::Ordering::Equal
    }

    /// Returns `true` if `self < rhs`.
    #[inline]
    pub const fn lt(&self, rhs: &Self) -> bool {
        matches!(self.const_cmp(rhs), core::cmp::Ordering::Less)
    }

    /// Reinterprets the value as `2N` little-endian `u32` limbs, the layout
    /// the simulated GPU kernels in [`crate::u32limb`] operate on.
    pub fn to_u32_limbs(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(2 * N);
        for limb in self.0 {
            out.push(limb as u32);
            out.push((limb >> 32) as u32);
        }
        out
    }

    /// Rebuilds a `Uint` from `2N` little-endian `u32` limbs.
    ///
    /// # Panics
    ///
    /// Panics if `limbs.len() != 2N`.
    pub fn from_u32_limbs(limbs: &[u32]) -> Self {
        assert_eq!(limbs.len(), 2 * N, "expected {} u32 limbs", 2 * N);
        let mut out = [0u64; N];
        for (i, chunk) in limbs.chunks_exact(2).enumerate() {
            out[i] = chunk[0] as u64 | ((chunk[1] as u64) << 32);
        }
        Self(out)
    }

    /// Little-endian bytes of the value.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        self.0.iter().flat_map(|l| l.to_le_bytes()).collect()
    }

    /// Interprets the low 64 bits as `u64` (truncating).
    #[inline]
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Division by a small divisor: returns `(self / d, self % d)`.
    ///
    /// Used to derive pairing exponents such as `(p − 1)/6` at runtime.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (Self, u64) {
        assert!(d != 0, "division by zero");
        let mut out = [0u64; N];
        let mut rem: u128 = 0;
        for i in (0..N).rev() {
            let cur = (rem << 64) | u128::from(self.0[i]);
            out[i] = (cur / u128::from(d)) as u64;
            rem = cur % u128::from(d);
        }
        (Self(out), rem as u64)
    }
}

impl<const N: usize> Default for Uint<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize> PartialOrd for Uint<N> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> Ord for Uint<N> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.const_cmp(other)
    }
}

impl<const N: usize> core::fmt::Debug for Uint<N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Uint(0x{self:x})")
    }
}

impl<const N: usize> core::fmt::Display for Uint<N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "0x{self:x}")
    }
}

impl<const N: usize> core::fmt::LowerHex for Uint<N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut started = false;
        for limb in self.0.iter().rev() {
            if started {
                write!(f, "{limb:016x}")?;
            } else if *limb != 0 {
                write!(f, "{limb:x}")?;
                started = true;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl<const N: usize> core::fmt::UpperHex for Uint<N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = format!("{self:x}").to_uppercase();
        f.write_str(&s)
    }
}

impl<const N: usize> core::fmt::Binary for Uint<N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let bits = self.num_bits().max(1);
        for i in (0..bits).rev() {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

impl<const N: usize> From<u64> for Uint<N> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type U4 = Uint<4>;

    #[test]
    fn hex_round_trip() {
        let a = U4::from_hex("0x30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47");
        assert_eq!(
            format!("{a:x}"),
            "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47"
        );
    }

    #[test]
    fn hex_underscores_and_prefix() {
        assert_eq!(U4::from_hex("0xff_00"), U4::from_u64(0xff00));
        assert_eq!(U4::from_hex("FF"), U4::from_u64(255));
    }

    #[test]
    fn add_sub_round_trip() {
        let a = U4::from_hex("ffffffffffffffffffffffffffffffff");
        let b = U4::from_u64(12345);
        let (s, c) = a.carrying_add(&b);
        assert!(!c);
        let (d, bo) = s.borrowing_sub(&b);
        assert!(!bo);
        assert_eq!(d, a);
    }

    #[test]
    fn carry_propagates() {
        let a = U4::MAX;
        let (s, c) = a.carrying_add(&U4::ONE);
        assert!(c);
        assert_eq!(s, U4::ZERO);
    }

    #[test]
    fn borrow_detects_less_than() {
        let (_, b) = U4::ZERO.borrowing_sub(&U4::ONE);
        assert!(b);
    }

    #[test]
    fn widening_mul_small() {
        let a = U4::from_u64(u64::MAX);
        let (lo, hi) = a.widening_mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(lo, U4::from_u128((u64::MAX as u128) * (u64::MAX as u128)));
        assert_eq!(hi, U4::ZERO);
    }

    #[test]
    fn widening_mul_max() {
        let (lo, hi) = U4::MAX.widening_mul(&U4::MAX);
        // (2^256-1)^2 = 2^512 - 2^257 + 1
        assert_eq!(lo, U4::ONE);
        let (expected_hi, borrow) = U4::MAX.borrowing_sub(&U4::ONE);
        assert!(!borrow);
        assert_eq!(hi, expected_hi);
    }

    #[test]
    fn bit_window_extraction() {
        let a = U4::from_hex("0xdeadbeefcafebabe1122334455667788");
        assert_eq!(a.bits(0, 8), 0x88);
        assert_eq!(a.bits(4, 8), 0x78);
        assert_eq!(a.bits(60, 8), 0xe1); // crosses the first limb boundary
        assert_eq!(a.bits(64, 32), 0xcafebabe);
        assert_eq!(a.bits(250, 16), 0);
    }

    #[test]
    fn bits_width_64() {
        let a = U4::from_hex("0x1122334455667788_99aabbccddeeff00");
        assert_eq!(a.bits(0, 64), 0x99aabbccddeeff00);
        assert_eq!(a.bits(64, 64), 0x1122334455667788);
    }

    #[test]
    fn num_bits_matches() {
        assert_eq!(U4::ZERO.num_bits(), 0);
        assert_eq!(U4::ONE.num_bits(), 1);
        assert_eq!(U4::from_u64(0x80).num_bits(), 8);
        assert_eq!(U4::MAX.num_bits(), 256);
    }

    #[test]
    fn shifts() {
        let a = U4::from_hex("0x8000000000000000_0000000000000001");
        let (d, c) = a.shl1();
        assert!(!c);
        assert_eq!(d, U4::from_hex("0x1_0000000000000000_0000000000000002"));
        assert_eq!(d.shr1(), a);
        assert_eq!(a.shr(64), U4::from_hex("0x8000000000000000"));
        assert_eq!(a.shr(127), U4::ONE);
    }

    #[test]
    fn ordering() {
        let a = U4::from_hex("0x1_0000000000000000");
        let b = U4::from_u64(u64::MAX);
        assert!(b < a);
        assert!(a > b);
        assert_eq!(a.cmp(&a), core::cmp::Ordering::Equal);
    }

    #[test]
    fn u32_limb_round_trip() {
        let a = U4::from_hex("0xdeadbeefcafebabe1122334455667788aabbccdd");
        assert_eq!(U4::from_u32_limbs(&a.to_u32_limbs()), a);
    }

    #[test]
    fn formatting_is_never_empty() {
        assert_eq!(format!("{:x}", U4::ZERO), "0");
        assert_eq!(format!("{}", U4::ZERO), "0x0");
        assert_eq!(format!("{:b}", U4::ZERO), "0");
        assert_eq!(format!("{:b}", U4::from_u64(5)), "101");
    }
}
