//! # distmsm-ff — finite-field substrate
//!
//! Fixed-width big integers and Montgomery-form prime fields for the
//! DistMSM reproduction (ASPLOS '24, "Accelerating Multi-Scalar
//! Multiplication for Efficient Zero Knowledge Proofs with Multi-GPU
//! Systems").
//!
//! The crate provides, from scratch and with no external bignum
//! dependencies:
//!
//! * [`Uint`] — `N × 64`-bit little-endian integers with the carry/window
//!   primitives Pippenger's algorithm needs;
//! * [`Fp`] — a generic Montgomery-form prime field with CIOS and SOS
//!   multipliers (the paper's Algorithm 2), Tonelli–Shanks square roots and
//!   roots of unity for NTTs;
//! * [`Fp2`] — the quadratic extension used by BN254 G2;
//! * [`params`] — the eight field-parameter sets of the paper's four curves
//!   (Table 1), every Montgomery constant derived at compile time;
//! * [`u32limb`] — bit-faithful u32-limb mirrors of the GPU kernels, the
//!   reference the tensor-core model validates against;
//! * [`primality`] — Miller–Rabin validation of all transcribed moduli;
//! * [`mont`] — reusable Montgomery machinery including a runtime
//!   [`mont::MontCtx`] for arbitrary odd moduli.
//!
//! ## Example
//!
//! ```
//! use distmsm_ff::{params::FqBn254, Uint};
//!
//! let a = FqBn254::from_u64(41);
//! let b = a + FqBn254::ONE;
//! assert_eq!(b.to_uint(), Uint::from_u64(42));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fp;
pub mod fp2;
pub mod mont;
pub mod params;
pub mod primality;
pub mod u32limb;
pub mod uint;

pub use fp::{Fp, FpParams};
pub use fp2::Fp2;
pub use uint::Uint;
