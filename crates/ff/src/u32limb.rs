//! 32-bit-limb mirrors of the GPU Montgomery kernels.
//!
//! GPUs operate on 32-bit registers, so the paper's Algorithm 2 (SOS
//! Montgomery multiplication) and the tensor-core transformation of §4.3 are
//! defined over `u32` limbs. This module is the bit-faithful functional
//! mirror of those kernels; the tensor-core path in `distmsm-kernel`
//! validates against it, and it validates against the 64-bit field
//! arithmetic in [`crate::fp`].

use crate::uint::Uint;

/// `-m₀⁻¹ mod 2^32` — the `n′₀` of Algorithm 2.
///
/// # Panics
///
/// Panics if `m0` is even.
pub const fn mont_inv32(m0: u32) -> u32 {
    assert!(m0 & 1 == 1, "Montgomery modulus must be odd");
    let mut inv = 1u32;
    let mut i = 0;
    while i < 5 {
        inv = inv.wrapping_mul(2u32.wrapping_sub(m0.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// Schoolbook product of two `n`-limb u32 integers into `2n` limbs
/// (line 1 of Algorithm 2: `C[0:2N] = A[0:N] × B[0:N]`).
pub fn mul_wide_u32(a: &[u32], b: &[u32], c: &mut [u32]) {
    let n = a.len();
    assert_eq!(b.len(), n, "operand width mismatch");
    assert_eq!(c.len(), 2 * n, "product buffer must be 2N limbs");
    c.fill(0);
    for i in 0..n {
        let mut carry = 0u64;
        for j in 0..n {
            let t = c[i + j] as u64 + a[i] as u64 * b[j] as u64 + carry;
            c[i + j] = t as u32;
            carry = t >> 32;
        }
        c[i + n] = carry as u32;
    }
}

/// Compares `a >= b` for equal-width u32 limb slices.
fn geq(a: &[u32], b: &[u32]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

/// In-place subtraction `a -= b` (caller guarantees `a >= b`).
fn sub_in_place(a: &mut [u32], b: &[u32]) {
    let mut borrow = 0i64;
    for i in 0..a.len() {
        let t = a[i] as i64 - b[i] as i64 - borrow;
        a[i] = t as u32;
        borrow = i64::from(t < 0);
    }
    debug_assert_eq!(borrow, 0);
}

/// SOS Montgomery reduction of a `2n`-limb value, exactly the loop of the
/// paper's Algorithm 2 lines 2–5.
///
/// `c` is the double-width input (consumed); the reduced `n`-limb result is
/// written to `out`.
pub fn mont_reduce_sos_u32(c: &mut [u32], modulus: &[u32], inv32: u32, out: &mut [u32]) {
    let n = modulus.len();
    assert_eq!(c.len(), 2 * n, "input must be 2N limbs");
    assert_eq!(out.len(), n, "output must be N limbs");
    let mut overflow = 0u32; // virtual limb C[2N]
    for i in 0..n {
        // line 3: m[i] = (C[i] * n'0) & 0xffffffff
        let m = c[i].wrapping_mul(inv32);
        // line 4: C += m * modulus << (32 i)
        let mut carry = 0u64;
        for j in 0..n {
            let t = c[i + j] as u64 + m as u64 * modulus[j] as u64 + carry;
            c[i + j] = t as u32;
            carry = t >> 32;
        }
        let mut k = i + n;
        while carry != 0 {
            if k == 2 * n {
                overflow += carry as u32;
                break;
            }
            let t = c[k] as u64 + carry;
            c[k] = t as u32;
            carry = t >> 32;
            k += 1;
        }
    }
    out.copy_from_slice(&c[n..2 * n]);
    // line 5: conditional subtraction
    if overflow != 0 || geq(out, modulus) {
        sub_in_place(out, modulus);
    }
}

/// Full SOS Montgomery multiplication over u32 limbs (Algorithm 2).
pub fn mont_mul_sos_u32(a: &[u32], b: &[u32], modulus: &[u32], inv32: u32, out: &mut [u32]) {
    let n = modulus.len();
    let mut c = vec![0u32; 2 * n];
    mul_wide_u32(a, b, &mut c);
    mont_reduce_sos_u32(&mut c, modulus, inv32, out);
}

/// CIOS Montgomery multiplication over u32 limbs (the alternative schedule
/// discussed in [Koç et al. 1996], included for the microbenchmarks).
pub fn mont_mul_cios_u32(a: &[u32], b: &[u32], modulus: &[u32], inv32: u32, out: &mut [u32]) {
    let n = modulus.len();
    assert_eq!(a.len(), n);
    assert_eq!(b.len(), n);
    assert_eq!(out.len(), n);
    let mut t = vec![0u32; n + 2];
    for &ai in a.iter().take(n) {
        let mut carry = 0u64;
        for j in 0..n {
            let v = t[j] as u64 + ai as u64 * b[j] as u64 + carry;
            t[j] = v as u32;
            carry = v >> 32;
        }
        let v = t[n] as u64 + carry;
        t[n] = v as u32;
        t[n + 1] = (v >> 32) as u32;

        let m = t[0].wrapping_mul(inv32);
        let v = t[0] as u64 + m as u64 * modulus[0] as u64;
        let mut carry = v >> 32;
        for j in 1..n {
            let v = t[j] as u64 + m as u64 * modulus[j] as u64 + carry;
            t[j - 1] = v as u32;
            carry = v >> 32;
        }
        let v = t[n] as u64 + carry;
        t[n - 1] = v as u32;
        t[n] = t[n + 1] + (v >> 32) as u32;
        t[n + 1] = 0;
    }
    out.copy_from_slice(&t[..n]);
    if t[n] != 0 || geq(out, modulus) {
        sub_in_place(out, modulus);
    }
}

/// Helper bundling the modulus limbs and `n′₀` for a field, as the GPU
/// kernels receive them (plain device constants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct U32Field {
    modulus: Vec<u32>,
    inv32: u32,
}

impl U32Field {
    /// Builds the kernel-side view of a field from its modulus limbs.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is even or empty.
    pub fn new(modulus: Vec<u32>) -> Self {
        assert!(!modulus.is_empty());
        let inv32 = mont_inv32(modulus[0]);
        Self { modulus, inv32 }
    }

    /// Builds the view for the field with `N` 64-bit limbs.
    pub fn from_modulus<const N: usize>(m: &Uint<N>) -> Self {
        Self::new(m.to_u32_limbs())
    }

    /// Number of 32-bit limbs per element.
    pub fn limbs(&self) -> usize {
        self.modulus.len()
    }

    /// The modulus limbs.
    pub fn modulus(&self) -> &[u32] {
        &self.modulus
    }

    /// `n′₀` for 32-bit limbs.
    pub fn inv32(&self) -> u32 {
        self.inv32
    }

    /// Montgomery product via SOS.
    pub fn mul_sos(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = vec![0u32; self.limbs()];
        mont_mul_sos_u32(a, b, &self.modulus, self.inv32, &mut out);
        out
    }

    /// Montgomery product via CIOS.
    pub fn mul_cios(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = vec![0u32; self.limbs()];
        mont_mul_cios_u32(a, b, &self.modulus, self.inv32, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::FpParams;
    use crate::params::{Bls12381Fq, Bn254Fq, Mnt4753Fq};
    use crate::Fp;
    use rand::{rngs::StdRng, SeedableRng};

    fn check_against_u64<P: FpParams<N>, const N: usize>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let field = U32Field::from_modulus(&P::MODULUS);
        for _ in 0..20 {
            let a = Fp::<P, N>::random(&mut rng);
            let b = Fp::<P, N>::random(&mut rng);
            let expect = (a * b).mont_repr().to_u32_limbs();
            let a32 = a.mont_repr().to_u32_limbs();
            let b32 = b.mont_repr().to_u32_limbs();
            assert_eq!(field.mul_sos(&a32, &b32), expect, "SOS mismatch in {}", P::NAME);
            assert_eq!(field.mul_cios(&a32, &b32), expect, "CIOS mismatch in {}", P::NAME);
        }
    }

    #[test]
    fn matches_u64_bn254() {
        check_against_u64::<Bn254Fq, 4>(10);
    }

    #[test]
    fn matches_u64_bls12381() {
        check_against_u64::<Bls12381Fq, 6>(11);
    }

    #[test]
    fn matches_u64_mnt4753() {
        check_against_u64::<Mnt4753Fq, 12>(12);
    }

    #[test]
    fn inv32_is_inverse() {
        let m0 = Bn254Fq::MODULUS.to_u32_limbs()[0];
        assert_eq!(m0.wrapping_mul(mont_inv32(m0).wrapping_neg()), 1);
    }

    #[test]
    fn mul_wide_identity() {
        let a = [0xffffffffu32, 0xffffffff];
        let b = [1u32, 0];
        let mut c = [0u32; 4];
        mul_wide_u32(&a, &b, &mut c);
        assert_eq!(c, [0xffffffff, 0xffffffff, 0, 0]);
    }
}
