//! Property-based tests for the field and big-integer substrate.

use distmsm_ff::mont::{add_mod, sub_mod, MontCtx};
use distmsm_ff::params::{Bn254Fq, FqBn254, FqMnt4753, FrBls12377};
use distmsm_ff::u32limb::U32Field;
use distmsm_ff::{FpParams, Uint};
use proptest::prelude::*;

fn arb_uint4() -> impl Strategy<Value = Uint<4>> {
    prop::array::uniform4(any::<u64>()).prop_map(Uint)
}

fn arb_fq() -> impl Strategy<Value = FqBn254> {
    arb_uint4().prop_map(|u| {
        // reduce into range by masking the top bits then conditional sub
        let mut v = u;
        v.0[3] &= (1 << 62) - 1;
        FqBn254::from_uint(&v)
    })
}

fn arb_fr377() -> impl Strategy<Value = FrBls12377> {
    arb_uint4().prop_map(|u| {
        let mut v = u;
        v.0[3] &= (1 << 61) - 1;
        FrBls12377::from_uint(&v)
    })
}

fn arb_fq753() -> impl Strategy<Value = FqMnt4753> {
    prop::collection::vec(any::<u64>(), 12).prop_map(|v| {
        let mut limbs = [0u64; 12];
        limbs.copy_from_slice(&v);
        limbs[11] &= (1 << 48) - 1;
        FqMnt4753::from_uint(&Uint(limbs))
    })
}

proptest! {
    #[test]
    fn uint_add_commutes(a in arb_uint4(), b in arb_uint4()) {
        prop_assert_eq!(a.carrying_add(&b), b.carrying_add(&a));
    }

    #[test]
    fn uint_sub_inverts_add(a in arb_uint4(), b in arb_uint4()) {
        let (s, _) = a.carrying_add(&b);
        let (d, _) = s.borrowing_sub(&b);
        prop_assert_eq!(d, a);
    }

    #[test]
    fn uint_mul_commutes(a in arb_uint4(), b in arb_uint4()) {
        prop_assert_eq!(a.widening_mul(&b), b.widening_mul(&a));
    }

    #[test]
    fn uint_bits_reassemble(a in arb_uint4(), w in 1u32..=16) {
        // Reading the whole integer window-by-window loses nothing.
        let mut acc = Uint::<4>::ZERO;
        let mut i = 0;
        while i < 256 {
            let width = w.min(256 - i);
            let chunk = a.bits(i, width);
            for b in 0..width {
                if (chunk >> b) & 1 == 1 {
                    let limb = ((i + b) / 64) as usize;
                    acc.0[limb] |= 1 << ((i + b) % 64);
                }
            }
            i += width;
        }
        prop_assert_eq!(acc, a);
    }

    #[test]
    fn field_add_assoc(a in arb_fq(), b in arb_fq(), c in arb_fq()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn field_mul_assoc(a in arb_fq(), b in arb_fq(), c in arb_fq()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn field_distributive(a in arb_fq(), b in arb_fq(), c in arb_fq()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn field_inverse(a in arb_fq()) {
        if !a.is_zero() {
            prop_assert_eq!(a.inverse().unwrap() * a, FqBn254::ONE);
        }
    }

    #[test]
    fn field_sqrt_of_square(a in arb_fq()) {
        let sq = a.square();
        let r = sq.sqrt().expect("squares have roots");
        prop_assert!(r == a || r == -a);
    }

    #[test]
    fn sos_equals_cios(a in arb_fq(), b in arb_fq()) {
        prop_assert_eq!(a.mul_sos(&b), a * b);
    }

    #[test]
    fn sos_equals_cios_753(a in arb_fq753(), b in arb_fq753()) {
        prop_assert_eq!(a.mul_sos(&b), a * b);
    }

    #[test]
    fn fr377_roundtrip(a in arb_fr377()) {
        prop_assert_eq!(FrBls12377::from_uint(&a.to_uint()), a);
    }

    #[test]
    fn u32_kernel_matches_u64(a in arb_fq(), b in arb_fq()) {
        let field = U32Field::from_modulus(&Bn254Fq::MODULUS);
        let got = field.mul_sos(&a.mont_repr().to_u32_limbs(), &b.mont_repr().to_u32_limbs());
        prop_assert_eq!(got, (a * b).mont_repr().to_u32_limbs());
    }

    #[test]
    fn mod_add_sub_roundtrip(a in arb_fq(), b in arb_fq()) {
        let m = &Bn254Fq::MODULUS;
        let s = add_mod(a.mont_repr(), b.mont_repr(), m);
        let d = sub_mod(&s, b.mont_repr(), m);
        prop_assert_eq!(d, *a.mont_repr());
    }

    #[test]
    fn mont_ctx_matches_fp(a in arb_fq(), b in arb_fq()) {
        let ctx = MontCtx::new(Bn254Fq::MODULUS);
        let got = ctx.mul(a.mont_repr(), b.mont_repr());
        let expect = a * b;
        prop_assert_eq!(&got, expect.mont_repr());
    }

    #[test]
    fn pow_adds_exponents(a in arb_fq(), e1 in 0u64..1000, e2 in 0u64..1000) {
        prop_assert_eq!(a.pow(&[e1]) * a.pow(&[e2]), a.pow(&[e1 + e2]));
    }
}
