//! The multi-tenant prover front-end: a deterministic discrete-event
//! loop on the simulated clock that admits, queues, dispatches, retries
//! and sheds MSM jobs against a health-gated device pool.
//!
//! Everything is simulated time: arrivals come stamped, executions take
//! the engine's modelled duration, and the event heap orders
//! (time, sequence) pairs — two runs with the same inputs produce
//! byte-identical event streams.

use std::cmp::Reverse;
use std::collections::{BTreeMap, VecDeque};

use distmsm::engine::{DistMsm, MsmError, MsmReport};
use distmsm::CurveDesc;
use distmsm_ec::{Curve, XyzzPoint};
use distmsm_gpu_sim::MultiGpuSystem;

use distmsm_journal::{DurableState, JournalError};

use crate::admission::{AdmissionError, ShedPolicy, TenantConfig};
use crate::breaker::{BreakerConfig, CircuitBreaker, PoolTransition};
use crate::chaos::ChaosSchedule;
use crate::job::{JobClass, JobSpec, ShedReason};
use crate::pool::DevicePool;
use crate::report::{ServiceReport, TenantStats};
use crate::wal::{
    self, AdmissionOutcome, JobPhase, RecoveryInfo, ServiceRecord, ServiceState, ServiceWal,
};

/// Configuration of the service front-end.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Devices in the shared pool.
    pub n_devices: usize,
    /// Partition size for a normal dispatch.
    pub gpus_per_job: usize,
    /// Partition size once pressure crosses
    /// [`ShedPolicy::degrade_pressure`] — smaller partitions mean more
    /// jobs run concurrently: latency traded for survival.
    pub degraded_gpus_per_job: usize,
    /// The tenants sharing the pool.
    pub tenants: Vec<TenantConfig>,
    /// The load-shed policy.
    pub shed: ShedPolicy,
    /// The per-device circuit-breaker tunables.
    pub breaker: BreakerConfig,
    /// Service-level execution attempts per job (1 = no retry).
    pub max_attempts: u32,
    /// Pippenger window size every dispatch uses.
    pub window_size: u32,
    /// Straggler SLA forwarded to the engine (`None` disables).
    pub straggler_sla: Option<f64>,
    /// Install a journal snapshot every this many records (0 disables
    /// snapshotting; recovery then replays the whole journal). The
    /// journal itself is always on.
    pub snapshot_every: u64,
    /// Validate MSM inputs at admission (on-curve, prime-subgroup,
    /// canonical scalars) and reject garbage with
    /// [`AdmissionError::MalformedInput`] instead of feeding it to the
    /// engine. On cofactor-1 curves the subgroup check is free
    /// (on-curve already implies it), so this stays on by default.
    pub validate_inputs: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            n_devices: 16,
            gpus_per_job: 4,
            degraded_gpus_per_job: 1,
            tenants: vec![
                TenantConfig::new("alice").with_weight(2.0),
                TenantConfig::new("bob"),
            ],
            shed: ShedPolicy::default(),
            breaker: BreakerConfig::default(),
            max_attempts: 3,
            window_size: 8,
            straggler_sla: Some(3.0),
            snapshot_every: 0,
            validate_inputs: true,
        }
    }
}

/// What happened, when, to which job — the service's replayable event
/// stream. Every invariant the soak and the `SVC-00x` analyzer rules
/// check is a property of this stream.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceEventKind {
    /// A job arrived at the door.
    Arrival {
        /// Its service class.
        class: JobClass,
    },
    /// The job passed admission and joined its tenant queue.
    Admitted {
        /// Queue length after the push.
        queue_len: usize,
    },
    /// The job was refused at the door.
    Rejected {
        /// Why.
        error: AdmissionError,
    },
    /// The job started executing on a partition.
    Dispatched {
        /// Global device ids of the partition, ascending.
        devices: Vec<usize>,
        /// Service-level attempt (0 = first).
        attempt: u32,
        /// True when the pressure-degraded partition size was used.
        degraded: bool,
    },
    /// A failed attempt re-joined the queue for another try.
    Requeued {
        /// The attempt the job will run next.
        attempt: u32,
    },
    /// The job finished with a verified result.
    Completed {
        /// Whether it met its deadline (true when it had none).
        deadline_met: bool,
        /// Arrival-to-completion time, seconds.
        sojourn_s: f64,
        /// Attempts consumed (1 = no retry needed).
        attempts: u32,
    },
    /// The job exhausted its attempts.
    Failed {
        /// Display form of the final [`MsmError`].
        error: String,
    },
    /// The admitted job was dropped by the shed policy.
    Shed {
        /// Why.
        reason: ShedReason,
    },
    /// A device breaker changed state.
    Breaker {
        /// The transition.
        transition: PoolTransition,
    },
    /// The service restarted from durable state (journal + snapshot).
    /// Emitted once, first thing after a [`ProverService::restore`].
    Recovered {
        /// Epoch of the snapshot recovery started from (0 = none).
        snapshot_epoch: u64,
        /// Journal records replayed on top of the snapshot.
        replayed: u64,
        /// Queued or in-flight jobs put back on a queue.
        requeued: u64,
        /// Jobs whose arrival was not yet durable, re-seeded.
        rearrived: u64,
    },
}

/// One timestamped service event.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceEvent {
    /// Simulated time.
    pub t_s: f64,
    /// Job the event concerns (`None` for pool-level events).
    pub job: Option<u64>,
    /// Tenant index (`None` for pool-level events).
    pub tenant: Option<usize>,
    /// What happened.
    pub kind: ServiceEventKind,
}

/// A completed job's verifiable outcome, kept separately from the
/// event stream so soaks can check bit-exactness against a reference.
#[derive(Clone, Debug)]
pub struct CompletedJob<C: Curve> {
    /// Job id.
    pub id: u64,
    /// Tenant index.
    pub tenant: usize,
    /// The MSM value the service returned.
    pub result: XyzzPoint<C>,
    /// Attempts consumed.
    pub attempts: u32,
    /// True when the completing partition contained a device that had
    /// previously been quarantined (breaker tripped at least once) —
    /// the re-admission path the cross-curve proptest pins.
    pub used_readmitted_device: bool,
}

/// Everything one [`ProverService::run`] produces.
#[derive(Clone, Debug)]
pub struct ServiceOutcome<C: Curve> {
    /// Aggregated per-tenant and pool statistics.
    pub report: ServiceReport,
    /// The full replayable event stream, in emission order.
    pub events: Vec<ServiceEvent>,
    /// Verified results of every completed job.
    pub completed: Vec<CompletedJob<C>>,
}

/// A queued job lifted out of one service's queue for absorption by
/// another — the fleet work-stealing carrier. The attempt counter rides
/// along so retry budgets are preserved across pods; the queue epoch is
/// restarted by the absorbing pod.
#[derive(Clone, Debug)]
pub struct StolenJob<C: Curve> {
    /// The job.
    pub spec: JobSpec<C>,
    /// Next execution attempt (preserved across the steal).
    pub attempt: u32,
    /// The effective EDF deadline it was stolen under (explicit
    /// deadline, else queue-epoch start plus class bound).
    pub effective_deadline_s: f64,
}

/// A job waiting in its tenant queue.
#[derive(Clone, Debug)]
struct QueuedJob<C: Curve> {
    spec: JobSpec<C>,
    /// Next execution attempt.
    attempt: u32,
    /// When this queue epoch started (admission or requeue).
    enqueued_s: f64,
    /// When this epoch's starvation bound expires.
    expire_s: f64,
}

/// A job currently executing.
#[derive(Debug)]
struct InFlight<C: Curve> {
    spec: JobSpec<C>,
    attempt: u32,
    devices: Vec<usize>,
    outcome: Result<MsmReport<C>, MsmError>,
    used_readmitted_device: bool,
}

/// Heap entry: the service's future work.
#[derive(Clone, Debug, PartialEq)]
enum PendingKind {
    /// Index into the sorted arrival vector.
    Arrival(usize),
    /// An in-flight job finishes.
    Completion(u64),
    /// A queued job's starvation bound may have expired.
    Expire(u64),
    /// A breaker probation window may have elapsed.
    Poll,
}

#[derive(Clone, Debug, PartialEq)]
struct Pending {
    t_s: f64,
    seq: u64,
    kind: PendingKind,
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t_s
            .total_cmp(&other.t_s)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-tenant accumulation while the run executes.
#[derive(Clone, Debug, Default)]
struct TenantAccum {
    arrivals: u64,
    admitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    shed: u64,
    deadline_missed: u64,
    sojourns_s: Vec<f64>,
}

/// The multi-tenant prover front-end.
pub struct ProverService<C: Curve> {
    config: ServiceConfig,
    pool: DevicePool,
    queues: Vec<VecDeque<QueuedJob<C>>>,
    in_flight: BTreeMap<u64, InFlight<C>>,
    heap: std::collections::BinaryHeap<Reverse<Pending>>,
    seq: u64,
    clock_s: f64,
    events: Vec<ServiceEvent>,
    completed: Vec<CompletedJob<C>>,
    accum: Vec<TenantAccum>,
    /// Round-robin placement cursor: the device id the next dispatch
    /// starts filling from, so traffic spreads across the pool instead
    /// of pinning the lowest ids.
    rr_cursor: usize,
    curve: CurveDesc,
    /// Fault-free engine on a normal-size partition, used to price
    /// deadline feasibility at admission.
    admission_engine: DistMsm,
    /// The sorted arrival trace [`Self::begin`] seeded, indexed by
    /// `PendingKind::Arrival`.
    arrivals: Vec<JobSpec<C>>,
    /// The always-on write-ahead journal: every state change is
    /// appended in the handler that makes it, so a crash (journal
    /// truncation) always preserves a consistent history prefix.
    wal: ServiceWal,
    /// `Some(t)` while the pod believes it is partitioned from its
    /// coordinator (heartbeat responses stopped at `t`). In degraded
    /// mode the pod keeps executing admitted work — completions are
    /// journaled locally and reconciled at rejoin — but sheds new
    /// arrivals with [`AdmissionError::PodPartitioned`].
    partitioned_since_s: Option<f64>,
}

impl<C: Curve> ProverService<C> {
    /// A service over a fresh pool.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is degenerate (no tenants, no
    /// devices, zero partition sizes or attempts).
    pub fn new(config: ServiceConfig) -> Self {
        assert!(!config.tenants.is_empty(), "service needs at least one tenant");
        assert!(config.n_devices > 0, "service needs at least one device");
        assert!(
            config.gpus_per_job > 0 && config.degraded_gpus_per_job > 0,
            "partition sizes must be positive"
        );
        assert!(config.max_attempts > 0, "jobs need at least one attempt");
        let pool = DevicePool::new(config.n_devices, config.breaker);
        let queues = config.tenants.iter().map(|_| VecDeque::new()).collect();
        let accum = config.tenants.iter().map(|_| TenantAccum::default()).collect();
        let k = config.gpus_per_job.min(config.n_devices);
        let admission_engine = DistMsm::with_config(
            MultiGpuSystem::dgx_a100(k),
            Self::engine_config(&config, distmsm_gpu_sim::FaultPlan::none())
                .expect("service engine config is valid"),
        );
        let wal = ServiceWal::new(
            config.tenants.len(),
            config.n_devices,
            config.breaker,
            config.snapshot_every,
        );
        Self {
            config,
            pool,
            queues,
            in_flight: BTreeMap::new(),
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
            clock_s: 0.0,
            events: Vec::new(),
            completed: Vec::new(),
            accum,
            rr_cursor: 0,
            curve: CurveDesc::of::<C>(),
            admission_engine,
            arrivals: Vec::new(),
            wal,
            partitioned_since_s: None,
        }
    }

    fn engine_config(
        config: &ServiceConfig,
        plan: distmsm_gpu_sim::FaultPlan,
    ) -> Result<distmsm::DistMsmConfig, distmsm::ConfigError> {
        let mut b = distmsm::DistMsmConfig::builder()
            .window_size(config.window_size)
            .fault_plan(plan);
        b = match config.straggler_sla {
            Some(sla) => b.straggler_sla(sla),
            None => b.no_straggler_sla(),
        };
        b.build()
    }

    /// The pool (breaker states, timeline) as of now.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// Rebuilds a service from durable state after a crash: newest
    /// intact snapshot + bounded journal replay, then re-queue what was
    /// live and re-seed what was never durably admitted.
    ///
    /// `jobs` is the full arrival trace (plus any fleet-absorbed specs)
    /// — the journal stores job *state*, not instances, so every
    /// non-terminal journaled job must have its spec here. `config`
    /// must match the crashed service's (tenant table and device count
    /// are validated against the snapshot shape).
    ///
    /// Semantics, checked end to end by the crash soak:
    ///
    /// * Jobs with a durable terminal record (completed, failed, shed,
    ///   rejected, stolen-away) are **never** resurrected.
    /// * Queued jobs re-enqueue with their original queue-epoch start,
    ///   so the starvation bound keeps counting across the crash.
    /// * In-flight jobs lost their execution: they re-join the queue at
    ///   the same attempt under a fresh epoch, with a `Requeued` event.
    /// * Jobs with no durable admission record re-arrive and have
    ///   admission decided afresh.
    /// * Breakers restore from transition records; completed results
    ///   decode back bit-exactly from their canonical bytes.
    ///
    /// # Errors
    ///
    /// Any corrupt durable state — CRC mismatch, missing/duplicate
    /// epoch, stale snapshot, undecodable payload, or a live job whose
    /// spec is missing from `jobs` — is a typed [`JournalError`]; a
    /// torn tail alone is tolerated and dropped.
    ///
    /// # Panics
    ///
    /// Panics when `config` itself is degenerate, exactly as
    /// [`Self::new`] does.
    pub fn restore(
        config: ServiceConfig,
        jobs: &[JobSpec<C>],
        durable: &DurableState,
    ) -> Result<(Self, RecoveryInfo), JournalError> {
        let rec = wal::recover_state(
            durable,
            config.tenants.len(),
            config.n_devices,
            &config.breaker,
        )?;
        let snapshot_every = config.snapshot_every;
        let breaker_cfg = config.breaker;
        let mut svc = Self::new(config);
        let state = rec.state;
        svc.clock_s = state.clock_s;
        svc.pool = DevicePool::restore(
            breaker_cfg,
            state
                .breakers
                .iter()
                .map(|b| CircuitBreaker::restore(b.state, b.open_spells, b.open_until_s))
                .collect(),
        );
        for (a, t) in svc.accum.iter_mut().zip(&state.tenants) {
            a.arrivals = t.arrivals;
            a.admitted = t.admitted;
            a.rejected = t.rejected;
            a.completed = t.completed;
            a.failed = t.failed;
            a.shed = t.shed;
            a.deadline_missed = t.deadline_missed;
            a.sojourns_s = t.sojourns_s.clone();
        }
        for e in &state.completed {
            let affine = distmsm_ec::serialize::point_from_uncompressed::<C>(&e.result)
                .ok_or_else(|| JournalError::BadPayload {
                    epoch: state.last_epoch,
                    detail: format!("completed job {} carries an undecodable result point", e.id),
                })?;
            svc.completed.push(CompletedJob {
                id: e.id,
                tenant: e.tenant,
                result: affine.to_xyzz(),
                attempts: e.attempts,
                used_readmitted_device: e.used_readmitted,
            });
        }

        // Continue the journal from the reopened (torn-tail-free) log.
        svc.wal = ServiceWal::resume(
            durable.reopen()?,
            state.clone(),
            breaker_cfg,
            snapshot_every,
        );

        let spec_by_id: BTreeMap<u64, &JobSpec<C>> = jobs.iter().map(|j| (j.id, j)).collect();
        let live_spec = |id: u64| {
            spec_by_id.get(&id).copied().ok_or_else(|| JournalError::BadPayload {
                epoch: state.last_epoch,
                detail: format!("journaled job {id} is live at recovery but has no spec"),
            })
        };
        let mut requeued = 0u64;
        for (&id, entry) in &state.jobs {
            match entry.phase {
                JobPhase::Queued { attempt, since_s } => {
                    let spec = live_spec(id)?;
                    let bound = svc.config.shed.class_bound(spec.class);
                    // The original queue epoch survives the crash, so
                    // the starvation bound keeps counting.
                    let expire_s = since_s + bound;
                    svc.queues[entry.tenant].push_back(QueuedJob {
                        spec: spec.clone(),
                        attempt,
                        enqueued_s: since_s,
                        expire_s,
                    });
                    svc.push_pending(expire_s.max(svc.clock_s), PendingKind::Expire(id));
                    requeued += 1;
                }
                JobPhase::InFlight { attempt } => {
                    let spec = live_spec(id)?;
                    // The execution died with the pod: back to the
                    // queue at the same attempt, fresh epoch.
                    let bound = svc.config.shed.class_bound(spec.class);
                    let expire_s = svc.clock_s + bound;
                    svc.emit_journal(
                        Some(id),
                        Some(entry.tenant),
                        ServiceEventKind::Requeued { attempt },
                    );
                    svc.queues[entry.tenant].push_back(QueuedJob {
                        spec: spec.clone(),
                        attempt,
                        enqueued_s: svc.clock_s,
                        expire_s,
                    });
                    svc.push_pending(expire_s, PendingKind::Expire(id));
                    requeued += 1;
                }
                JobPhase::Done
                | JobPhase::Rejected
                | JobPhase::Failed
                | JobPhase::Shed
                | JobPhase::StolenAway { .. } => {}
            }
        }

        // Jobs the journal never saw re-arrive and re-run admission.
        let rearrive: Vec<JobSpec<C>> = jobs
            .iter()
            .filter(|j| !state.jobs.contains_key(&j.id))
            .cloned()
            .collect();
        let rearrived = rearrive.len() as u64;
        svc.begin(rearrive);

        svc.emit_journal(
            None,
            None,
            ServiceEventKind::Recovered {
                snapshot_epoch: rec.snapshot_epoch,
                replayed: rec.replayed_records,
                requeued,
                rearrived,
            },
        );
        svc.instant(
            "recovery:restored",
            vec![
                ("snapshot_epoch".into(), rec.snapshot_epoch.to_string()),
                ("replayed".into(), rec.replayed_records.to_string()),
                ("requeued".into(), requeued.to_string()),
                ("rearrived".into(), rearrived.to_string()),
            ],
        );

        let info = RecoveryInfo {
            snapshot_epoch: rec.snapshot_epoch,
            replayed_records: rec.replayed_records,
            torn_tail_bytes: rec.torn_tail_bytes,
            requeued_jobs: requeued,
            rearrived_jobs: rearrived,
            recovery_cost_s: wal::RECOVERY_BASE_S
                + rec.snapshot_payload_bytes as f64 * wal::SNAPSHOT_BYTE_S
                + rec.replayed_records as f64 * wal::REPLAY_RECORD_S,
            scratch_cost_s: state.clock_s,
        };
        Ok((svc, info))
    }

    fn push_pending(&mut self, t_s: f64, kind: PendingKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Pending { t_s, seq, kind }));
    }

    fn emit(&mut self, job: Option<u64>, tenant: Option<usize>, kind: ServiceEventKind) {
        self.events.push(ServiceEvent { t_s: self.clock_s, job, tenant, kind });
    }

    /// Emits an event *and* journals it as a [`ServiceRecord::Event`] —
    /// the path for every event that is itself the atomic unit of a
    /// state change (dispatch, requeue, failure, shed, breaker,
    /// recovery marker). Admission and completion instead ride their
    /// compound records, journaled at their call sites.
    fn emit_journal(&mut self, job: Option<u64>, tenant: Option<usize>, kind: ServiceEventKind) {
        let ev = ServiceEvent { t_s: self.clock_s, job, tenant, kind };
        self.wal.append(ev.t_s, &ServiceRecord::Event(ev.clone()));
        self.events.push(ev);
    }

    /// The durable journal + snapshot bytes — what a simulated crash
    /// preserves and [`Self::restore`] rebuilds from.
    pub fn durable(&self) -> &DurableState {
        self.wal.durable()
    }

    /// The WAL's shadow fold of everything journaled so far (the
    /// `CKPT-001` rule compares this against a from-scratch replay).
    pub fn wal_state(&self) -> &ServiceState {
        self.wal.state()
    }

    /// Emits a telemetry instant on the `service` lane (no-op unless the
    /// `telemetry` feature is on and a session is active).
    #[allow(unused_variables)]
    fn instant(&self, name: &str, args: Vec<(String, String)>) {
        #[cfg(feature = "telemetry")]
        {
            if distmsm_telemetry::session::active() {
                distmsm_telemetry::session::push_instant(distmsm_telemetry::Instant {
                    name: name.to_string(),
                    cat: "service".to_string(),
                    lane: distmsm_telemetry::Lane::Service,
                    t_s: self.clock_s,
                    args,
                });
            }
        }
    }

    fn record_transitions(&mut self, transitions: Vec<PoolTransition>) {
        for t in transitions {
            self.instant(
                &format!("breaker:{}", t.to.label()),
                vec![
                    ("device".into(), t.device.to_string()),
                    ("from".into(), t.from.label().into()),
                    ("cause".into(), t.cause.into()),
                ],
            );
            self.emit_journal(None, None, ServiceEventKind::Breaker { transition: t });
        }
    }

    fn total_queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Wakes the loop when an open breaker's probation elapses — but
    /// only while jobs are actually waiting. With empty queues there is
    /// nothing a probation end could unblock (later arrivals poll the
    /// pool themselves), and an unconditional wake would flip an idle
    /// quarantined device to half-open right at the end of a run.
    fn wake_at_probation_end(&mut self) {
        if self.total_queued() == 0 {
            return;
        }
        if let Some(end) = self.pool.next_probation_end() {
            if end > self.clock_s {
                self.push_pending(end, PendingKind::Poll);
            }
        }
    }

    /// Total queued jobs over total queue capacity, in `[0, 1]`.
    fn pressure(&self) -> f64 {
        let queued = self.total_queued();
        let capacity: usize = self.config.tenants.iter().map(|t| t.queue_capacity).sum();
        if capacity == 0 {
            1.0
        } else {
            (queued as f64 / capacity as f64).min(1.0)
        }
    }

    /// Runs the service to completion over a set of stamped jobs under a
    /// chaos schedule: every event is processed in simulated-time order
    /// until nothing is pending, so every admitted job has terminated
    /// when this returns.
    ///
    /// # Panics
    ///
    /// Panics when a job names a tenant outside the configured table.
    pub fn run(&mut self, jobs: Vec<JobSpec<C>>, chaos: &ChaosSchedule) -> ServiceOutcome<C> {
        self.begin(jobs);
        while self.step(chaos) {}
        self.finish()
    }

    /// Seeds the arrival trace without running: sorts and validates the
    /// jobs and schedules their arrival events. The stepping half of
    /// [`Self::run`], exposed so a fleet layer can interleave several
    /// pods' event loops on one global clock.
    ///
    /// # Panics
    ///
    /// Panics when a job names a tenant outside the configured table.
    pub fn begin(&mut self, mut jobs: Vec<JobSpec<C>>) {
        jobs.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
        for job in &jobs {
            assert!(
                job.tenant < self.config.tenants.len(),
                "job {} names unknown tenant {}",
                job.id,
                job.tenant
            );
        }
        let base = self.arrivals.len();
        for (i, job) in jobs.iter().enumerate() {
            self.push_pending(job.arrival_s, PendingKind::Arrival(base + i));
        }
        self.arrivals.extend(jobs);
    }

    /// Simulated time of the next pending event, if any — the fleet
    /// interleaver's merge key.
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(p)| p.t_s)
    }

    /// The service's current simulated clock.
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Processes exactly one pending event (and any dispatches it
    /// unblocks). Returns `false` when nothing is pending — the pod is
    /// idle until new work is seeded or absorbed.
    pub fn step(&mut self, chaos: &ChaosSchedule) -> bool {
        let Some(Reverse(p)) = self.heap.pop() else { return false };
        self.clock_s = self.clock_s.max(p.t_s);
        match p.kind {
            PendingKind::Arrival(i) => {
                let job = self.arrivals[i].clone();
                self.on_arrival(job);
            }
            PendingKind::Completion(id) => self.on_completion(id),
            PendingKind::Expire(id) => self.on_expire(id),
            PendingKind::Poll => {}
        }
        self.try_dispatch(chaos);
        true
    }

    /// Builds the outcome after stepping has drained: report plus the
    /// event stream and completed-job results accumulated so far.
    pub fn finish(&mut self) -> ServiceOutcome<C> {
        ServiceOutcome {
            report: self.build_report(),
            events: std::mem::take(&mut self.events),
            completed: std::mem::take(&mut self.completed),
        }
    }

    /// Takes the completions accumulated since the last drain — the
    /// fleet coordinator's per-step checkpoint, where each result meets
    /// its 2G2T outsourcing check before being accepted. A service run
    /// standalone never drains, so [`Self::finish`] still returns the
    /// full completion list.
    pub fn drain_completed(&mut self) -> Vec<CompletedJob<C>> {
        std::mem::take(&mut self.completed)
    }

    /// Jobs currently waiting across all tenant queues.
    pub fn queued_jobs(&self) -> usize {
        self.total_queued()
    }

    /// True when a dispatch right now could be placed on at least one
    /// idle, non-open device — the fleet's "has spare capacity" probe.
    pub fn has_free_capacity(&self) -> bool {
        let (closed, half_open) = self.pool.allocatable(self.clock_s);
        !closed.is_empty() || !half_open.is_empty()
    }

    /// Fault-free estimated execution seconds for an `n`-point job on a
    /// normal-size partition — the price the fleet's placement and
    /// admission decisions are made against.
    pub fn estimate_job_seconds(&self, n: usize) -> f64 {
        self.admission_engine.estimate_seconds(n, &self.curve)
    }

    /// Effective EDF deadline of the job [`Self::steal_earliest`] would
    /// take, without removing it.
    pub fn earliest_effective_deadline(&self) -> Option<f64> {
        self.find_edf().map(|(eff, _, _)| eff)
    }

    /// Removes and returns the queued job with the globally earliest
    /// effective deadline — the victim half of fleet work stealing.
    /// The job's attempt counter rides along; its queue epoch (and
    /// starvation bound) restarts at the absorbing pod. The stale
    /// expire event left in this service's heap is harmless: expiry
    /// checks queue membership.
    pub fn steal_earliest(&mut self) -> Option<StolenJob<C>> {
        let (eff, tenant, pos) = self.find_edf()?;
        let q = self.queues[tenant].remove(pos)?;
        // Journal the steal so recovery never resurrects a job another
        // pod now owns. No service event is emitted for queue surgery.
        self.wal.append(
            self.clock_s,
            &ServiceRecord::StolenOut { t_s: self.clock_s, id: q.spec.id, attempt: q.attempt },
        );
        Some(StolenJob { spec: q.spec, attempt: q.attempt, effective_deadline_s: eff })
    }

    /// Absorbs a job stolen from another pod: enqueues it under a fresh
    /// queue epoch at `now_s` and immediately tries to dispatch. The
    /// thief's clock advances to the steal time so the dispatch cannot
    /// be stamped in its past.
    ///
    /// # Panics
    ///
    /// Panics when the job names a tenant outside this pod's table —
    /// fleet pods must share one tenant table.
    pub fn absorb_stolen(&mut self, stolen: StolenJob<C>, now_s: f64, chaos: &ChaosSchedule) {
        let tenant = stolen.spec.tenant;
        assert!(
            tenant < self.config.tenants.len(),
            "stolen job {} names unknown tenant {tenant}",
            stolen.spec.id
        );
        self.clock_s = self.clock_s.max(now_s);
        let bound = self.config.shed.class_bound(stolen.spec.class);
        let expire_s = self.clock_s + bound;
        let id = stolen.spec.id;
        self.wal.append(
            self.clock_s,
            &ServiceRecord::Absorbed {
                t_s: self.clock_s,
                id,
                tenant,
                attempt: stolen.attempt,
            },
        );
        self.queues[tenant].push_back(QueuedJob {
            spec: stolen.spec,
            attempt: stolen.attempt,
            enqueued_s: self.clock_s,
            expire_s,
        });
        self.push_pending(expire_s, PendingKind::Expire(id));
        self.try_dispatch(chaos);
    }

    /// Admission-time input validation (when enabled): the first
    /// violation in slice order, or `None` for clean inputs.
    fn input_violation(&self, spec: &JobSpec<C>) -> Option<distmsm_ec::InputViolation> {
        if !self.config.validate_inputs {
            return None;
        }
        distmsm_ec::validate_msm_inputs::<C>(&spec.instance.points, &spec.instance.scalars).err()
    }

    /// Marks the pod partitioned from its coordinator as of `now_s`
    /// (idempotent: the first degradation instant is kept). Called by
    /// the membership layer when a heartbeat round-trip fails.
    pub fn set_partitioned(&mut self, now_s: f64) {
        if self.partitioned_since_s.is_none() {
            self.clock_s = self.clock_s.max(now_s);
            self.partitioned_since_s = Some(now_s);
            self.instant("partition:degraded", vec![("since_s".into(), format!("{now_s:.3}"))]);
        }
    }

    /// Clears degraded mode after the pod re-acquires its lease.
    pub fn clear_partitioned(&mut self, now_s: f64) {
        if self.partitioned_since_s.take().is_some() {
            self.clock_s = self.clock_s.max(now_s);
            self.instant("partition:healed", vec![("at_s".into(), format!("{now_s:.3}"))]);
        }
    }

    /// Is the pod currently in degraded (partitioned) mode?
    pub fn is_partitioned(&self) -> bool {
        self.partitioned_since_s.is_some()
    }

    /// Removes a *queued* job by id — the coordinator fenced this pod
    /// and re-placed the job on a healthy pod, so the local copy is
    /// stale. The removal is journaled as a [`ServiceRecord::StolenOut`]
    /// tombstone (identical semantics: another pod now owns the job),
    /// so recovery never resurrects it. Returns `false` when the job is
    /// not queued here — an in-flight stale copy cannot be revoked; its
    /// completion is discarded at hand-off by epoch fencing instead.
    pub fn fence_discard(&mut self, id: u64, now_s: f64) -> bool {
        self.clock_s = self.clock_s.max(now_s);
        for queue in self.queues.iter_mut() {
            if let Some(pos) = queue.iter().position(|q| q.spec.id == id) {
                let q = queue.remove(pos).expect("position is in range");
                self.wal.append(
                    self.clock_s,
                    &ServiceRecord::StolenOut { t_s: self.clock_s, id, attempt: q.attempt },
                );
                return true;
            }
        }
        false
    }

    fn on_arrival(&mut self, spec: JobSpec<C>) {
        let tenant = spec.tenant;
        self.accum[tenant].arrivals += 1;
        self.emit(Some(spec.id), Some(tenant), ServiceEventKind::Arrival { class: spec.class });

        let pressure = self.pressure();
        let tcfg = &self.config.tenants[tenant];
        let error = if let Some(since_s) = self.partitioned_since_s {
            // Degraded mode: any admission now could be double-placed
            // by the coordinator on a healthy pod, so shed at the door
            // with a typed outcome the client can retry against.
            Some(AdmissionError::PodPartitioned { since_s })
        } else if let Some(violation) = self.input_violation(&spec) {
            Some(AdmissionError::MalformedInput { detail: violation.to_string() })
        } else if spec.class == JobClass::Batch && pressure >= self.config.shed.shed_pressure {
            Some(AdmissionError::Shedding { tenant: tcfg.name.clone(), pressure })
        } else if self.queues[tenant].len() >= tcfg.queue_capacity {
            Some(AdmissionError::QueueFull { tenant: tcfg.name.clone(), capacity: tcfg.queue_capacity })
        } else if let Some(deadline) = spec.deadline_s {
            let needed_s = self.admission_engine.estimate_seconds(spec.instance.len(), &self.curve);
            let available_s = deadline - self.clock_s;
            if needed_s > available_s {
                Some(AdmissionError::DeadlineInfeasible { needed_s, available_s })
            } else {
                None
            }
        } else {
            None
        };

        if let Some(error) = error {
            self.accum[tenant].rejected += 1;
            self.instant(
                &format!("reject:{}", error.label()),
                vec![("job".into(), spec.id.to_string()), ("tenant".into(), tcfg.name.clone())],
            );
            // Arrival + outcome ride one atomic journal record: a torn
            // write can lose the whole admission, never half of it.
            self.wal.append(
                self.clock_s,
                &ServiceRecord::Admission {
                    t_s: self.clock_s,
                    id: spec.id,
                    tenant,
                    class: spec.class,
                    outcome: AdmissionOutcome::Rejected { error: error.clone() },
                },
            );
            self.emit(Some(spec.id), Some(tenant), ServiceEventKind::Rejected { error });
            return;
        }

        self.accum[tenant].admitted += 1;
        let bound = self.config.shed.class_bound(spec.class);
        let expire_s = self.clock_s + bound;
        let id = spec.id;
        let class = spec.class;
        self.queues[tenant].push_back(QueuedJob {
            spec,
            attempt: 0,
            enqueued_s: self.clock_s,
            expire_s,
        });
        let queue_len = self.queues[tenant].len();
        self.wal.append(
            self.clock_s,
            &ServiceRecord::Admission {
                t_s: self.clock_s,
                id,
                tenant,
                class,
                outcome: AdmissionOutcome::Admitted { queue_len },
            },
        );
        self.emit(Some(id), Some(tenant), ServiceEventKind::Admitted { queue_len });
        self.push_pending(expire_s, PendingKind::Expire(id));
    }

    /// Picks the queued job with the earliest effective deadline
    /// (explicit deadline, else queue-epoch start plus class bound),
    /// breaking ties by tenant weight (heavier first), then id.
    fn pick_edf(&mut self) -> Option<QueuedJob<C>> {
        let (_, tenant, pos) = self.find_edf()?;
        self.queues[tenant].remove(pos)
    }

    /// Locates the EDF pick without removing it: `(effective deadline,
    /// tenant, queue position)`.
    fn find_edf(&self) -> Option<(f64, usize, usize)> {
        let mut best: Option<(f64, f64, u64, usize, usize)> = None;
        for (tenant, queue) in self.queues.iter().enumerate() {
            let weight = self.config.tenants[tenant].weight;
            for (pos, q) in queue.iter().enumerate() {
                let bound = self.config.shed.class_bound(q.spec.class);
                let eff = q
                    .spec
                    .deadline_s
                    .unwrap_or(f64::INFINITY)
                    .min(q.enqueued_s + bound);
                let better = match &best {
                    None => true,
                    Some((b_eff, b_w, b_id, _, _)) => {
                        match eff.total_cmp(b_eff) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Greater => false,
                            std::cmp::Ordering::Equal => match weight.total_cmp(b_w) {
                                std::cmp::Ordering::Greater => true,
                                std::cmp::Ordering::Less => false,
                                std::cmp::Ordering::Equal => q.spec.id < *b_id,
                            },
                        }
                    }
                };
                if better {
                    best = Some((eff, weight, q.spec.id, tenant, pos));
                }
            }
        }
        let (eff, _, _, tenant, pos) = best?;
        Some((eff, tenant, pos))
    }

    fn try_dispatch(&mut self, chaos: &ChaosSchedule) {
        if self.total_queued() == 0 {
            return;
        }
        // Probation ends are observed lazily, by traffic: breakers are
        // polled only when a dispatch is attempted, so an idle
        // quarantined device stays quarantined instead of drifting to
        // half-open with nothing to probe it.
        let polled = self.pool.poll(self.clock_s);
        self.record_transitions(polled);
        loop {
            let (closed, half_open) = self.pool.allocatable(self.clock_s);
            if closed.is_empty() && half_open.is_empty() {
                // Jobs are stuck behind quarantines: make sure the loop
                // wakes when the next probation window elapses.
                self.wake_at_probation_end();
                return;
            }
            let pressure = self.pressure();
            let Some(job) = self.pick_edf() else { return };

            let degraded = pressure >= self.config.shed.degrade_pressure;
            let target = if degraded {
                self.config.degraded_gpus_per_job
            } else {
                self.config.gpus_per_job
            };
            // Round-robin placement: start filling from the cursor so
            // every device (including high ids) sees regular traffic.
            let split = closed.partition_point(|&d| d < self.rr_cursor);
            let mut devices: Vec<usize> = closed[split..]
                .iter()
                .chain(closed[..split].iter())
                .copied()
                .take(target)
                .collect();
            if let Some(&last) = devices.last() {
                self.rr_cursor = (last + 1) % self.config.n_devices;
            }
            // At most one half-open device rides along as the probe —
            // replacing a closed rank when the partition is already
            // full, so probation devices see real traffic. The most
            // frequently tripped device probes first: it is the one
            // whose health the pool is least sure about.
            let probe = half_open
                .iter()
                .copied()
                .max_by_key(|&d| (self.pool.open_spells(d), std::cmp::Reverse(d)));
            if let Some(probe) = probe {
                if devices.len() >= target {
                    devices.pop();
                }
                devices.push(probe);
            }
            devices.sort_unstable();
            self.dispatch(job, devices, degraded, chaos);
        }
    }

    fn dispatch(
        &mut self,
        job: QueuedJob<C>,
        devices: Vec<usize>,
        degraded: bool,
        chaos: &ChaosSchedule,
    ) {
        let attempt = job.attempt;
        let plan = chaos.fault_plan_for(&devices, self.clock_s, attempt);
        let system = MultiGpuSystem::dgx_a100(devices.len());
        let engine = DistMsm::with_config(
            system,
            Self::engine_config(&self.config, plan).expect("service engine config is valid"),
        );
        let outcome = engine.execute_attempt(&job.spec.instance, attempt);
        let duration_s = match &outcome {
            Ok(report) => report.total_s,
            // A failed attempt still occupied its partition: charge the
            // analytic estimate as the detection latency.
            Err(_) => engine.estimate_seconds(job.spec.instance.len(), &self.curve),
        }
        .max(1e-9);

        let used_readmitted_device = devices.iter().any(|&d| self.pool.open_spells(d) > 0);
        self.pool.allocate(&devices, self.clock_s + duration_s);
        self.push_pending(self.clock_s + duration_s, PendingKind::Completion(job.spec.id));
        self.emit_journal(
            Some(job.spec.id),
            Some(job.spec.tenant),
            ServiceEventKind::Dispatched { devices: devices.clone(), attempt, degraded },
        );
        self.in_flight.insert(
            job.spec.id,
            InFlight { spec: job.spec, attempt, devices, outcome, used_readmitted_device },
        );
    }

    fn on_completion(&mut self, id: u64) {
        let Some(fl) = self.in_flight.remove(&id) else { return };
        let tenant = fl.spec.tenant;
        match fl.outcome {
            Ok(report) => {
                // A recovered execution still names the devices the
                // supervisor had to work around: charge them. Bit-flips
                // are transient in-flight corruption (the self-check
                // caught and re-shipped them), so they do not count
                // against device health.
                let mut faulty: Vec<usize> = report
                    .recovery
                    .as_ref()
                    .map(|rec| {
                        rec.faults
                            .iter()
                            .filter(|f| f.kind != "bit-flip")
                            .filter_map(|f| fl.devices.get(f.device).copied())
                            .collect()
                    })
                    .unwrap_or_default();
                faulty.sort_unstable();
                faulty.dedup();
                let mut transitions = Vec::new();
                for &d in &fl.devices {
                    if faulty.contains(&d) {
                        transitions.extend(self.pool.record_fault(d, self.clock_s));
                    } else {
                        transitions.extend(self.pool.record_success(d, self.clock_s));
                    }
                }
                if transitions.iter().any(|t| t.to == crate::breaker::BreakerState::Open) {
                    self.wake_at_probation_end();
                }
                self.record_transitions(transitions);
                let sojourn_s = self.clock_s - fl.spec.arrival_s;
                let deadline_met = fl.spec.deadline_s.is_none_or(|d| self.clock_s <= d);
                self.accum[tenant].completed += 1;
                if !deadline_met {
                    self.accum[tenant].deadline_missed += 1;
                }
                self.accum[tenant].sojourns_s.push(sojourn_s);
                let event = ServiceEvent {
                    t_s: self.clock_s,
                    job: Some(id),
                    tenant: Some(tenant),
                    kind: ServiceEventKind::Completed {
                        deadline_met,
                        sojourn_s,
                        attempts: fl.attempt + 1,
                    },
                };
                // Event + result bytes in one atomic record: no torn
                // write can strand a completion without its payload.
                self.wal.append(
                    self.clock_s,
                    &ServiceRecord::Completed {
                        event: event.clone(),
                        result: distmsm_ec::serialize::point_to_uncompressed(
                            &report.result.to_affine(),
                        ),
                        used_readmitted: fl.used_readmitted_device,
                    },
                );
                self.events.push(event);
                self.completed.push(CompletedJob {
                    id,
                    tenant,
                    result: report.result,
                    attempts: fl.attempt + 1,
                    used_readmitted_device: fl.used_readmitted_device,
                });
            }
            Err(error) => {
                // Map partition-local blame back to global device ids;
                // an error naming no device (total partition, config)
                // charges the whole partition.
                let local = error.implicated_devices();
                let blamed: Vec<usize> = if local.is_empty() {
                    fl.devices.clone()
                } else {
                    local.iter().filter_map(|&l| fl.devices.get(l).copied()).collect()
                };
                let mut transitions = Vec::new();
                for &d in &blamed {
                    transitions.extend(self.pool.record_fault(d, self.clock_s));
                }
                if transitions.iter().any(|t| t.to == crate::breaker::BreakerState::Open) {
                    self.wake_at_probation_end();
                }
                self.record_transitions(transitions);

                let next_attempt = fl.attempt + 1;
                if next_attempt < self.config.max_attempts {
                    let bound = self.config.shed.class_bound(fl.spec.class);
                    let expire_s = self.clock_s + bound;
                    self.emit_journal(
                        Some(id),
                        Some(tenant),
                        ServiceEventKind::Requeued { attempt: next_attempt },
                    );
                    self.queues[tenant].push_front(QueuedJob {
                        spec: fl.spec,
                        attempt: next_attempt,
                        enqueued_s: self.clock_s,
                        expire_s,
                    });
                    self.push_pending(expire_s, PendingKind::Expire(id));
                } else {
                    self.accum[tenant].failed += 1;
                    self.instant(
                        "job:failed",
                        vec![("job".into(), id.to_string()), ("error".into(), error.to_string())],
                    );
                    self.emit_journal(
                        Some(id),
                        Some(tenant),
                        ServiceEventKind::Failed { error: error.to_string() },
                    );
                }
            }
        }
    }

    fn on_expire(&mut self, id: u64) {
        // The job may have been dispatched, completed, or requeued with
        // a fresher bound since this expiry was scheduled.
        for tenant in 0..self.queues.len() {
            if let Some(pos) = self.queues[tenant]
                .iter()
                .position(|q| q.spec.id == id && q.expire_s <= self.clock_s + 1e-9)
            {
                self.queues[tenant].remove(pos);
                let reason = if self.pool.fully_quarantined() {
                    ShedReason::PoolQuarantined
                } else {
                    ShedReason::Starvation
                };
                self.accum[tenant].shed += 1;
                self.instant(
                    &format!("shed:{}", reason.label()),
                    vec![("job".into(), id.to_string())],
                );
                self.emit_journal(Some(id), Some(tenant), ServiceEventKind::Shed { reason });
                return;
            }
        }
    }

    fn build_report(&mut self) -> ServiceReport {
        let tenants = self
            .config
            .tenants
            .iter()
            .zip(&mut self.accum)
            .map(|(cfg, a)| {
                let mut sojourns = std::mem::take(&mut a.sojourns_s);
                sojourns.sort_by(f64::total_cmp);
                TenantStats {
                    name: cfg.name.clone(),
                    arrivals: a.arrivals,
                    admitted: a.admitted,
                    rejected: a.rejected,
                    completed: a.completed,
                    failed: a.failed,
                    shed: a.shed,
                    deadline_missed: a.deadline_missed,
                    sojourn_p50_s: crate::report::percentile(&sojourns, 0.50),
                    sojourn_p95_s: crate::report::percentile(&sojourns, 0.95),
                    sojourn_p99_s: crate::report::percentile(&sojourns, 0.99),
                }
            })
            .collect();
        ServiceReport {
            tenants,
            pool_timeline: self.pool.timeline().to_vec(),
            final_states: self.pool.final_states(),
            horizon_s: self.clock_s,
            n_devices: self.config.n_devices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use distmsm_ec::curves::Bn254G1;
    use distmsm_ec::MsmInstance;
    use rand::{rngs::StdRng, SeedableRng};

    fn job(id: u64, tenant: usize, class: JobClass, arrival_s: f64) -> JobSpec<Bn254G1> {
        let mut rng = StdRng::seed_from_u64(1000 + id);
        JobSpec {
            id,
            tenant,
            class,
            arrival_s,
            deadline_s: None,
            instance: MsmInstance::random(24, &mut rng),
        }
    }

    /// When every device in the pool fail-stops forever, the service
    /// must classify the stuck queue correctly: breakers all end open,
    /// nothing completes, and the queued work is shed as
    /// `PoolQuarantined` (not misreported as mere starvation).
    #[test]
    fn fully_quarantined_pool_sheds_with_pool_quarantined() {
        let config = ServiceConfig {
            n_devices: 2,
            gpus_per_job: 2,
            degraded_gpus_per_job: 1,
            ..ServiceConfig::default()
        };
        let chaos =
            ChaosSchedule::always_faulty(0).merged(ChaosSchedule::always_faulty(1));
        let jobs: Vec<_> = (0..8)
            .map(|i| job(i, i as usize % 2, JobClass::Batch, 0.001 * i as f64))
            .collect();
        let mut service = ProverService::new(config);
        let out = service.run(jobs, &chaos);

        assert!(
            out.report.final_states.iter().all(|s| *s == BreakerState::Open),
            "every breaker must end open: {:?}",
            out.report.final_states
        );
        assert_eq!(out.report.completed(), 0, "nothing can complete on a dead pool");
        assert!(
            out.events.iter().any(|e| matches!(
                e.kind,
                ServiceEventKind::Shed { reason: ShedReason::PoolQuarantined }
            )),
            "stuck work must be shed as pool-quarantined: {:#?}",
            out.report.render()
        );
        // Conservation still holds on the all-fault path.
        assert_eq!(
            out.report.admitted(),
            out.report.completed() + out.report.failed() + out.report.shed()
        );
    }

    #[test]
    fn malformed_inputs_are_rejected_at_the_door() {
        use distmsm_ec::FieldElement;
        let mut off_curve = job(1, 0, JobClass::Interactive, 0.0);
        off_curve.instance.points[3].y += <Bn254G1 as Curve>::Base::one();
        let mut bad_scalar = job(2, 0, JobClass::Interactive, 0.001);
        // The group order r itself: smallest non-canonical encoding.
        bad_scalar.instance.scalars[0] = distmsm_ec::curves::scalar_modulus_bn254();
        let good = job(3, 1, JobClass::Interactive, 0.002);

        let mut service = ProverService::new(ServiceConfig::default());
        let out = service.run(vec![off_curve, bad_scalar, good], &ChaosSchedule::none());

        let rejections: Vec<_> = out
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                ServiceEventKind::Rejected { error } => Some((e.job, error.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(rejections.len(), 2, "both malformed jobs refused: {rejections:?}");
        assert!(matches!(
            &rejections[0],
            (Some(1), AdmissionError::MalformedInput { detail }) if detail.contains("point 3")
        ));
        assert!(matches!(
            &rejections[1],
            (Some(2), AdmissionError::MalformedInput { detail }) if detail.contains("scalar 0")
        ));
        assert_eq!(out.report.completed(), 1, "the clean job still completes");

        // Validation off: garbage reaches the engine (legacy behavior).
        let mut off_curve = job(1, 0, JobClass::Interactive, 0.0);
        off_curve.instance.points[3].y += <Bn254G1 as Curve>::Base::one();
        let mut lax = ProverService::<Bn254G1>::new(ServiceConfig {
            validate_inputs: false,
            ..ServiceConfig::default()
        });
        let out = lax.run(vec![off_curve], &ChaosSchedule::none());
        assert!(
            !out.events.iter().any(|e| matches!(e.kind, ServiceEventKind::Rejected { .. })),
            "validation disabled: nothing refused at the door"
        );
    }

    #[test]
    fn partitioned_pod_sheds_new_arrivals_with_typed_outcome() {
        let mut service = ProverService::new(ServiceConfig::default());
        service.set_partitioned(0.5);
        assert!(service.is_partitioned());
        let out = service.run(
            vec![job(7, 0, JobClass::Interactive, 1.0), job(8, 1, JobClass::Batch, 1.5)],
            &ChaosSchedule::none(),
        );
        let rejected: Vec<_> = out
            .events
            .iter()
            .filter(|e| {
                matches!(
                    &e.kind,
                    ServiceEventKind::Rejected {
                        error: AdmissionError::PodPartitioned { since_s }
                    } if *since_s == 0.5
                )
            })
            .collect();
        assert_eq!(rejected.len(), 2, "degraded mode sheds every new arrival");
        assert_eq!(out.report.completed(), 0);

        // Healing re-opens the door.
        service.clear_partitioned(10.0);
        assert!(!service.is_partitioned());
        let out = service.run(vec![job(9, 0, JobClass::Interactive, 11.0)], &ChaosSchedule::none());
        assert_eq!(out.report.completed(), 1);
    }

    #[test]
    fn fence_discard_removes_queued_jobs_and_journals_a_tombstone() {
        let config = ServiceConfig { n_devices: 2, gpus_per_job: 2, ..ServiceConfig::default() };
        let mut service = ProverService::new(config);
        let chaos = ChaosSchedule::none();
        service.begin(vec![
            job(0, 0, JobClass::Interactive, 0.0),
            job(1, 0, JobClass::Interactive, 0.0005),
        ]);
        service.step(&chaos); // arrival 0 → dispatched (fills the pool)
        service.step(&chaos); // arrival 1 → queued behind it
        assert_eq!(service.queued_jobs(), 1);

        assert!(service.fence_discard(1, service.clock_s()), "queued copy revoked");
        assert_eq!(service.queued_jobs(), 0);
        assert!(!service.fence_discard(0, service.clock_s()), "in-flight copy not revocable");
        assert!(!service.fence_discard(99, service.clock_s()), "unknown id is a no-op");

        // The tombstone is durable: recovery marks the job stolen-away,
        // never re-queues it.
        let rec = crate::wal::recover_state(
            service.durable(),
            2,
            2,
            &BreakerConfig::default(),
        )
        .expect("clean recovery");
        assert!(matches!(rec.state.jobs[&1].phase, JobPhase::StolenAway { .. }));
    }
}
