//! The deterministic chaos soak: seeded Poisson-like arrival traces
//! replayed against randomized fault schedules for thousands of
//! simulated seconds, with the service invariants checked over the
//! event stream — and, on violation, greedy shrinking of the
//! (arrival trace, fault plan) pair to a minimal reproducer printed as
//! a re-runnable seed tuple.
//!
//! Everything is derived from the [`SoakSpec`] alone (no wall clock, no
//! global state), and all generation is prefix-stable: shrinking a
//! count re-runs a strict subset of the original scenario.

use distmsm::engine::DistMsm;
use distmsm_ec::curves::Bn254G1;
use distmsm_ec::MsmInstance;
use distmsm_gpu_sim::fault::splitmix64;
use distmsm_gpu_sim::MultiGpuSystem;
use rand::{rngs::StdRng, SeedableRng};

use crate::breaker::BreakerState;
use crate::chaos::ChaosSchedule;
use crate::job::{JobClass, JobSpec};
use crate::service::{
    CompletedJob, ProverService, ServiceConfig, ServiceEvent, ServiceEventKind, ServiceOutcome,
};

/// Everything that defines one soak scenario. Two equal specs produce
/// byte-identical runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoakSpec {
    /// Seed of the arrival trace (times, classes, deadlines, scalars).
    pub arrival_seed: u64,
    /// Seed of the chaos schedule (device + link fault windows).
    pub fault_seed: u64,
    /// Jobs in the arrival trace.
    pub n_jobs: usize,
    /// Random device-fault windows.
    pub n_fault_windows: usize,
    /// Random link-fault windows.
    pub n_link_windows: usize,
    /// Arrival horizon, simulated seconds.
    pub horizon_s: f64,
    /// Devices in the pool.
    pub n_devices: usize,
    /// Upper bound on per-job MSM size (jobs draw from `[size/2, size)`).
    pub msm_size: usize,
    /// A device that fail-stops on every dispatch for the whole run —
    /// the quarantine probe. Must end the run with an open breaker.
    pub always_faulty: Option<usize>,
}

impl SoakSpec {
    /// The acceptance-scale scenario: a 16-GPU pod, 500 jobs over 2000
    /// simulated seconds, randomized device and link faults, one
    /// always-faulty device.
    pub fn full() -> Self {
        Self {
            arrival_seed: 2024,
            fault_seed: 7,
            n_jobs: 500,
            n_fault_windows: 24,
            n_link_windows: 8,
            horizon_s: 2000.0,
            n_devices: 16,
            msm_size: 96,
            always_faulty: Some(15),
        }
    }

    /// The CI smoke scenario: small enough to run in seconds, still
    /// exercising shedding, retries and the breaker cycle.
    pub fn smoke() -> Self {
        Self {
            arrival_seed: 11,
            fault_seed: 3,
            n_jobs: 120,
            n_fault_windows: 10,
            n_link_windows: 4,
            horizon_s: 600.0,
            n_devices: 8,
            msm_size: 64,
            always_faulty: Some(7),
        }
    }

    /// The spec as a re-runnable seed tuple (the shrinker's output
    /// format).
    pub fn seed_tuple(&self) -> String {
        format!(
            "(arrival_seed={}, fault_seed={}, n_jobs={}, n_fault_windows={}, \
             n_link_windows={}, horizon_s={}, n_devices={}, msm_size={}, always_faulty={:?})",
            self.arrival_seed,
            self.fault_seed,
            self.n_jobs,
            self.n_fault_windows,
            self.n_link_windows,
            self.horizon_s,
            self.n_devices,
            self.msm_size,
            self.always_faulty,
        )
    }

    /// The spec as `soak` binary flags, for copy-paste reproduction.
    pub fn cli(&self) -> String {
        let mut s = format!(
            "--arrival-seed {} --fault-seed {} --jobs {} --fault-windows {} \
             --link-windows {} --horizon {} --devices {} --msm-size {}",
            self.arrival_seed,
            self.fault_seed,
            self.n_jobs,
            self.n_fault_windows,
            self.n_link_windows,
            self.horizon_s,
            self.n_devices,
            self.msm_size,
        );
        if let Some(d) = self.always_faulty {
            s.push_str(&format!(" --always-faulty {d}"));
        }
        s
    }
}

/// Test-only event-stream corruption, used to demonstrate that the
/// invariant checker catches violations and the shrinker minimizes
/// them. Never wired into a production path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Sabotage {
    /// No corruption: the honest run.
    #[default]
    None,
    /// Drops every third `Completed` event before the invariant check —
    /// admitted jobs appear to vanish, breaking conservation and
    /// exactly-once termination.
    DropCompletions,
}

/// Options for one soak run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SoakOptions {
    /// Event-stream corruption (tests only).
    pub sabotage: Sabotage,
}

/// One detected invariant violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Stable invariant id (`"exactly-once"`, `"conservation"`,
    /// `"bit-exact"`, `"starvation-bound"`, `"open-dispatch"`,
    /// `"quarantine"`, `"completion-floor"`).
    pub invariant: &'static str,
    /// What went wrong.
    pub detail: String,
}

/// The outcome of one soak run.
#[derive(Clone, Debug)]
pub struct SoakOutcome {
    /// The service report.
    pub report: crate::report::ServiceReport,
    /// Detected invariant violations (empty on a healthy run).
    pub violations: Vec<Violation>,
    /// Events processed (after any sabotage).
    pub n_events: usize,
}

fn unit(state: &mut u64) -> f64 {
    splitmix64(state) as f64 / u64::MAX as f64
}

/// Builds the seeded arrival trace: bursty Poisson-like arrivals (five
/// tightly-packed jobs, then exponential gaps) of mixed-class,
/// mixed-size MSM jobs over two tenants.
///
/// Prefix-stable: job `i` consumes a fixed number of PRNG draws and its
/// instance is seeded per-id, so shrinking `n_jobs` keeps every
/// surviving job identical.
pub fn build_jobs(spec: &SoakSpec) -> Vec<JobSpec<Bn254G1>> {
    let mut state = spec.arrival_seed ^ 0x1234_5678_9abc_def0;
    // Pacing depends on the horizon only — never on `n_jobs` — so
    // shrinking the job count keeps every surviving arrival identical.
    let mean_long_gap = spec.horizon_s / 150.0;
    let mut t = 0.0;
    let mut jobs = Vec::with_capacity(spec.n_jobs);
    for i in 0..spec.n_jobs {
        // Fixed draw count per job keeps the stream prefix-stable.
        let u_gap = unit(&mut state);
        let u_class = unit(&mut state);
        let u_deadline = unit(&mut state);
        let u_size = unit(&mut state);
        t += if i % 8 < 5 {
            // Burst: arrivals far tighter than a service time.
            0.0002 + 0.0018 * u_gap
        } else {
            -((u_gap.max(1e-12)).ln()) * mean_long_gap
        };
        let (tenant, class) = if u_class < 0.6 {
            (0, JobClass::Interactive)
        } else {
            (1, JobClass::Batch)
        };
        let deadline_s = match class {
            JobClass::Interactive => Some(t + 0.05 + 0.45 * u_deadline),
            JobClass::Batch => None,
        };
        let half = (spec.msm_size / 2).max(1);
        let n = half + (u_size * half as f64) as usize;
        let mut rng = StdRng::seed_from_u64(spec.arrival_seed.wrapping_add(0x5eed + i as u64));
        jobs.push(JobSpec {
            id: i as u64,
            tenant,
            class,
            arrival_s: t,
            deadline_s,
            instance: MsmInstance::random(n, &mut rng),
        });
    }
    jobs
}

/// Builds the seeded chaos schedule, merging the always-faulty probe
/// device when the spec names one.
pub fn build_chaos(spec: &SoakSpec) -> ChaosSchedule {
    let mut chaos = ChaosSchedule::random(
        spec.fault_seed,
        spec.n_devices,
        spec.n_fault_windows,
        spec.n_link_windows,
        spec.horizon_s,
    );
    if let Some(d) = spec.always_faulty {
        chaos = chaos.merged(ChaosSchedule::always_faulty(d));
    }
    chaos
}

/// The service configuration a soak runs (devices from the spec,
/// partition sizes clamped to the pool).
pub fn service_config(spec: &SoakSpec) -> ServiceConfig {
    let mut cfg = ServiceConfig {
        n_devices: spec.n_devices,
        ..ServiceConfig::default()
    };
    cfg.gpus_per_job = cfg.gpus_per_job.min(spec.n_devices);
    cfg.degraded_gpus_per_job = cfg.degraded_gpus_per_job.min(spec.n_devices);
    cfg
}

/// Runs one soak scenario end to end: build, execute, corrupt (if
/// sabotaged), check invariants.
pub fn run_soak(spec: &SoakSpec, opts: &SoakOptions) -> SoakOutcome {
    let jobs = build_jobs(spec);
    let chaos = build_chaos(spec);
    let config = service_config(spec);
    let mut service = ProverService::new(config.clone());
    let ServiceOutcome { report, mut events, completed } = service.run(jobs.clone(), &chaos);

    if opts.sabotage == Sabotage::DropCompletions {
        let mut kept = 0u64;
        events.retain(|e| {
            if matches!(e.kind, ServiceEventKind::Completed { .. }) {
                kept += 1;
                !kept.is_multiple_of(3)
            } else {
                true
            }
        });
    }

    let mut violations = check_invariants(&jobs, &events, &completed, &config);
    if let Some(d) = spec.always_faulty {
        if !report.quarantined(d) {
            violations.push(Violation {
                invariant: "quarantine",
                detail: format!(
                    "always-faulty device {d} ended the run {:?} instead of open",
                    report.final_states.get(d)
                ),
            });
        }
    }
    if report.completion_rate() < config.shed.min_completion_rate {
        violations.push(Violation {
            invariant: "completion-floor",
            detail: format!(
                "completion rate {:.3} fell below the shed-policy floor {:.3}",
                report.completion_rate(),
                config.shed.min_completion_rate
            ),
        });
    }
    SoakOutcome { report, violations, n_events: events.len() }
}

/// Checks the service invariants over a replayed event stream:
///
/// 1. **exactly-once** — every admitted job terminates exactly once, as
///    completed, failed or shed.
/// 2. **conservation** — at every prefix of the stream,
///    `admitted = completed + failed + shed + in-flight` with a
///    non-negative in-flight count, and in-flight drains to zero.
/// 3. **bit-exact** — every completed result equals the fault-free
///    single-GPU reference for its instance (affine-canonical compare).
/// 4. **starvation-bound** — no job waits in queue longer than its
///    class bound (each queue epoch measured separately).
/// 5. **open-dispatch** — no dispatch names a device whose breaker was
///    open at dispatch time (the SVC-002 property).
pub fn check_invariants(
    jobs: &[JobSpec<Bn254G1>],
    events: &[ServiceEvent],
    completed: &[CompletedJob<Bn254G1>],
    config: &ServiceConfig,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let by_id: std::collections::BTreeMap<u64, &JobSpec<Bn254G1>> =
        jobs.iter().map(|j| (j.id, j)).collect();

    // 1 + 2: termination accounting and conservation, replayed.
    let mut admitted = 0i64;
    let mut terminated = 0i64;
    let mut terminal_count: std::collections::BTreeMap<u64, u32> = Default::default();
    let mut admitted_ids: std::collections::BTreeSet<u64> = Default::default();
    // 4: open queue epochs (job → epoch start), 5: breaker states.
    let mut queued_since: std::collections::BTreeMap<u64, f64> = Default::default();
    let mut breaker: std::collections::BTreeMap<usize, BreakerState> = Default::default();
    const EPS: f64 = 1e-6;

    for ev in events {
        match &ev.kind {
            ServiceEventKind::Admitted { .. } => {
                admitted += 1;
                admitted_ids.insert(ev.job.unwrap_or(u64::MAX));
                if let Some(id) = ev.job {
                    queued_since.insert(id, ev.t_s);
                }
            }
            ServiceEventKind::Requeued { .. } => {
                if let Some(id) = ev.job {
                    queued_since.insert(id, ev.t_s);
                }
            }
            ServiceEventKind::Dispatched { devices, .. } => {
                if let Some(id) = ev.job {
                    if let Some(since) = queued_since.remove(&id) {
                        check_wait(&mut violations, &by_id, config, id, since, ev.t_s, EPS);
                    }
                }
                for d in devices {
                    if breaker.get(d) == Some(&BreakerState::Open) {
                        violations.push(Violation {
                            invariant: "open-dispatch",
                            detail: format!(
                                "job {:?} dispatched to device {d} at t={} while its breaker was open",
                                ev.job, ev.t_s
                            ),
                        });
                    }
                }
            }
            ServiceEventKind::Completed { .. }
            | ServiceEventKind::Failed { .. }
            | ServiceEventKind::Shed { .. } => {
                terminated += 1;
                if let Some(id) = ev.job {
                    *terminal_count.entry(id).or_insert(0) += 1;
                    if matches!(ev.kind, ServiceEventKind::Shed { .. }) {
                        if let Some(since) = queued_since.remove(&id) {
                            check_wait(&mut violations, &by_id, config, id, since, ev.t_s, EPS);
                        }
                    }
                }
            }
            _ => {}
        }
        if let ServiceEventKind::Breaker { transition } = &ev.kind {
            breaker.insert(transition.device, transition.to);
        }
        let in_flight = admitted - terminated;
        if in_flight < 0 {
            violations.push(Violation {
                invariant: "conservation",
                detail: format!(
                    "at t={}: {terminated} terminations exceed {admitted} admissions",
                    ev.t_s
                ),
            });
        }
    }
    if admitted != terminated {
        violations.push(Violation {
            invariant: "conservation",
            detail: format!(
                "run ended with {} jobs admitted but only {} terminated",
                admitted, terminated
            ),
        });
    }
    for id in &admitted_ids {
        match terminal_count.get(id).copied().unwrap_or(0) {
            1 => {}
            n => violations.push(Violation {
                invariant: "exactly-once",
                detail: format!("admitted job {id} terminated {n} times"),
            }),
        }
    }

    // 3: bit-exactness against the fault-free single-GPU reference.
    let reference = DistMsm::new(MultiGpuSystem::dgx_a100(1));
    for c in completed {
        let Some(job) = by_id.get(&c.id) else {
            violations.push(Violation {
                invariant: "bit-exact",
                detail: format!("completed job {} is not in the arrival trace", c.id),
            });
            continue;
        };
        let expect = reference
            .execute(&job.instance)
            .expect("fault-free reference execution succeeds");
        if expect.result.to_affine() != c.result.to_affine() {
            violations.push(Violation {
                invariant: "bit-exact",
                detail: format!("job {} completed with a wrong MSM value", c.id),
            });
        }
    }
    violations
}

fn check_wait(
    violations: &mut Vec<Violation>,
    by_id: &std::collections::BTreeMap<u64, &JobSpec<Bn254G1>>,
    config: &ServiceConfig,
    id: u64,
    since: f64,
    until: f64,
    eps: f64,
) {
    let Some(job) = by_id.get(&id) else { return };
    let bound = config.shed.class_bound(job.class);
    let waited = until - since;
    if waited > bound + eps {
        violations.push(Violation {
            invariant: "starvation-bound",
            detail: format!(
                "{} job {id} waited {waited:.3}s in queue, past its {bound:.3}s bound",
                job.class.label()
            ),
        });
    }
}

/// Greedily shrinks a violating spec to a minimal reproducer: tries the
/// cheapest reductions (halve the trace, halve the chaos, drop the
/// probe device, halve the horizon) and keeps any that still violates
/// **the same invariant** as the original failure (so shrinking cannot
/// drift onto an unrelated violation), until a fixpoint or `max_runs`
/// soak executions.
///
/// Returns the minimal spec and its outcome. The caller prints
/// [`SoakSpec::seed_tuple`] / [`SoakSpec::cli`] as the reproducer.
///
/// # Panics
///
/// Panics when called with a spec that does not violate — there is
/// nothing to shrink.
pub fn shrink(spec: &SoakSpec, opts: &SoakOptions, max_runs: usize) -> (SoakSpec, SoakOutcome) {
    let mut current = *spec;
    let mut outcome = run_soak(&current, opts);
    assert!(
        !outcome.violations.is_empty(),
        "shrink needs a violating spec; {} is healthy",
        spec.seed_tuple()
    );
    let target = outcome.violations[0].invariant;
    let mut runs = 0;
    'outer: loop {
        for candidate in candidates(&current) {
            if runs >= max_runs {
                break 'outer;
            }
            runs += 1;
            let c_outcome = run_soak(&candidate, opts);
            if c_outcome.violations.iter().any(|v| v.invariant == target) {
                current = candidate;
                outcome = c_outcome;
                continue 'outer;
            }
        }
        break;
    }
    (current, outcome)
}

/// Reduction candidates for one shrink round, strictly smaller than the
/// input along one axis each.
fn candidates(spec: &SoakSpec) -> Vec<SoakSpec> {
    let mut out = Vec::new();
    if spec.n_jobs > 1 {
        out.push(SoakSpec { n_jobs: spec.n_jobs / 2, ..*spec });
        out.push(SoakSpec { n_jobs: spec.n_jobs - 1, ..*spec });
    }
    if spec.n_fault_windows > 0 {
        out.push(SoakSpec { n_fault_windows: spec.n_fault_windows / 2, ..*spec });
        out.push(SoakSpec { n_fault_windows: spec.n_fault_windows - 1, ..*spec });
    }
    if spec.n_link_windows > 0 {
        out.push(SoakSpec { n_link_windows: spec.n_link_windows / 2, ..*spec });
        out.push(SoakSpec { n_link_windows: spec.n_link_windows - 1, ..*spec });
    }
    if spec.always_faulty.is_some() {
        out.push(SoakSpec { always_faulty: None, ..*spec });
    }
    if spec.horizon_s > 1.0 {
        out.push(SoakSpec { horizon_s: spec.horizon_s / 2.0, ..*spec });
    }
    out.retain(|c| c != spec);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SoakSpec {
        SoakSpec {
            arrival_seed: 5,
            fault_seed: 9,
            n_jobs: 16,
            n_fault_windows: 3,
            n_link_windows: 1,
            horizon_s: 60.0,
            n_devices: 4,
            msm_size: 24,
            always_faulty: Some(3),
        }
    }

    #[test]
    fn jobs_are_prefix_stable() {
        let spec = tiny();
        let all = build_jobs(&spec);
        let fewer = build_jobs(&SoakSpec { n_jobs: 8, ..spec });
        for (a, b) in fewer.iter().zip(&all) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival_s, b.arrival_s);
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.instance.len(), b.instance.len());
            assert_eq!(a.instance.scalars, b.instance.scalars);
        }
    }

    #[test]
    fn tiny_soak_has_no_violations() {
        let out = run_soak(&tiny(), &SoakOptions::default());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.report.quarantined(3), "always-faulty device quarantined");
        assert_eq!(
            out.report.admitted(),
            out.report.completed() + out.report.failed() + out.report.shed(),
            "conservation at end of run"
        );
    }

    #[test]
    fn sabotage_is_caught_and_shrinks_to_a_minimal_reproducer() {
        let spec = tiny();
        let opts = SoakOptions { sabotage: Sabotage::DropCompletions };
        let out = run_soak(&spec, &opts);
        assert!(
            out.violations.iter().any(|v| v.invariant == "conservation"),
            "dropped completions must break conservation: {:?}",
            out.violations
        );
        let (min, min_out) = shrink(&spec, &opts, 40);
        assert!(!min_out.violations.is_empty());
        assert!(
            min.n_jobs < spec.n_jobs || min.n_fault_windows < spec.n_fault_windows,
            "shrinker made no progress: {}",
            min.seed_tuple()
        );
        // The reproducer is printable and re-runnable.
        let replay = run_soak(&min, &opts);
        assert!(!replay.violations.is_empty(), "reproducer must replay: {}", min.cli());
    }
}
