//! The health-gated device pool: one circuit breaker and one busy
//! horizon per simulated GPU, plus the transition timeline the
//! [`crate::report::ServiceReport`] publishes.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker, PoolTransition};

/// A pool of simulated GPUs gated by per-device circuit breakers.
#[derive(Clone, Debug)]
pub struct DevicePool {
    config: BreakerConfig,
    breakers: Vec<CircuitBreaker>,
    /// Per-device time until which the device is executing a job.
    busy_until_s: Vec<f64>,
    timeline: Vec<PoolTransition>,
}

impl DevicePool {
    /// A pool of `n` healthy idle devices.
    pub fn new(n: usize, config: BreakerConfig) -> Self {
        Self {
            config,
            breakers: vec![CircuitBreaker::new(); n],
            busy_until_s: vec![0.0; n],
            timeline: Vec::new(),
        }
    }

    /// Rebuilds a pool from restored breakers (crash recovery).
    ///
    /// Busy horizons reset to idle — any in-flight work was lost with
    /// the crash and is re-dispatched by the service — and the
    /// transition timeline restarts empty (the pre-crash prefix lives
    /// in the journal, not in volatile pool state).
    pub fn restore(config: BreakerConfig, breakers: Vec<CircuitBreaker>) -> Self {
        let n = breakers.len();
        Self { config, breakers, busy_until_s: vec![0.0; n], timeline: Vec::new() }
    }

    /// Number of devices in the pool (healthy or not).
    pub fn n_devices(&self) -> usize {
        self.breakers.len()
    }

    /// The breaker configuration the pool runs.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Current breaker state of a device.
    pub fn state(&self, device: usize) -> BreakerState {
        self.breakers[device].state()
    }

    /// How many times a device's breaker has tripped open.
    pub fn open_spells(&self, device: usize) -> u32 {
        self.breakers[device].open_spells()
    }

    /// When a device's current probation window elapses (meaningful only
    /// while its breaker is open).
    pub fn open_until(&self, device: usize) -> f64 {
        self.breakers[device].open_until_s()
    }

    /// Earliest time at or after `now_s` when an open breaker moves to
    /// half-open, if any breaker is open.
    pub fn next_probation_end(&self) -> Option<f64> {
        self.breakers
            .iter()
            .filter(|b| b.state() == BreakerState::Open)
            .map(|b| b.open_until_s())
            .min_by(f64::total_cmp)
    }

    /// Advances the clock: moves every open breaker whose probation
    /// elapsed to half-open, returning the transitions (also appended to
    /// the timeline).
    pub fn poll(&mut self, now_s: f64) -> Vec<PoolTransition> {
        let mut out = Vec::new();
        for (d, b) in self.breakers.iter_mut().enumerate() {
            if let Some(t) = b.poll(d, now_s) {
                self.timeline.push(t.clone());
                out.push(t);
            }
        }
        out
    }

    /// The devices a dispatch at `now_s` may use: `(closed, half_open)`,
    /// both restricted to idle devices. Open-breaker devices are never
    /// returned — that is the SVC-002 invariant.
    pub fn allocatable(&self, now_s: f64) -> (Vec<usize>, Vec<usize>) {
        let mut closed = Vec::new();
        let mut half_open = Vec::new();
        for (d, b) in self.breakers.iter().enumerate() {
            if self.busy_until_s[d] > now_s {
                continue;
            }
            match b.state() {
                BreakerState::Closed => closed.push(d),
                BreakerState::HalfOpen => half_open.push(d),
                BreakerState::Open => {}
            }
        }
        (closed, half_open)
    }

    /// Marks `devices` busy until `until_s`.
    pub fn allocate(&mut self, devices: &[usize], until_s: f64) {
        for &d in devices {
            self.busy_until_s[d] = until_s;
        }
    }

    /// Records a successful job on a device; a half-open probe success
    /// re-admits it.
    pub fn record_success(&mut self, device: usize, now_s: f64) -> Option<PoolTransition> {
        let t = self.breakers[device].on_success(device, now_s);
        if let Some(t) = &t {
            self.timeline.push(t.clone());
        }
        t
    }

    /// Records a fault charged to a device; may trip its breaker open.
    pub fn record_fault(&mut self, device: usize, now_s: f64) -> Option<PoolTransition> {
        let t = self.breakers[device].on_fault(&self.config, device, now_s);
        if let Some(t) = &t {
            self.timeline.push(t.clone());
        }
        t
    }

    /// True when **no** device is dispatchable or on probation — every
    /// breaker is open. The service classifies queued work shed in this
    /// state as [`crate::job::ShedReason::PoolQuarantined`].
    pub fn fully_quarantined(&self) -> bool {
        self.breakers.iter().all(|b| b.state() == BreakerState::Open)
    }

    /// The full transition timeline, in emission order.
    pub fn timeline(&self) -> &[PoolTransition] {
        &self.timeline
    }

    /// Final breaker states, indexed by device.
    pub fn final_states(&self) -> Vec<BreakerState> {
        self.breakers.iter().map(|b| b.state()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_devices_are_never_allocatable() {
        let cfg = BreakerConfig::default();
        let mut pool = DevicePool::new(4, cfg);
        for _ in 0..cfg.fault_threshold {
            pool.record_fault(2, 1.0);
        }
        assert_eq!(pool.state(2), BreakerState::Open);
        let (closed, half) = pool.allocatable(1.0);
        assert_eq!(closed, vec![0, 1, 3]);
        assert!(half.is_empty());
    }

    #[test]
    fn busy_devices_are_not_allocatable_until_released() {
        let mut pool = DevicePool::new(2, BreakerConfig::default());
        pool.allocate(&[0], 5.0);
        let (closed, _) = pool.allocatable(4.0);
        assert_eq!(closed, vec![1]);
        let (closed, _) = pool.allocatable(5.0);
        assert_eq!(closed, vec![0, 1]);
    }

    #[test]
    fn fully_quarantined_requires_every_breaker_open() {
        let cfg = BreakerConfig::default();
        let mut pool = DevicePool::new(2, cfg);
        for d in 0..2 {
            for _ in 0..cfg.fault_threshold {
                pool.record_fault(d, 0.0);
            }
        }
        assert!(pool.fully_quarantined());
        // Probation elapses on one device → half-open → not quarantined.
        let end = pool.next_probation_end().expect("open breakers have ends");
        pool.poll(end);
        assert!(!pool.fully_quarantined());
        assert_eq!(pool.timeline().len(), 2 + 2, "2 trips + 2 half-open polls");
    }
}
