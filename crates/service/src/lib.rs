//! # distmsm-service — the multi-tenant prover front-end
//!
//! PR 3 made a *single* MSM survive device loss, stragglers and link
//! faults; this crate moves robustness one layer up, to the system the
//! ROADMAP's north star describes: many concurrent proof requests
//! competing for a shared, partially-degraded GPU pool. Everything runs
//! on the deterministic simulated clock, so a run is a pure function of
//! its inputs and every behaviour is bit-reproducible.
//!
//! Four pieces:
//!
//! * **Admission control & backpressure** ([`admission`]): bounded
//!   per-tenant queues, a typed [`AdmissionError`]
//!   (queue-full / shedding / deadline-infeasible), deadline-aware EDF
//!   dispatch, and an explicit [`ShedPolicy`] instead of silent drops.
//! * **Health-gated device pools** ([`breaker`], [`pool`]): per-device
//!   circuit breakers fed by [`MsmError::implicated_devices`] — closed →
//!   open on repeated faults, half-open probation probes on a saturating
//!   backoff schedule, re-admission on probe success — so a flaky
//!   simulated GPU is quarantined instead of poisoning every subsequent
//!   request. Transitions land on the `service` telemetry lane.
//! * **Graceful degradation** ([`service`]): when pressure crosses the
//!   policy threshold, dispatch shrinks partitions (latency traded for
//!   survival); the engine's degraded-collective path handles the
//!   shrunk pool. Everything is accounted in a [`ServiceReport`]
//!   implementing the workspace [`Report`](distmsm::Report) trait.
//! * **Deterministic chaos soak** ([`soak`], `crates/bench/src/bin/soak.rs`):
//!   seeded Poisson-like arrival traces against randomized fault and
//!   link-fault windows for thousands of simulated seconds, with the
//!   service invariants (exactly-once termination, conservation,
//!   bit-exact results, starvation bounds, no dispatch to an open
//!   breaker) checked over the replayable event stream — and a greedy
//!   shrinker that reduces any violation to a minimal re-runnable seed
//!   tuple.
//!
//! [`MsmError::implicated_devices`]: distmsm::MsmError::implicated_devices

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod breaker;
pub mod chaos;
pub mod job;
pub mod pool;
pub mod report;
pub mod service;
pub mod soak;
pub mod wal;

pub use admission::{AdmissionError, ShedPolicy, TenantConfig};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, PoolTransition};
pub use chaos::{ChaosSchedule, DeviceFaultWindow, LinkFaultWindow};
pub use job::{JobClass, JobSpec, ShedReason};
pub use pool::DevicePool;
pub use report::{ServiceReport, TenantStats};
pub use service::{
    CompletedJob, ProverService, ServiceConfig, ServiceEvent, ServiceEventKind, ServiceOutcome,
    StolenJob,
};
pub use soak::{run_soak, shrink, Sabotage, SoakOptions, SoakOutcome, SoakSpec, Violation};
pub use wal::{
    decode_events, recover_state, AdmissionOutcome, BreakerRestore, CompletedEntry, JobEntry,
    JobPhase, RecoveryInfo, ServiceRecord, ServiceState, ServiceWal, TenantCounters, WalRecovery,
};
