//! Crash-consistent write-ahead journaling for the prover service.
//!
//! Every externally visible state change the service makes — admission
//! outcomes, dispatches, requeues, completions, sheds, breaker
//! transitions, and the fleet's steal/absorb queue surgery — is encoded
//! as one [`ServiceRecord`] and appended to a `distmsm-journal`
//! [`DurableState`] *in the same handler that makes the change*. On the
//! simulated clock an append is atomic, so the journal is always a
//! consistent prefix of the service's history; a crash is modelled by
//! truncating the journal bytes at an arbitrary (even mid-frame)
//! boundary and rebuilding from what survived.
//!
//! Three design rules keep recovery exactly-once:
//!
//! * **Atomic compound records.** An arrival and its admission outcome
//!   ride one [`ServiceRecord::Admission`] record, and a completion
//!   event and its result bytes ride one [`ServiceRecord::Completed`]
//!   record. No record boundary can therefore separate a decision from
//!   its effect — a torn write loses the *whole* decision, never half
//!   of it.
//! * **A shadow fold.** [`ServiceWal`] maintains a [`ServiceState`] by
//!   folding every appended record through [`ServiceState::apply`] —
//!   the same function recovery uses. A snapshot is just the encoded
//!   shadow state, so *snapshot ≡ replay* holds by construction (the
//!   `CKPT-001` analyzer rule grounds this equivalence on real logs).
//! * **Replay-only counters.** Everything the fold tracks (job phases,
//!   tenant counters, breaker spells, completed results) is derivable
//!   from the record stream alone; volatile details that are *not*
//!   journaled (heap order, round-robin cursor, busy horizons) are
//!   exactly the ones a restart may legitimately rebuild differently.
//!
//! Recovery invariants the crash soak checks end to end: every job
//! terminates exactly once across the crash, shed/completed jobs are
//! never resurrected, results stay bit-exact, and recovery cost
//! (snapshot decode + bounded replay) is strictly below re-running the
//! lost history once the journal is long enough.

use std::collections::BTreeMap;

use distmsm_journal::{ByteReader, ByteWriter, DurableState, JournalError, WireError};

use crate::admission::AdmissionError;
use crate::breaker::{BreakerConfig, BreakerState};
use crate::job::{JobClass, ShedReason};
use crate::service::{ServiceEvent, ServiceEventKind};

/// Modelled fixed cost of opening the durable state on recovery.
pub const RECOVERY_BASE_S: f64 = 5e-3;
/// Modelled cost of folding one replayed journal record.
pub const REPLAY_RECORD_S: f64 = 2e-4;
/// Modelled cost per snapshot byte decoded on recovery.
pub const SNAPSHOT_BYTE_S: f64 = 1e-8;

// ---------------------------------------------------------------------
// small tag codecs
// ---------------------------------------------------------------------

fn class_tag(c: JobClass) -> u8 {
    match c {
        JobClass::Interactive => 0,
        JobClass::Batch => 1,
    }
}

fn class_from(tag: u8, off: usize) -> Result<JobClass, WireError> {
    match tag {
        0 => Ok(JobClass::Interactive),
        1 => Ok(JobClass::Batch),
        _ => Err(WireError { offset: off }),
    }
}

fn reason_tag(r: ShedReason) -> u8 {
    match r {
        ShedReason::Starvation => 0,
        ShedReason::PoolQuarantined => 1,
    }
}

fn reason_from(tag: u8, off: usize) -> Result<ShedReason, WireError> {
    match tag {
        0 => Ok(ShedReason::Starvation),
        1 => Ok(ShedReason::PoolQuarantined),
        _ => Err(WireError { offset: off }),
    }
}

fn state_tag(s: BreakerState) -> u8 {
    match s {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    }
}

fn state_from(tag: u8, off: usize) -> Result<BreakerState, WireError> {
    match tag {
        0 => Ok(BreakerState::Closed),
        1 => Ok(BreakerState::Open),
        2 => Ok(BreakerState::HalfOpen),
        _ => Err(WireError { offset: off }),
    }
}

/// The breaker's four `&'static str` transition causes, as wire tags.
/// An unknown cause (future code) maps to the reserved tag rather than
/// failing the append path.
fn cause_tag(cause: &str) -> u8 {
    match cause {
        "fault-threshold" => 0,
        "probation-elapsed" => 1,
        "probe-success" => 2,
        "probe-fault" => 3,
        _ => 255,
    }
}

fn cause_from(tag: u8, off: usize) -> Result<&'static str, WireError> {
    match tag {
        0 => Ok("fault-threshold"),
        1 => Ok("probation-elapsed"),
        2 => Ok("probe-success"),
        3 => Ok("probe-fault"),
        255 => Ok("unknown"),
        _ => Err(WireError { offset: off }),
    }
}

fn encode_admission_error(w: &mut ByteWriter, e: &AdmissionError) {
    match e {
        AdmissionError::QueueFull { tenant, capacity } => {
            w.u8(0).str(tenant).usize(*capacity);
        }
        AdmissionError::Shedding { tenant, pressure } => {
            w.u8(1).str(tenant).f64(*pressure);
        }
        AdmissionError::DeadlineInfeasible { needed_s, available_s } => {
            w.u8(2).f64(*needed_s).f64(*available_s);
        }
        AdmissionError::MalformedInput { detail } => {
            w.u8(3).str(detail);
        }
        AdmissionError::PodPartitioned { since_s } => {
            w.u8(4).f64(*since_s);
        }
    }
}

fn decode_admission_error(r: &mut ByteReader<'_>) -> Result<AdmissionError, WireError> {
    let off = r.offset();
    match r.u8()? {
        0 => Ok(AdmissionError::QueueFull { tenant: r.str()?, capacity: r.usize()? }),
        1 => Ok(AdmissionError::Shedding { tenant: r.str()?, pressure: r.f64()? }),
        2 => Ok(AdmissionError::DeadlineInfeasible { needed_s: r.f64()?, available_s: r.f64()? }),
        3 => Ok(AdmissionError::MalformedInput { detail: r.str()? }),
        4 => Ok(AdmissionError::PodPartitioned { since_s: r.f64()? }),
        _ => Err(WireError { offset: off }),
    }
}

fn encode_option_u64(w: &mut ByteWriter, v: Option<u64>) {
    match v {
        Some(x) => {
            w.bool(true).u64(x);
        }
        None => {
            w.bool(false);
        }
    }
}

fn decode_option_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>, WireError> {
    Ok(if r.bool()? { Some(r.u64()?) } else { None })
}

fn encode_event(w: &mut ByteWriter, ev: &ServiceEvent) {
    w.f64(ev.t_s);
    encode_option_u64(w, ev.job);
    encode_option_u64(w, ev.tenant.map(|t| t as u64));
    match &ev.kind {
        ServiceEventKind::Arrival { class } => {
            w.u8(0).u8(class_tag(*class));
        }
        ServiceEventKind::Admitted { queue_len } => {
            w.u8(1).usize(*queue_len);
        }
        ServiceEventKind::Rejected { error } => {
            w.u8(2);
            encode_admission_error(w, error);
        }
        ServiceEventKind::Dispatched { devices, attempt, degraded } => {
            w.u8(3).usize(devices.len());
            for d in devices {
                w.usize(*d);
            }
            w.u32(*attempt).bool(*degraded);
        }
        ServiceEventKind::Requeued { attempt } => {
            w.u8(4).u32(*attempt);
        }
        ServiceEventKind::Completed { deadline_met, sojourn_s, attempts } => {
            w.u8(5).bool(*deadline_met).f64(*sojourn_s).u32(*attempts);
        }
        ServiceEventKind::Failed { error } => {
            w.u8(6).str(error);
        }
        ServiceEventKind::Shed { reason } => {
            w.u8(7).u8(reason_tag(*reason));
        }
        ServiceEventKind::Breaker { transition } => {
            w.u8(8)
                .usize(transition.device)
                .f64(transition.t_s)
                .u8(state_tag(transition.from))
                .u8(state_tag(transition.to))
                .u8(cause_tag(transition.cause));
        }
        ServiceEventKind::Recovered { snapshot_epoch, replayed, requeued, rearrived } => {
            w.u8(9).u64(*snapshot_epoch).u64(*replayed).u64(*requeued).u64(*rearrived);
        }
    }
}

fn decode_event(r: &mut ByteReader<'_>) -> Result<ServiceEvent, WireError> {
    let t_s = r.f64()?;
    let job = decode_option_u64(r)?;
    let tenant = decode_option_u64(r)?.map(|t| t as usize);
    let off = r.offset();
    let kind = match r.u8()? {
        0 => {
            let off = r.offset();
            ServiceEventKind::Arrival { class: class_from(r.u8()?, off)? }
        }
        1 => ServiceEventKind::Admitted { queue_len: r.usize()? },
        2 => ServiceEventKind::Rejected { error: decode_admission_error(r)? },
        3 => {
            let n = r.usize()?;
            let mut devices = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                devices.push(r.usize()?);
            }
            ServiceEventKind::Dispatched { devices, attempt: r.u32()?, degraded: r.bool()? }
        }
        4 => ServiceEventKind::Requeued { attempt: r.u32()? },
        5 => ServiceEventKind::Completed {
            deadline_met: r.bool()?,
            sojourn_s: r.f64()?,
            attempts: r.u32()?,
        },
        6 => ServiceEventKind::Failed { error: r.str()? },
        7 => {
            let off = r.offset();
            ServiceEventKind::Shed { reason: reason_from(r.u8()?, off)? }
        }
        8 => {
            let device = r.usize()?;
            let t_s = r.f64()?;
            let off_from = r.offset();
            let from = state_from(r.u8()?, off_from)?;
            let off_to = r.offset();
            let to = state_from(r.u8()?, off_to)?;
            let off_cause = r.offset();
            let cause = cause_from(r.u8()?, off_cause)?;
            ServiceEventKind::Breaker {
                transition: crate::breaker::PoolTransition { device, t_s, from, to, cause },
            }
        }
        9 => ServiceEventKind::Recovered {
            snapshot_epoch: r.u64()?,
            replayed: r.u64()?,
            requeued: r.u64()?,
            rearrived: r.u64()?,
        },
        _ => return Err(WireError { offset: off }),
    };
    Ok(ServiceEvent { t_s, job, tenant, kind })
}

// ---------------------------------------------------------------------
// records
// ---------------------------------------------------------------------

/// The admission half of an [`ServiceRecord::Admission`] record.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionOutcome {
    /// The job joined its tenant queue.
    Admitted {
        /// Queue length after the push.
        queue_len: usize,
    },
    /// The job was refused at the door.
    Rejected {
        /// Why.
        error: AdmissionError,
    },
}

/// One journaled service state change. The journal frame supplies the
/// epoch and timestamp; the payload is this record's canonical byte
/// encoding.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceRecord {
    /// A job arrived *and* its admission outcome was decided — one
    /// atomic record, so truncation can never separate the two.
    Admission {
        /// Simulated arrival-processing time.
        t_s: f64,
        /// Job id.
        id: u64,
        /// Tenant index.
        tenant: usize,
        /// Service class (drives the starvation bound on recovery).
        class: JobClass,
        /// Admitted or rejected, with the event detail.
        outcome: AdmissionOutcome,
    },
    /// Any other service event (dispatch, requeue, failure, shed,
    /// breaker transition, recovery marker).
    Event(ServiceEvent),
    /// A job completed: the event *and* its verified result bytes in
    /// one atomic record, so a torn write can never strand a completion
    /// without its payload (or vice versa).
    Completed {
        /// The `Completed` service event.
        event: ServiceEvent,
        /// Uncompressed canonical encoding of the MSM result point.
        result: Vec<u8>,
        /// Whether the completing partition used a re-admitted device.
        used_readmitted: bool,
    },
    /// A stolen job was absorbed from another pod (no service event is
    /// emitted for this queue surgery, but the fold must see it).
    Absorbed {
        /// Absorption time.
        t_s: f64,
        /// Job id.
        id: u64,
        /// Tenant index.
        tenant: usize,
        /// Preserved execution attempt.
        attempt: u32,
    },
    /// A queued job was lifted out of this pod by the fleet's work
    /// stealing; it must not be resurrected here on recovery. The
    /// attempt rides along so a fleet restore that finds only this
    /// tombstone (the thief's absorption was torn away) can re-absorb
    /// the job elsewhere without resetting its retry budget.
    StolenOut {
        /// Steal time.
        t_s: f64,
        /// Job id.
        id: u64,
        /// Execution attempt the job carried out the door.
        attempt: u32,
    },
}

impl ServiceRecord {
    /// Canonical byte encoding (the journal frame payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Self::Admission { t_s, id, tenant, class, outcome } => {
                w.u8(0).f64(*t_s).u64(*id).usize(*tenant).u8(class_tag(*class));
                match outcome {
                    AdmissionOutcome::Admitted { queue_len } => {
                        w.u8(0).usize(*queue_len);
                    }
                    AdmissionOutcome::Rejected { error } => {
                        w.u8(1);
                        encode_admission_error(&mut w, error);
                    }
                }
            }
            Self::Event(ev) => {
                w.u8(1);
                encode_event(&mut w, ev);
            }
            Self::Completed { event, result, used_readmitted } => {
                w.u8(2);
                encode_event(&mut w, event);
                w.bytes(result).bool(*used_readmitted);
            }
            Self::Absorbed { t_s, id, tenant, attempt } => {
                w.u8(3).f64(*t_s).u64(*id).usize(*tenant).u32(*attempt);
            }
            Self::StolenOut { t_s, id, attempt } => {
                w.u8(4).f64(*t_s).u64(*id).u32(*attempt);
            }
        }
        w.finish()
    }

    /// Strict decode of a journal payload; trailing bytes are rejected.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(payload);
        let off = r.offset();
        let rec = match r.u8()? {
            0 => {
                let t_s = r.f64()?;
                let id = r.u64()?;
                let tenant = r.usize()?;
                let off_c = r.offset();
                let class = class_from(r.u8()?, off_c)?;
                let off_o = r.offset();
                let outcome = match r.u8()? {
                    0 => AdmissionOutcome::Admitted { queue_len: r.usize()? },
                    1 => AdmissionOutcome::Rejected { error: decode_admission_error(&mut r)? },
                    _ => return Err(WireError { offset: off_o }),
                };
                Self::Admission { t_s, id, tenant, class, outcome }
            }
            1 => Self::Event(decode_event(&mut r)?),
            2 => {
                let event = decode_event(&mut r)?;
                let result = r.bytes()?.to_vec();
                let used_readmitted = r.bool()?;
                Self::Completed { event, result, used_readmitted }
            }
            3 => Self::Absorbed {
                t_s: r.f64()?,
                id: r.u64()?,
                tenant: r.usize()?,
                attempt: r.u32()?,
            },
            4 => Self::StolenOut { t_s: r.f64()?, id: r.u64()?, attempt: r.u32()? },
            _ => return Err(WireError { offset: off }),
        };
        if !r.is_empty() {
            return Err(WireError { offset: r.offset() });
        }
        Ok(rec)
    }

    /// The service events this record reconstructs — the bridge from a
    /// recovered journal prefix back to the replayable event stream the
    /// soak invariants are checked over.
    pub fn events(&self) -> Vec<ServiceEvent> {
        match self {
            Self::Admission { t_s, id, tenant, class, outcome } => {
                let arrival = ServiceEvent {
                    t_s: *t_s,
                    job: Some(*id),
                    tenant: Some(*tenant),
                    kind: ServiceEventKind::Arrival { class: *class },
                };
                let second = ServiceEvent {
                    t_s: *t_s,
                    job: Some(*id),
                    tenant: Some(*tenant),
                    kind: match outcome {
                        AdmissionOutcome::Admitted { queue_len } => {
                            ServiceEventKind::Admitted { queue_len: *queue_len }
                        }
                        AdmissionOutcome::Rejected { error } => {
                            ServiceEventKind::Rejected { error: error.clone() }
                        }
                    },
                };
                vec![arrival, second]
            }
            Self::Event(ev) => vec![ev.clone()],
            Self::Completed { event, .. } => vec![event.clone()],
            Self::Absorbed { .. } | Self::StolenOut { .. } => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------
// the fold
// ---------------------------------------------------------------------

/// Where a journaled job currently stands.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobPhase {
    /// Waiting in its tenant queue.
    Queued {
        /// Next execution attempt.
        attempt: u32,
        /// When this queue epoch started (preserves the starvation
        /// bound across a restart).
        since_s: f64,
    },
    /// Executing on a partition; a crash loses the execution and the
    /// job re-joins the queue on recovery at the same attempt.
    InFlight {
        /// The attempt that was executing.
        attempt: u32,
    },
    /// Terminal: completed with a verified result.
    Done,
    /// Terminal: refused at admission.
    Rejected,
    /// Terminal: exhausted its attempts.
    Failed,
    /// Terminal: dropped by the shed policy.
    Shed,
    /// Lifted out by fleet work stealing — terminal *for this pod*.
    /// Keeps the attempt so a fleet restore that finds only this
    /// tombstone can re-absorb the job with its retry budget intact.
    StolenAway {
        /// Execution attempt the job carried out the door.
        attempt: u32,
    },
}

/// One journaled job: which tenant it belongs to and where it stands.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobEntry {
    /// Tenant index.
    pub tenant: usize,
    /// Lifecycle phase.
    pub phase: JobPhase,
}

/// Per-tenant counters, mirroring the service's internal accumulator so
/// a restored service reports continuous statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantCounters {
    /// Jobs that reached the door.
    pub arrivals: u64,
    /// Jobs admitted.
    pub admitted: u64,
    /// Jobs rejected at admission.
    pub rejected: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs failed after exhausting attempts.
    pub failed: u64,
    /// Jobs shed from the queue.
    pub shed: u64,
    /// Completions past their deadline.
    pub deadline_missed: u64,
    /// Arrival-to-completion times, in completion order.
    pub sojourns_s: Vec<f64>,
}

/// Per-device breaker state reconstructible from transition records.
/// `consecutive_faults` is deliberately absent: the streak is volatile
/// and resets to zero across a restart.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerRestore {
    /// Current breaker state.
    pub state: BreakerState,
    /// Completed open spells (drives the probation backoff).
    pub open_spells: u32,
    /// When the current open spell's probation elapses.
    pub open_until_s: f64,
}

impl Default for BreakerRestore {
    fn default() -> Self {
        Self { state: BreakerState::Closed, open_spells: 0, open_until_s: 0.0 }
    }
}

/// A durably completed job: id, accounting, and the canonical result
/// bytes (decoded back to a curve point on restore).
#[derive(Clone, Debug, PartialEq)]
pub struct CompletedEntry {
    /// Job id.
    pub id: u64,
    /// Tenant index.
    pub tenant: usize,
    /// Attempts consumed.
    pub attempts: u32,
    /// Whether a re-admitted device served the completion.
    pub used_readmitted: bool,
    /// Uncompressed canonical encoding of the result point.
    pub result: Vec<u8>,
}

/// The deterministic fold of a service journal: everything a restarted
/// pod needs that is not re-derivable from its static inputs.
///
/// `ServiceState` is both the recovery target *and* the shadow state
/// the live [`ServiceWal`] maintains — snapshots are its canonical
/// encoding, so snapshot-and-replay agree by construction.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceState {
    /// High-water simulated time over applied records.
    pub clock_s: f64,
    /// Epoch of the last applied record (0 = none).
    pub last_epoch: u64,
    /// Every journaled job, by id.
    pub jobs: BTreeMap<u64, JobEntry>,
    /// Per-tenant counters, indexed like the config's tenant table.
    pub tenants: Vec<TenantCounters>,
    /// Per-device breaker restore info.
    pub breakers: Vec<BreakerRestore>,
    /// Durably completed jobs, in completion order.
    pub completed: Vec<CompletedEntry>,
}

impl ServiceState {
    /// The initial (pre-history) state for a pod shape.
    pub fn new(n_tenants: usize, n_devices: usize) -> Self {
        Self {
            clock_s: 0.0,
            last_epoch: 0,
            jobs: BTreeMap::new(),
            tenants: vec![TenantCounters::default(); n_tenants],
            breakers: vec![BreakerRestore::default(); n_devices],
            completed: Vec::new(),
        }
    }

    fn bad(epoch: u64, detail: String) -> JournalError {
        JournalError::BadPayload { epoch, detail }
    }

    fn tenant_mut(
        &mut self,
        epoch: u64,
        tenant: usize,
    ) -> Result<&mut TenantCounters, JournalError> {
        let n = self.tenants.len();
        self.tenants
            .get_mut(tenant)
            .ok_or_else(|| Self::bad(epoch, format!("tenant {tenant} out of range (have {n})")))
    }

    fn job_mut(&mut self, epoch: u64, id: u64) -> Result<&mut JobEntry, JournalError> {
        self.jobs
            .get_mut(&id)
            .ok_or_else(|| Self::bad(epoch, format!("record names unknown job {id}")))
    }

    /// Folds one record into the state. Errors are typed, never panics:
    /// a semantically impossible record (unknown job, out-of-range
    /// tenant or device, an event kind that must ride an atomic record)
    /// is a [`JournalError::BadPayload`].
    pub fn apply(
        &mut self,
        epoch: u64,
        rec: &ServiceRecord,
        breaker: &BreakerConfig,
    ) -> Result<(), JournalError> {
        match rec {
            ServiceRecord::Admission { t_s, id, tenant, class: _, outcome } => {
                self.clock_s = self.clock_s.max(*t_s);
                if self.jobs.contains_key(id) {
                    return Err(Self::bad(epoch, format!("job {id} arrived twice")));
                }
                let counters = self.tenant_mut(epoch, *tenant)?;
                counters.arrivals += 1;
                let phase = match outcome {
                    AdmissionOutcome::Admitted { .. } => {
                        counters.admitted += 1;
                        JobPhase::Queued { attempt: 0, since_s: *t_s }
                    }
                    AdmissionOutcome::Rejected { .. } => {
                        counters.rejected += 1;
                        JobPhase::Rejected
                    }
                };
                self.jobs.insert(*id, JobEntry { tenant: *tenant, phase });
            }
            ServiceRecord::Event(ev) => {
                self.clock_s = self.clock_s.max(ev.t_s);
                match &ev.kind {
                    ServiceEventKind::Dispatched { attempt, .. } => {
                        let id = ev
                            .job
                            .ok_or_else(|| Self::bad(epoch, "dispatch without a job".into()))?;
                        self.job_mut(epoch, id)?.phase = JobPhase::InFlight { attempt: *attempt };
                    }
                    ServiceEventKind::Requeued { attempt } => {
                        let id = ev
                            .job
                            .ok_or_else(|| Self::bad(epoch, "requeue without a job".into()))?;
                        let since_s = ev.t_s;
                        self.job_mut(epoch, id)?.phase =
                            JobPhase::Queued { attempt: *attempt, since_s };
                    }
                    ServiceEventKind::Failed { .. } => {
                        let (id, tenant) = ev
                            .job
                            .zip(ev.tenant)
                            .ok_or_else(|| Self::bad(epoch, "failure without a job".into()))?;
                        self.tenant_mut(epoch, tenant)?.failed += 1;
                        self.job_mut(epoch, id)?.phase = JobPhase::Failed;
                    }
                    ServiceEventKind::Shed { .. } => {
                        let (id, tenant) = ev
                            .job
                            .zip(ev.tenant)
                            .ok_or_else(|| Self::bad(epoch, "shed without a job".into()))?;
                        self.tenant_mut(epoch, tenant)?.shed += 1;
                        self.job_mut(epoch, id)?.phase = JobPhase::Shed;
                    }
                    ServiceEventKind::Breaker { transition } => {
                        let n = self.breakers.len();
                        let b = self.breakers.get_mut(transition.device).ok_or_else(|| {
                            Self::bad(
                                epoch,
                                format!("device {} out of range (have {n})", transition.device),
                            )
                        })?;
                        if transition.to == BreakerState::Open {
                            // Mirrors `CircuitBreaker::trip`: probation
                            // is priced off the spell count *before*
                            // this trip increments it.
                            b.open_until_s =
                                transition.t_s + breaker.probation_for(b.open_spells);
                            b.open_spells += 1;
                        }
                        b.state = transition.to;
                    }
                    ServiceEventKind::Recovered { .. } => {}
                    ServiceEventKind::Arrival { .. }
                    | ServiceEventKind::Admitted { .. }
                    | ServiceEventKind::Rejected { .. }
                    | ServiceEventKind::Completed { .. } => {
                        return Err(Self::bad(
                            epoch,
                            "admission/completion events must ride their atomic records".into(),
                        ));
                    }
                }
            }
            ServiceRecord::Completed { event, result, used_readmitted } => {
                self.clock_s = self.clock_s.max(event.t_s);
                let ServiceEventKind::Completed { deadline_met, sojourn_s, attempts } = &event.kind
                else {
                    return Err(Self::bad(
                        epoch,
                        "completion record carries a non-completion event".into(),
                    ));
                };
                let (id, tenant) = event
                    .job
                    .zip(event.tenant)
                    .ok_or_else(|| Self::bad(epoch, "completion without a job".into()))?;
                let counters = self.tenant_mut(epoch, tenant)?;
                counters.completed += 1;
                if !deadline_met {
                    counters.deadline_missed += 1;
                }
                counters.sojourns_s.push(*sojourn_s);
                self.job_mut(epoch, id)?.phase = JobPhase::Done;
                self.completed.push(CompletedEntry {
                    id,
                    tenant,
                    attempts: *attempts,
                    used_readmitted: *used_readmitted,
                    result: result.clone(),
                });
            }
            ServiceRecord::Absorbed { t_s, id, tenant, attempt } => {
                self.clock_s = self.clock_s.max(*t_s);
                if *tenant >= self.tenants.len() {
                    return Err(Self::bad(
                        epoch,
                        format!("absorbed job {id} names tenant {tenant} out of range"),
                    ));
                }
                // Overwrite is legal: a job stolen away earlier may be
                // absorbed back during fleet rebalancing.
                self.jobs.insert(
                    *id,
                    JobEntry {
                        tenant: *tenant,
                        phase: JobPhase::Queued { attempt: *attempt, since_s: *t_s },
                    },
                );
            }
            ServiceRecord::StolenOut { t_s, id, attempt } => {
                self.clock_s = self.clock_s.max(*t_s);
                self.job_mut(epoch, *id)?.phase = JobPhase::StolenAway { attempt: *attempt };
            }
        }
        self.last_epoch = epoch;
        Ok(())
    }

    /// Canonical byte encoding — the snapshot payload. Deterministic:
    /// equal states encode to equal bytes (`CKPT-001` compares these).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(1); // version
        w.f64(self.clock_s).u64(self.last_epoch);
        w.usize(self.jobs.len());
        for (id, e) in &self.jobs {
            w.u64(*id).usize(e.tenant);
            match e.phase {
                JobPhase::Queued { attempt, since_s } => {
                    w.u8(0).u32(attempt).f64(since_s);
                }
                JobPhase::InFlight { attempt } => {
                    w.u8(1).u32(attempt);
                }
                JobPhase::Done => {
                    w.u8(2);
                }
                JobPhase::Rejected => {
                    w.u8(3);
                }
                JobPhase::Failed => {
                    w.u8(4);
                }
                JobPhase::Shed => {
                    w.u8(5);
                }
                JobPhase::StolenAway { attempt } => {
                    w.u8(6).u32(attempt);
                }
            }
        }
        w.usize(self.tenants.len());
        for t in &self.tenants {
            w.u64(t.arrivals)
                .u64(t.admitted)
                .u64(t.rejected)
                .u64(t.completed)
                .u64(t.failed)
                .u64(t.shed)
                .u64(t.deadline_missed)
                .usize(t.sojourns_s.len());
            for s in &t.sojourns_s {
                w.f64(*s);
            }
        }
        w.usize(self.breakers.len());
        for b in &self.breakers {
            w.u8(state_tag(b.state)).u32(b.open_spells).f64(b.open_until_s);
        }
        w.usize(self.completed.len());
        for c in &self.completed {
            w.u64(c.id).usize(c.tenant).u32(c.attempts).bool(c.used_readmitted).bytes(&c.result);
        }
        w.finish()
    }

    /// Strict decode of a snapshot payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        let off = r.offset();
        if r.u8()? != 1 {
            return Err(WireError { offset: off });
        }
        let clock_s = r.f64()?;
        let last_epoch = r.u64()?;
        let n_jobs = r.usize()?;
        let mut jobs = BTreeMap::new();
        for _ in 0..n_jobs {
            let id = r.u64()?;
            let tenant = r.usize()?;
            let off = r.offset();
            let phase = match r.u8()? {
                0 => JobPhase::Queued { attempt: r.u32()?, since_s: r.f64()? },
                1 => JobPhase::InFlight { attempt: r.u32()? },
                2 => JobPhase::Done,
                3 => JobPhase::Rejected,
                4 => JobPhase::Failed,
                5 => JobPhase::Shed,
                6 => JobPhase::StolenAway { attempt: r.u32()? },
                _ => return Err(WireError { offset: off }),
            };
            jobs.insert(id, JobEntry { tenant, phase });
        }
        let n_tenants = r.usize()?;
        let mut tenants = Vec::with_capacity(n_tenants.min(1024));
        for _ in 0..n_tenants {
            let mut t = TenantCounters {
                arrivals: r.u64()?,
                admitted: r.u64()?,
                rejected: r.u64()?,
                completed: r.u64()?,
                failed: r.u64()?,
                shed: r.u64()?,
                deadline_missed: r.u64()?,
                sojourns_s: Vec::new(),
            };
            let n = r.usize()?;
            for _ in 0..n {
                t.sojourns_s.push(r.f64()?);
            }
            tenants.push(t);
        }
        let n_breakers = r.usize()?;
        let mut breakers = Vec::with_capacity(n_breakers.min(4096));
        for _ in 0..n_breakers {
            let off = r.offset();
            breakers.push(BreakerRestore {
                state: state_from(r.u8()?, off)?,
                open_spells: r.u32()?,
                open_until_s: r.f64()?,
            });
        }
        let n_completed = r.usize()?;
        let mut completed = Vec::with_capacity(n_completed.min(4096));
        for _ in 0..n_completed {
            completed.push(CompletedEntry {
                id: r.u64()?,
                tenant: r.usize()?,
                attempts: r.u32()?,
                used_readmitted: r.bool()?,
                result: r.bytes()?.to_vec(),
            });
        }
        if !r.is_empty() {
            return Err(WireError { offset: r.offset() });
        }
        Ok(Self { clock_s, last_epoch, jobs, tenants, breakers, completed })
    }
}

// ---------------------------------------------------------------------
// the live WAL
// ---------------------------------------------------------------------

/// The service's live write-ahead log: a durable journal plus the
/// shadow [`ServiceState`] every append folds through. Journaling is
/// always on (it emits no events and advances no simulated time, so
/// existing behaviour is byte-identical); periodic snapshots are opt-in
/// via [`crate::service::ServiceConfig::snapshot_every`].
#[derive(Clone, Debug)]
pub struct ServiceWal {
    durable: DurableState,
    state: ServiceState,
    breaker: BreakerConfig,
    snapshot_every: u64,
}

impl ServiceWal {
    /// A fresh WAL for a pod shape.
    pub fn new(
        n_tenants: usize,
        n_devices: usize,
        breaker: BreakerConfig,
        snapshot_every: u64,
    ) -> Self {
        Self {
            durable: DurableState::new(),
            state: ServiceState::new(n_tenants, n_devices),
            breaker,
            snapshot_every,
        }
    }

    /// Resumes a WAL over recovered durable state (the restore path).
    /// `durable` should be the *reopened* state (torn tail dropped) and
    /// `state` the fold [`recover_state`] produced from it.
    pub fn resume(
        durable: DurableState,
        state: ServiceState,
        breaker: BreakerConfig,
        snapshot_every: u64,
    ) -> Self {
        Self { durable, state, breaker, snapshot_every }
    }

    /// Appends one record: encodes, journals, folds into the shadow
    /// state, and installs a snapshot when the epoch hits the
    /// configured cadence.
    pub fn append(&mut self, t_s: f64, rec: &ServiceRecord) -> u64 {
        let payload = rec.encode();
        let epoch = self.durable.append(t_s, &payload);
        // Invariant, not a recoverable error: live records are built
        // from the very state transitions the fold mirrors, so a fold
        // failure here is a bug in the service, never bad input.
        self.state
            .apply(epoch, rec, &self.breaker)
            .expect("live service records always fold into the shadow state");
        if self.snapshot_every > 0 && epoch.is_multiple_of(self.snapshot_every) {
            self.durable.install_snapshot(epoch, t_s, &self.state.encode());
        }
        epoch
    }

    /// The durable journal + snapshot bytes (what a crash preserves).
    pub fn durable(&self) -> &DurableState {
        &self.durable
    }

    /// The shadow fold of everything appended so far.
    pub fn state(&self) -> &ServiceState {
        &self.state
    }
}

/// What [`recover_state`] reconstructed, plus how it got there.
#[derive(Clone, Debug)]
pub struct WalRecovery {
    /// The folded state.
    pub state: ServiceState,
    /// Epoch of the snapshot recovery started from (0 = none).
    pub snapshot_epoch: u64,
    /// Journal records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Bytes of the decoded snapshot payload (0 = none).
    pub snapshot_payload_bytes: usize,
    /// Torn (incomplete) frame bytes dropped from the journal tail.
    pub torn_tail_bytes: usize,
}

/// Recovers a [`ServiceState`] from durable bytes: newest intact
/// snapshot plus a bounded replay of the records after it. A torn tail
/// is tolerated (dropped); any complete-but-corrupt frame, stale
/// snapshot or undecodable payload is a typed [`JournalError`].
pub fn recover_state(
    durable: &DurableState,
    n_tenants: usize,
    n_devices: usize,
    breaker: &BreakerConfig,
) -> Result<WalRecovery, JournalError> {
    let rec = durable.recover()?;
    let (mut state, snapshot_epoch, snapshot_payload_bytes) = match &rec.snapshot {
        Some(s) => {
            let st = ServiceState::decode(&s.payload).map_err(|e| JournalError::BadPayload {
                epoch: s.epoch,
                detail: format!("snapshot: {e}"),
            })?;
            if st.tenants.len() != n_tenants || st.breakers.len() != n_devices {
                return Err(JournalError::BadPayload {
                    epoch: s.epoch,
                    detail: format!(
                        "snapshot shape ({} tenants, {} devices) does not match the config \
                         ({n_tenants} tenants, {n_devices} devices)",
                        st.tenants.len(),
                        st.breakers.len()
                    ),
                });
            }
            (st, s.epoch, s.payload.len())
        }
        None => (ServiceState::new(n_tenants, n_devices), 0, 0),
    };
    let replayed_records = rec.records.len() as u64;
    for r in &rec.records {
        let sr = ServiceRecord::decode(&r.payload).map_err(|e| JournalError::BadPayload {
            epoch: r.epoch,
            detail: e.to_string(),
        })?;
        state.apply(r.epoch, &sr, breaker)?;
    }
    Ok(WalRecovery {
        state,
        snapshot_epoch,
        replayed_records,
        snapshot_payload_bytes,
        torn_tail_bytes: rec.torn_tail_bytes,
    })
}

/// Decodes the full event stream a durable journal witnesses — the
/// pre-crash half of the merged stream the crash soak checks service
/// invariants over. A torn tail is dropped first; the whole journal is
/// then replayed from its first record, snapshot ignored (the service
/// WAL never compacts, so the full history is present — snapshots
/// bound recovery *replay* cost, not journal storage).
pub fn decode_events(durable: &DurableState) -> Result<Vec<ServiceEvent>, JournalError> {
    let clean = durable.reopen()?;
    let records = clean.journal.replay()?;
    let mut out = Vec::new();
    for r in &records {
        let sr = ServiceRecord::decode(&r.payload).map_err(|e| JournalError::BadPayload {
            epoch: r.epoch,
            detail: e.to_string(),
        })?;
        out.extend(sr.events());
    }
    Ok(out)
}

/// How a [`crate::service::ProverService::restore`] got back on its
/// feet, including the modelled cost comparison against restarting from
/// scratch.
#[derive(Clone, Debug)]
pub struct RecoveryInfo {
    /// Epoch of the snapshot recovery started from (0 = none).
    pub snapshot_epoch: u64,
    /// Records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Torn frame bytes dropped from the journal tail.
    pub torn_tail_bytes: usize,
    /// In-flight or queued jobs put back on a queue.
    pub requeued_jobs: u64,
    /// Jobs whose arrival was not yet durable, re-seeded as arrivals.
    pub rearrived_jobs: u64,
    /// Modelled recovery cost: base + snapshot decode + bounded replay.
    pub recovery_cost_s: f64,
    /// Modelled cost of recomputing the lost history from scratch (the
    /// simulated clock at the crash).
    pub scratch_cost_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::PoolTransition;

    fn ev(t_s: f64, job: Option<u64>, tenant: Option<usize>, kind: ServiceEventKind) -> ServiceEvent {
        ServiceEvent { t_s, job, tenant, kind }
    }

    #[test]
    fn records_roundtrip() {
        let records = vec![
            ServiceRecord::Admission {
                t_s: 0.5,
                id: 3,
                tenant: 1,
                class: JobClass::Batch,
                outcome: AdmissionOutcome::Admitted { queue_len: 2 },
            },
            ServiceRecord::Admission {
                t_s: 0.75,
                id: 4,
                tenant: 0,
                class: JobClass::Interactive,
                outcome: AdmissionOutcome::Rejected {
                    error: AdmissionError::DeadlineInfeasible { needed_s: 2.0, available_s: 1.0 },
                },
            },
            ServiceRecord::Event(ev(
                1.0,
                Some(3),
                Some(1),
                ServiceEventKind::Dispatched { devices: vec![0, 2], attempt: 0, degraded: false },
            )),
            ServiceRecord::Event(ev(
                1.5,
                None,
                None,
                ServiceEventKind::Breaker {
                    transition: PoolTransition {
                        device: 2,
                        t_s: 1.5,
                        from: BreakerState::Closed,
                        to: BreakerState::Open,
                        cause: "fault-threshold",
                    },
                },
            )),
            ServiceRecord::Completed {
                event: ev(
                    2.0,
                    Some(3),
                    Some(1),
                    ServiceEventKind::Completed { deadline_met: true, sojourn_s: 1.5, attempts: 1 },
                ),
                result: vec![0, 1, 2, 3],
                used_readmitted: true,
            },
            ServiceRecord::Absorbed { t_s: 2.5, id: 9, tenant: 0, attempt: 2 },
            ServiceRecord::StolenOut { t_s: 3.0, id: 9, attempt: 1 },
            ServiceRecord::Admission {
                t_s: 3.1,
                id: 11,
                tenant: 1,
                class: JobClass::Batch,
                outcome: AdmissionOutcome::Rejected {
                    error: AdmissionError::MalformedInput {
                        detail: "point 2 is not on the curve".into(),
                    },
                },
            },
            ServiceRecord::Admission {
                t_s: 3.2,
                id: 12,
                tenant: 0,
                class: JobClass::Interactive,
                outcome: AdmissionOutcome::Rejected {
                    error: AdmissionError::PodPartitioned { since_s: 2.75 },
                },
            },
            ServiceRecord::Event(ev(
                3.5,
                None,
                None,
                ServiceEventKind::Recovered {
                    snapshot_epoch: 4,
                    replayed: 2,
                    requeued: 1,
                    rearrived: 0,
                },
            )),
        ];
        for r in &records {
            let bytes = r.encode();
            assert_eq!(&ServiceRecord::decode(&bytes).expect("roundtrips"), r);
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = ServiceRecord::StolenOut { t_s: 1.0, id: 7, attempt: 0 }.encode();
        bytes.push(0);
        assert!(ServiceRecord::decode(&bytes).is_err());
        assert!(ServiceRecord::decode(&[200]).is_err(), "unknown tag rejected");
        assert!(ServiceRecord::decode(&[]).is_err(), "empty payload rejected");
    }

    #[test]
    fn fold_tracks_phases_counters_and_breakers() {
        let bc = BreakerConfig::default();
        let mut st = ServiceState::new(2, 4);
        st.apply(
            1,
            &ServiceRecord::Admission {
                t_s: 0.5,
                id: 1,
                tenant: 0,
                class: JobClass::Interactive,
                outcome: AdmissionOutcome::Admitted { queue_len: 1 },
            },
            &bc,
        )
        .unwrap();
        assert_eq!(st.jobs[&1].phase, JobPhase::Queued { attempt: 0, since_s: 0.5 });
        assert_eq!(st.tenants[0].arrivals, 1);
        assert_eq!(st.tenants[0].admitted, 1);

        st.apply(
            2,
            &ServiceRecord::Event(ev(
                1.0,
                Some(1),
                Some(0),
                ServiceEventKind::Dispatched { devices: vec![0], attempt: 0, degraded: false },
            )),
            &bc,
        )
        .unwrap();
        assert_eq!(st.jobs[&1].phase, JobPhase::InFlight { attempt: 0 });

        // Two trips price probation off the pre-trip spell count.
        for (epoch, (t, from, to, cause)) in [
            (3u64, (2.0, BreakerState::Closed, BreakerState::Open, "fault-threshold")),
            (4, (5.0, BreakerState::Open, BreakerState::HalfOpen, "probation-elapsed")),
            (5, (5.5, BreakerState::HalfOpen, BreakerState::Open, "probe-fault")),
        ] {
            st.apply(
                epoch,
                &ServiceRecord::Event(ev(
                    t,
                    None,
                    None,
                    ServiceEventKind::Breaker {
                        transition: PoolTransition { device: 2, t_s: t, from, to, cause },
                    },
                )),
                &bc,
            )
            .unwrap();
        }
        assert_eq!(st.breakers[2].open_spells, 2);
        assert_eq!(st.breakers[2].state, BreakerState::Open);
        assert_eq!(st.breakers[2].open_until_s, 5.5 + bc.probation_for(1));

        st.apply(
            6,
            &ServiceRecord::Completed {
                event: ev(
                    6.0,
                    Some(1),
                    Some(0),
                    ServiceEventKind::Completed {
                        deadline_met: false,
                        sojourn_s: 5.5,
                        attempts: 1,
                    },
                ),
                result: vec![1, 2],
                used_readmitted: false,
            },
            &bc,
        )
        .unwrap();
        assert_eq!(st.jobs[&1].phase, JobPhase::Done);
        assert_eq!(st.tenants[0].completed, 1);
        assert_eq!(st.tenants[0].deadline_missed, 1);
        assert_eq!(st.completed.len(), 1);
        assert_eq!(st.last_epoch, 6);
        assert_eq!(st.clock_s, 6.0);

        // Canonical encoding roundtrips byte-exactly.
        let bytes = st.encode();
        let decoded = ServiceState::decode(&bytes).expect("snapshot roundtrips");
        assert_eq!(decoded, st);
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn fold_rejects_semantic_garbage() {
        let bc = BreakerConfig::default();
        let mut st = ServiceState::new(1, 1);
        // Unknown job.
        assert!(matches!(
            st.apply(1, &ServiceRecord::StolenOut { t_s: 0.0, id: 9, attempt: 0 }, &bc),
            Err(JournalError::BadPayload { .. })
        ));
        // Out-of-range tenant.
        assert!(matches!(
            st.apply(
                1,
                &ServiceRecord::Admission {
                    t_s: 0.0,
                    id: 1,
                    tenant: 5,
                    class: JobClass::Batch,
                    outcome: AdmissionOutcome::Admitted { queue_len: 1 },
                },
                &bc
            ),
            Err(JournalError::BadPayload { .. })
        ));
        // A bare Admitted event outside its atomic record.
        assert!(matches!(
            st.apply(
                1,
                &ServiceRecord::Event(ev(
                    0.0,
                    Some(1),
                    Some(0),
                    ServiceEventKind::Admitted { queue_len: 1 }
                )),
                &bc
            ),
            Err(JournalError::BadPayload { .. })
        ));
    }

    #[test]
    fn wal_snapshot_equals_fold_and_recovery_replays_it() {
        let bc = BreakerConfig::default();
        let mut wal = ServiceWal::new(2, 2, bc, 2);
        let recs = vec![
            ServiceRecord::Admission {
                t_s: 0.1,
                id: 1,
                tenant: 0,
                class: JobClass::Interactive,
                outcome: AdmissionOutcome::Admitted { queue_len: 1 },
            },
            ServiceRecord::Event(ev(
                0.2,
                Some(1),
                Some(0),
                ServiceEventKind::Dispatched { devices: vec![0], attempt: 0, degraded: false },
            )),
            ServiceRecord::Admission {
                t_s: 0.3,
                id: 2,
                tenant: 1,
                class: JobClass::Batch,
                outcome: AdmissionOutcome::Admitted { queue_len: 1 },
            },
            ServiceRecord::Completed {
                event: ev(
                    0.4,
                    Some(1),
                    Some(0),
                    ServiceEventKind::Completed { deadline_met: true, sojourn_s: 0.3, attempts: 1 },
                ),
                result: vec![7, 7],
                used_readmitted: false,
            },
        ];
        for r in &recs {
            let t = match r {
                ServiceRecord::Admission { t_s, .. } => *t_s,
                ServiceRecord::Event(e) | ServiceRecord::Completed { event: e, .. } => e.t_s,
                ServiceRecord::Absorbed { t_s, .. } | ServiceRecord::StolenOut { t_s, .. } => *t_s,
            };
            wal.append(t, r);
        }
        // Recovery = snapshot (epoch 4) + 0 replayed records here.
        let rec = recover_state(wal.durable(), 2, 2, &bc).expect("clean log recovers");
        assert_eq!(&rec.state, wal.state(), "snapshot + replay equals the live shadow fold");
        assert_eq!(rec.snapshot_epoch, 4);
        assert_eq!(rec.replayed_records, 0);

        // Truncating between records replays the un-snapshotted suffix
        // and still agrees with an incremental fold.
        let crashed = wal.durable().truncate_records(3);
        let rec3 = recover_state(&crashed, 2, 2, &bc).expect("prefix recovers");
        assert_eq!(rec3.snapshot_epoch, 2);
        assert_eq!(rec3.replayed_records, 1);
        let mut byhand = ServiceState::new(2, 2);
        for (i, r) in recs[..3].iter().enumerate() {
            byhand.apply(i as u64 + 1, r, &bc).unwrap();
        }
        assert_eq!(rec3.state, byhand);

        // The decoded event stream is the Admission/Completed expansion.
        let events = decode_events(&crashed).expect("events decode");
        assert_eq!(events.len(), 5, "2 admissions × 2 events + 1 dispatch");
        assert!(matches!(events[0].kind, ServiceEventKind::Arrival { .. }));
        assert!(matches!(events[1].kind, ServiceEventKind::Admitted { .. }));
    }
}
