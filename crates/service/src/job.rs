//! Proof jobs as the service sees them: an MSM instance plus the
//! scheduling metadata (tenant, class, arrival, deadline) the admission
//! controller and dispatcher key on.

use distmsm_ec::{Curve, MsmInstance};

/// Service class of a job: decides its starvation bound and whether the
/// shed policy may drop it at the door under overload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobClass {
    /// Latency-sensitive (a user waiting on a proof): short starvation
    /// bound, never shed at admission while the queue has room.
    Interactive,
    /// Throughput work (batch proving, witness pre-computation): long
    /// starvation bound, first to be shed under pressure.
    Batch,
}

impl JobClass {
    /// Short stable label used in events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Interactive => "interactive",
            Self::Batch => "batch",
        }
    }
}

/// Why a previously-admitted job was shed instead of served.
///
/// Jobs refused *at the door* carry an
/// [`crate::admission::AdmissionError`] instead; a `ShedReason` always
/// names a job the service had accepted responsibility for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The job sat queued past its class's starvation bound while the
    /// pool served other work.
    Starvation,
    /// The job sat queued past its starvation bound while **every**
    /// device breaker was open — there was nothing to serve it with.
    PoolQuarantined,
}

impl ShedReason {
    /// Short stable label used in events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Starvation => "starvation",
            Self::PoolQuarantined => "pool-quarantined",
        }
    }
}

/// One proof job submitted to the service.
#[derive(Clone, Debug)]
pub struct JobSpec<C: Curve> {
    /// Caller-chosen id, unique within a run.
    pub id: u64,
    /// Index into the service's tenant table.
    pub tenant: usize,
    /// Service class (starvation bound, shed priority).
    pub class: JobClass,
    /// Arrival time on the simulated clock, seconds.
    pub arrival_s: f64,
    /// Optional absolute completion deadline, simulated seconds.
    /// Admission rejects jobs whose analytic estimate cannot meet it.
    pub deadline_s: Option<f64>,
    /// The MSM to execute.
    pub instance: MsmInstance<C>,
}
