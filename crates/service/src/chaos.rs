//! Wall-clock chaos schedules: fault *windows* on the simulated clock
//! that the service lowers to the engine's per-attempt [`FaultPlan`]
//! coordinates at each dispatch.
//!
//! The engine's fault plans are event-indexed (device, work event,
//! attempt) — perfect for reproducing one MSM, but a service soak needs
//! faults that exist *in time*: a device that is broken from t=100s to
//! t=300s fails every attempt dispatched in that interval and none
//! after. [`ChaosSchedule::fault_plan_for`] does the lowering: a window
//! active at the dispatch time becomes an attempt-scoped `FaultEvent`
//! (or `LinkFault`) against the dispatched partition, with global device
//! ids mapped to partition-local ranks.
//!
//! All generation is **prefix-stable**: `random` draws a fixed number of
//! values per window in sequence, so shrinking the window count keeps
//! every earlier window bit-identical — the property the soak shrinker
//! relies on.

use distmsm_gpu_sim::fault::splitmix64;
use distmsm_gpu_sim::{FaultEvent, FaultKind, FaultPlan, LinkFault};

/// A device fault active over a simulated-clock interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceFaultWindow {
    /// Global device id the window strikes.
    pub device: usize,
    /// Window start (inclusive), simulated seconds.
    pub t0_s: f64,
    /// Window end (exclusive), simulated seconds.
    pub t1_s: f64,
    /// What happens to dispatches overlapping the window.
    pub kind: FaultKind,
}

/// A link fault active over a simulated-clock interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaultWindow {
    /// Global GPU rank whose port fails.
    pub rank: usize,
    /// Window start (inclusive), simulated seconds.
    pub t0_s: f64,
    /// Window end (exclusive), simulated seconds.
    pub t1_s: f64,
    /// `true` → the host/PCIe port fails, `false` → the peer port.
    pub host_port: bool,
}

/// A deterministic chaos schedule: device and link fault windows on the
/// simulated clock.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosSchedule {
    /// Device fault windows.
    pub device_windows: Vec<DeviceFaultWindow>,
    /// Link fault windows.
    pub link_windows: Vec<LinkFaultWindow>,
}

impl ChaosSchedule {
    /// The empty schedule: nothing ever fails.
    pub fn none() -> Self {
        Self::default()
    }

    /// A schedule where one device fail-stops on every dispatch, forever
    /// — the soak's "always-faulty device must end quarantined" probe.
    pub fn always_faulty(device: usize) -> Self {
        Self {
            device_windows: vec![DeviceFaultWindow {
                device,
                t0_s: 0.0,
                t1_s: f64::INFINITY,
                kind: FaultKind::FailStop,
            }],
            link_windows: Vec::new(),
        }
    }

    /// Merges another schedule's windows into this one.
    #[must_use]
    pub fn merged(mut self, other: Self) -> Self {
        self.device_windows.extend(other.device_windows);
        self.link_windows.extend(other.link_windows);
        self
    }

    /// A seeded random schedule: `n_device_windows` device faults (half
    /// fail-stop, a quarter stragglers, a quarter bit-flips) and
    /// `n_link_windows` link faults, uniformly started over
    /// `[0, horizon_s)` with durations up to ~8% of the horizon.
    ///
    /// Prefix-stable: window `i` always consumes the same PRNG draws, so
    /// reducing either count leaves the surviving windows unchanged.
    pub fn random(
        seed: u64,
        n_devices: usize,
        n_device_windows: usize,
        n_link_windows: usize,
        horizon_s: f64,
    ) -> Self {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut u = || splitmix64(&mut state) as f64 / u64::MAX as f64;
        let n_devices = n_devices.max(1);
        let mut device_windows = Vec::with_capacity(n_device_windows);
        for _ in 0..n_device_windows {
            // Fixed draw count per window (device, start, duration, kind
            // selector) keeps the stream prefix-stable.
            let device = (u() * n_devices as f64) as usize % n_devices;
            let t0_s = u() * horizon_s;
            let dur = (0.005 + 0.075 * u()) * horizon_s;
            let sel = u();
            let kind = if sel < 0.5 {
                FaultKind::FailStop
            } else if sel < 0.75 {
                FaultKind::Straggler { slowdown: 4.0 + 4.0 * sel }
            } else {
                FaultKind::BitFlip
            };
            device_windows.push(DeviceFaultWindow { device, t0_s, t1_s: t0_s + dur, kind });
        }
        let mut link_windows = Vec::with_capacity(n_link_windows);
        for _ in 0..n_link_windows {
            let rank = (u() * n_devices as f64) as usize % n_devices;
            let t0_s = u() * horizon_s;
            let dur = (0.005 + 0.045 * u()) * horizon_s;
            let host_port = u() < 0.5;
            link_windows.push(LinkFaultWindow { rank, t0_s, t1_s: t0_s + dur, host_port });
        }
        Self { device_windows, link_windows }
    }

    /// True when a window covers time `t` (start inclusive, end
    /// exclusive; an infinite end covers everything after start).
    fn covers(t0: f64, t1: f64, t: f64) -> bool {
        t >= t0 && t < t1
    }

    /// Lowers the schedule to an engine [`FaultPlan`] for a dispatch of
    /// `devices` (global ids, in partition-rank order) starting at
    /// `t_s`, as execution attempt `attempt`.
    ///
    /// Device ids in the returned plan are **partition-local ranks**
    /// (indices into `devices`), matching the `MultiGpuSystem` the
    /// dispatch builds. Windows covering devices outside the partition
    /// contribute nothing.
    pub fn fault_plan_for(&self, devices: &[usize], t_s: f64, attempt: u32) -> FaultPlan {
        let mut plan = FaultPlan::none();
        for w in &self.device_windows {
            if !Self::covers(w.t0_s, w.t1_s, t_s) {
                continue;
            }
            if let Some(local) = devices.iter().position(|&d| d == w.device) {
                plan.events.push(FaultEvent {
                    device: local,
                    at_event: 0,
                    attempt,
                    kind: w.kind,
                });
            }
        }
        for w in &self.link_windows {
            if !Self::covers(w.t0_s, w.t1_s, t_s) {
                continue;
            }
            if let Some(local) = devices.iter().position(|&d| d == w.rank) {
                plan.link_faults.push(if w.host_port {
                    LinkFault::HostPortDown { rank: local }
                } else {
                    LinkFault::PeerPortDown { rank: local }
                });
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_prefix_stable_under_shrinking() {
        let full = ChaosSchedule::random(7, 8, 12, 6, 1000.0);
        let fewer_links = ChaosSchedule::random(7, 8, 12, 3, 1000.0);
        assert_eq!(full.device_windows, fewer_links.device_windows);
        assert_eq!(&full.link_windows[..3], &fewer_links.link_windows[..]);
        let fewer_devs = ChaosSchedule::random(7, 8, 6, 6, 1000.0);
        assert_eq!(&full.device_windows[..6], &fewer_devs.device_windows[..]);
    }

    #[test]
    fn lowering_maps_global_devices_to_partition_ranks() {
        let chaos = ChaosSchedule {
            device_windows: vec![DeviceFaultWindow {
                device: 6,
                t0_s: 10.0,
                t1_s: 20.0,
                kind: FaultKind::FailStop,
            }],
            link_windows: vec![LinkFaultWindow { rank: 2, t0_s: 0.0, t1_s: 100.0, host_port: true }],
        };
        // Device 6 is rank 1 of the partition [4, 6]; rank 2 is absent.
        let plan = chaos.fault_plan_for(&[4, 6], 15.0, 3);
        assert_eq!(plan.events.len(), 1);
        assert_eq!(plan.events[0].device, 1);
        assert_eq!(plan.events[0].attempt, 3);
        assert!(plan.link_faults.is_empty());
        // Outside the window nothing fires.
        assert!(chaos.fault_plan_for(&[4, 6], 25.0, 0).is_empty());
        // Device 6 not in partition → nothing fires.
        assert!(chaos.fault_plan_for(&[0, 1], 15.0, 0).is_empty());
    }

    #[test]
    fn always_faulty_covers_every_time() {
        let chaos = ChaosSchedule::always_faulty(3);
        for t in [0.0, 1.0, 1e9] {
            let plan = chaos.fault_plan_for(&[3], t, 0);
            assert_eq!(plan.events.len(), 1, "t={t}");
        }
    }
}
