//! Admission control: bounded per-tenant queues, a typed rejection
//! error, and the explicit shed policy that trades batch work for
//! interactive survival under overload.

use crate::job::JobClass;

/// Why the service refused a job at the door.
///
/// Marked `#[non_exhaustive]`: admission policies grow (quota classes,
/// priority preemption) and a new rejection reason must not be a
/// breaking change for downstream matchers.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The tenant's bounded queue is at capacity.
    QueueFull {
        /// Tenant whose queue is full.
        tenant: String,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The shed policy is refusing this job class while system pressure
    /// exceeds the shed threshold.
    Shedding {
        /// Tenant whose job was shed.
        tenant: String,
        /// Queue pressure (0 = idle, 1 = every queue full) at refusal.
        pressure: f64,
    },
    /// The analytic cost estimate says the job cannot finish by its
    /// deadline even if dispatched immediately.
    DeadlineInfeasible {
        /// Estimated execution seconds on the configured partition.
        needed_s: f64,
        /// Seconds remaining until the deadline at arrival.
        available_s: f64,
    },
    /// Admission-time input validation failed: an off-curve point, a
    /// point outside the prime-order subgroup, or a non-canonical
    /// scalar encoding. Garbage is refused at the door instead of
    /// corrupting the engine's group arithmetic silently.
    MalformedInput {
        /// Human-readable description of the first violation
        /// (stable: derived from [`distmsm_ec::InputViolation`]).
        detail: String,
    },
    /// The pod is partitioned from its coordinator (its lease lapsed or
    /// heartbeat responses stopped): it finishes in-flight work in
    /// degraded mode but sheds new arrivals, because any admission now
    /// could be double-placed by the coordinator on a healthy pod.
    PodPartitioned {
        /// Simulated time the pod entered degraded mode.
        since_s: f64,
    },
}

impl AdmissionError {
    /// Short stable label used in events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Self::QueueFull { .. } => "queue-full",
            Self::Shedding { .. } => "shedding",
            Self::DeadlineInfeasible { .. } => "deadline-infeasible",
            Self::MalformedInput { .. } => "malformed-input",
            Self::PodPartitioned { .. } => "pod-partitioned",
        }
    }
}

impl core::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::QueueFull { tenant, capacity } => {
                write!(f, "tenant {tenant}: queue full ({capacity} jobs)")
            }
            Self::Shedding { tenant, pressure } => {
                write!(f, "tenant {tenant}: shedding batch work at pressure {pressure:.2}")
            }
            Self::DeadlineInfeasible { needed_s, available_s } => {
                write!(
                    f,
                    "deadline infeasible: needs {needed_s:.3e}s, {available_s:.3e}s available"
                )
            }
            Self::MalformedInput { detail } => {
                write!(f, "malformed input: {detail}")
            }
            Self::PodPartitioned { since_s } => {
                write!(f, "pod partitioned from coordinator since t={since_s:.3}s")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// One tenant of the service: a named bounded queue with a dispatch
/// weight.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Display name (stable across runs; keys the per-tenant report).
    pub name: String,
    /// Maximum number of queued (admitted, not yet dispatched) jobs.
    pub queue_capacity: usize,
    /// Dispatch tie-break weight: among jobs with equal effective
    /// deadlines, higher-weight tenants go first.
    pub weight: f64,
}

impl TenantConfig {
    /// A tenant with the given name, an 8-job queue and weight 1.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            queue_capacity: 8,
            weight: 1.0,
        }
    }

    /// Sets the queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Sets the dispatch weight.
    #[must_use]
    pub fn with_weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }
}

/// The explicit load-shed policy: *when* the service starts refusing
/// work and *what* it refuses, instead of silent drops.
///
/// Pressure is total queued jobs over total queue capacity, in `[0, 1]`.
#[derive(Clone, Copy, Debug)]
pub struct ShedPolicy {
    /// Pressure at or above which batch-class jobs are refused at the
    /// door ([`AdmissionError::Shedding`]). Interactive jobs are never
    /// door-shed; their protection is the queue bound itself.
    pub shed_pressure: f64,
    /// Pressure at or above which dispatch trades latency for survival:
    /// jobs run on the degraded (smaller) partition size so more jobs
    /// run concurrently.
    pub degrade_pressure: f64,
    /// The completion-rate floor the policy promises: the soak asserts
    /// `completed / admitted` stays at or above this under chaos.
    pub min_completion_rate: f64,
    /// Starvation bound for interactive jobs, seconds of continuous
    /// queue wait.
    pub interactive_bound_s: f64,
    /// Starvation bound for batch jobs, seconds of continuous queue
    /// wait.
    pub batch_bound_s: f64,
}

impl ShedPolicy {
    /// The starvation bound for a job class, in seconds.
    pub fn class_bound(&self, class: JobClass) -> f64 {
        match class {
            JobClass::Interactive => self.interactive_bound_s,
            JobClass::Batch => self.batch_bound_s,
        }
    }
}

impl Default for ShedPolicy {
    fn default() -> Self {
        Self {
            shed_pressure: 0.75,
            degrade_pressure: 0.5,
            min_completion_rate: 0.5,
            interactive_bound_s: 2.0,
            batch_bound_s: 30.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_error_displays_and_labels() {
        let e = AdmissionError::QueueFull { tenant: "a".into(), capacity: 4 };
        assert_eq!(e.label(), "queue-full");
        assert!(e.to_string().contains("queue full"));
        let e = AdmissionError::Shedding { tenant: "b".into(), pressure: 0.9 };
        assert_eq!(e.label(), "shedding");
        assert!(e.to_string().contains("0.90"));
        let e = AdmissionError::DeadlineInfeasible { needed_s: 2.0, available_s: 1.0 };
        assert_eq!(e.label(), "deadline-infeasible");
        assert!(e.to_string().contains("infeasible"));
        let e = AdmissionError::MalformedInput { detail: "point 3 is not on the curve".into() };
        assert_eq!(e.label(), "malformed-input");
        assert!(e.to_string().contains("point 3"));
        let e = AdmissionError::PodPartitioned { since_s: 12.5 };
        assert_eq!(e.label(), "pod-partitioned");
        assert!(e.to_string().contains("12.5"));
    }

    #[test]
    fn shed_policy_bounds_by_class() {
        let p = ShedPolicy::default();
        assert!(p.class_bound(JobClass::Interactive) < p.class_bound(JobClass::Batch));
        assert!(p.shed_pressure > p.degrade_pressure);
    }
}
