//! Per-device circuit breakers: the health-gating state machine that
//! quarantines a flaky simulated GPU instead of letting it poison every
//! subsequent request.
//!
//! ```text
//!            fault_threshold consecutive faults
//!   CLOSED ────────────────────────────────────▶ OPEN
//!     ▲                                           │ probation backoff
//!     │ probe succeeds                            ▼ elapses
//!     └──────────────────────────────────────  HALF-OPEN
//!                    probe faults: back to OPEN, backoff doubles
//! ```
//!
//! The probation backoff saturates at a cap (same rationale as
//! `RetryPolicy::backoff_for`: `factor^k` overflows to infinity long
//! before `u32::MAX` spells).

/// The three breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the device is eligible for any dispatch.
    Closed,
    /// Quarantined: no dispatch may touch the device until its
    /// probation window elapses.
    Open,
    /// Probation: the device may receive *probe* traffic (at most one
    /// half-open device per dispatch) to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Short stable label used in events, reports and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Closed => "closed",
            Self::Open => "open",
            Self::HalfOpen => "half-open",
        }
    }
}

/// Tunables of the per-device breaker state machine.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive faults that trip a closed breaker open.
    pub fault_threshold: u32,
    /// First probation window, seconds.
    pub probation_base_s: f64,
    /// Probation growth per consecutive open spell (>= 1).
    pub probation_factor: f64,
    /// Saturation cap on the probation window, seconds.
    pub probation_cap_s: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            fault_threshold: 3,
            probation_base_s: 2.0,
            probation_factor: 2.0,
            probation_cap_s: 64.0,
        }
    }
}

impl BreakerConfig {
    /// The probation window after `spell` consecutive open spells
    /// (0-based: the first trip waits `probation_base_s`), saturating at
    /// [`Self::probation_cap_s`] instead of overflowing.
    pub fn probation_for(&self, spell: u32) -> f64 {
        let raw = self.probation_base_s * self.probation_factor.powi(spell.min(i32::MAX as u32) as i32);
        if raw.is_finite() {
            raw.min(self.probation_cap_s)
        } else {
            self.probation_cap_s
        }
    }
}

/// One recorded breaker transition — the pool-state timeline entry and
/// the payload of `Breaker` service events and telemetry instants.
#[derive(Clone, Debug, PartialEq)]
pub struct PoolTransition {
    /// Device the transition belongs to.
    pub device: usize,
    /// Transition time, simulated seconds.
    pub t_s: f64,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Short cause label (`"fault-threshold"`, `"probation-elapsed"`,
    /// `"probe-success"`, `"probe-fault"`).
    pub cause: &'static str,
}

/// The breaker state machine for one device.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_faults: u32,
    /// Completed open spells (drives the probation backoff).
    open_spells: u32,
    /// When the current open spell's probation elapses.
    open_until_s: f64,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new()
    }
}

impl CircuitBreaker {
    /// A fresh closed breaker.
    pub fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_faults: 0,
            open_spells: 0,
            open_until_s: 0.0,
        }
    }

    /// Rebuilds a breaker from durable recovery state.
    ///
    /// `open_spells` and `open_until_s` are reconstructed from the
    /// journal's `Breaker` transition records; `consecutive_faults`
    /// legitimately resets to zero across a restart (the fault streak
    /// was in volatile memory, and a conservative reset only delays —
    /// never skips — the next trip).
    pub fn restore(state: BreakerState, open_spells: u32, open_until_s: f64) -> Self {
        Self { state, consecutive_faults: 0, open_spells, open_until_s }
    }

    /// Current state (as of the last `poll`).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times this breaker has tripped open so far.
    pub fn open_spells(&self) -> u32 {
        self.open_spells
    }

    /// When the current probation window elapses (meaningful only while
    /// [`BreakerState::Open`]).
    pub fn open_until_s(&self) -> f64 {
        self.open_until_s
    }

    /// Advances the clock: an open breaker whose probation elapsed moves
    /// to half-open.
    pub fn poll(&mut self, device: usize, now_s: f64) -> Option<PoolTransition> {
        if self.state == BreakerState::Open && now_s >= self.open_until_s {
            self.state = BreakerState::HalfOpen;
            return Some(PoolTransition {
                device,
                t_s: now_s,
                from: BreakerState::Open,
                to: BreakerState::HalfOpen,
                cause: "probation-elapsed",
            });
        }
        None
    }

    /// Records a successful job on this device. A half-open probe
    /// success re-admits the device (half-open → closed).
    pub fn on_success(&mut self, device: usize, now_s: f64) -> Option<PoolTransition> {
        self.consecutive_faults = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            return Some(PoolTransition {
                device,
                t_s: now_s,
                from: BreakerState::HalfOpen,
                to: BreakerState::Closed,
                cause: "probe-success",
            });
        }
        None
    }

    /// Records a fault charged to this device. A closed breaker trips
    /// open at the threshold; a half-open probe fault re-opens
    /// immediately with a doubled (saturating) probation window.
    pub fn on_fault(
        &mut self,
        cfg: &BreakerConfig,
        device: usize,
        now_s: f64,
    ) -> Option<PoolTransition> {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_faults = self.consecutive_faults.saturating_add(1);
                if self.consecutive_faults >= cfg.fault_threshold {
                    self.trip(cfg, now_s);
                    return Some(PoolTransition {
                        device,
                        t_s: now_s,
                        from: BreakerState::Closed,
                        to: BreakerState::Open,
                        cause: "fault-threshold",
                    });
                }
                None
            }
            BreakerState::HalfOpen => {
                self.trip(cfg, now_s);
                Some(PoolTransition {
                    device,
                    t_s: now_s,
                    from: BreakerState::HalfOpen,
                    to: BreakerState::Open,
                    cause: "probe-fault",
                })
            }
            // Faults reported against an already-open breaker (a job
            // dispatched just before the trip) change nothing.
            BreakerState::Open => None,
        }
    }

    fn trip(&mut self, cfg: &BreakerConfig, now_s: f64) {
        self.state = BreakerState::Open;
        self.open_until_s = now_s + cfg.probation_for(self.open_spells);
        self.open_spells = self.open_spells.saturating_add(1);
        self.consecutive_faults = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_trips_open_at_threshold_and_probation_readmits() {
        let cfg = BreakerConfig::default();
        let mut b = CircuitBreaker::new();
        assert!(b.on_fault(&cfg, 0, 1.0).is_none());
        assert!(b.on_fault(&cfg, 0, 2.0).is_none());
        let t = b.on_fault(&cfg, 0, 3.0).expect("third fault trips");
        assert_eq!((t.from, t.to), (BreakerState::Closed, BreakerState::Open));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_until_s(), 3.0 + cfg.probation_base_s);

        // Probation elapses → half-open; probe success → closed.
        assert!(b.poll(0, 4.0).is_none(), "probation not elapsed yet");
        let t = b.poll(0, 3.0 + cfg.probation_base_s).expect("half-open");
        assert_eq!(t.to, BreakerState::HalfOpen);
        let t = b.on_success(0, 6.0).expect("re-admitted");
        assert_eq!(t.to, BreakerState::Closed);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_fault_reopens_with_doubled_backoff() {
        let cfg = BreakerConfig::default();
        let mut b = CircuitBreaker::new();
        for _ in 0..cfg.fault_threshold {
            b.on_fault(&cfg, 1, 0.0);
        }
        b.poll(1, 100.0);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        let t = b.on_fault(&cfg, 1, 100.0).expect("probe fault reopens");
        assert_eq!((t.from, t.to), (BreakerState::HalfOpen, BreakerState::Open));
        // Second spell waits base * factor.
        assert_eq!(
            b.open_until_s(),
            100.0 + cfg.probation_base_s * cfg.probation_factor
        );
    }

    #[test]
    fn probation_backoff_saturates_at_the_cap() {
        let cfg = BreakerConfig::default();
        // base 2, factor 2, cap 64 → saturation at spell 5 (2·2^5 = 64).
        assert_eq!(cfg.probation_for(4), 32.0);
        assert_eq!(cfg.probation_for(5), 64.0);
        assert_eq!(cfg.probation_for(6), 64.0);
        for spell in [64, 1_000, u32::MAX] {
            let p = cfg.probation_for(spell);
            assert!(p.is_finite(), "spell {spell} overflowed: {p}");
            assert_eq!(p, cfg.probation_cap_s);
        }
    }

    #[test]
    fn success_resets_the_fault_streak() {
        let cfg = BreakerConfig::default();
        let mut b = CircuitBreaker::new();
        b.on_fault(&cfg, 2, 0.0);
        b.on_fault(&cfg, 2, 1.0);
        b.on_success(2, 2.0);
        assert!(b.on_fault(&cfg, 2, 3.0).is_none(), "streak was reset");
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
