//! The service-level report: per-tenant admission/completion accounting
//! with sojourn percentiles on the simulated clock, plus the pool-state
//! timeline — implementing the workspace-wide [`Report`] trait so bench
//! tables and JSON dumps consume it like any engine report.

use distmsm::{Phase, Report};

use crate::breaker::{BreakerState, PoolTransition};

/// Nearest-rank percentile of an ascending-sorted slice (`0.0` when
/// empty). `q` in `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One tenant's aggregated run statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Jobs that arrived at the door.
    pub arrivals: u64,
    /// Jobs that passed admission.
    pub admitted: u64,
    /// Jobs refused at the door (not part of the admitted conservation
    /// sum).
    pub rejected: u64,
    /// Admitted jobs that completed with a verified result.
    pub completed: u64,
    /// Admitted jobs that exhausted their attempts.
    pub failed: u64,
    /// Admitted jobs dropped by the shed policy.
    pub shed: u64,
    /// Completed jobs that missed their deadline.
    pub deadline_missed: u64,
    /// Median arrival-to-completion time, seconds.
    pub sojourn_p50_s: f64,
    /// 95th-percentile sojourn, seconds.
    pub sojourn_p95_s: f64,
    /// 99th-percentile sojourn, seconds.
    pub sojourn_p99_s: f64,
}

/// The aggregated outcome of one service run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// Per-tenant statistics, in tenant-table order.
    pub tenants: Vec<TenantStats>,
    /// Every breaker transition, in emission order.
    pub pool_timeline: Vec<PoolTransition>,
    /// Final breaker state per device.
    pub final_states: Vec<BreakerState>,
    /// Simulated time of the last processed event.
    pub horizon_s: f64,
    /// Devices in the pool.
    pub n_devices: usize,
}

impl ServiceReport {
    /// Total admitted jobs across tenants.
    pub fn admitted(&self) -> u64 {
        self.tenants.iter().map(|t| t.admitted).sum()
    }

    /// Total completed jobs across tenants.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Total shed jobs across tenants.
    pub fn shed(&self) -> u64 {
        self.tenants.iter().map(|t| t.shed).sum()
    }

    /// Total failed jobs across tenants.
    pub fn failed(&self) -> u64 {
        self.tenants.iter().map(|t| t.failed).sum()
    }

    /// `completed / admitted` (1.0 when nothing was admitted) — the
    /// number the shed policy's `min_completion_rate` floors.
    pub fn completion_rate(&self) -> f64 {
        let admitted = self.admitted();
        if admitted == 0 {
            1.0
        } else {
            self.completed() as f64 / admitted as f64
        }
    }

    /// True when the device's breaker ended the run open (quarantined).
    pub fn quarantined(&self, device: usize) -> bool {
        self.final_states.get(device) == Some(&BreakerState::Open)
    }

    /// A human-readable phase-table rendering: one row per tenant, then
    /// the pool's final states and quarantine cycle count.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>8} {:>8} {:>8} {:>9} {:>7} {:>6} {:>10} {:>10}\n",
            "tenant", "arrived", "admitted", "rejected", "completed", "failed", "shed", "p50(ms)", "p99(ms)"
        ));
        for t in &self.tenants {
            out.push_str(&format!(
                "{:<12} {:>8} {:>8} {:>8} {:>9} {:>7} {:>6} {:>10.3} {:>10.3}\n",
                t.name,
                t.arrivals,
                t.admitted,
                t.rejected,
                t.completed,
                t.failed,
                t.shed,
                t.sojourn_p50_s * 1e3,
                t.sojourn_p99_s * 1e3,
            ));
        }
        out.push_str(&format!(
            "pool: {} devices, {} breaker transitions, final states [{}]\n",
            self.n_devices,
            self.pool_timeline.len(),
            self.final_states
                .iter()
                .map(|s| s.label())
                .collect::<Vec<_>>()
                .join(", "),
        ));
        out.push_str(&format!(
            "completion rate {:.3} over {:.3} simulated seconds\n",
            self.completion_rate(),
            self.horizon_s,
        ));
        out
    }

    /// A detailed, byte-stable JSON rendering (field order fixed, floats
    /// via Rust's shortest-roundtrip formatter) — the golden the CI soak
    /// smoke diffs against.
    pub fn to_detailed_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"kind\": \"service\",\n  \"horizon_s\": {},\n", num(self.horizon_s)));
        out.push_str(&format!("  \"n_devices\": {},\n", self.n_devices));
        out.push_str(&format!("  \"completion_rate\": {},\n", num(self.completion_rate())));
        out.push_str("  \"tenants\": [\n");
        for (i, t) in self.tenants.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"arrivals\": {}, \"admitted\": {}, \"rejected\": {}, \
                 \"completed\": {}, \"failed\": {}, \"shed\": {}, \"deadline_missed\": {}, \
                 \"sojourn_p50_s\": {}, \"sojourn_p95_s\": {}, \"sojourn_p99_s\": {}}}{}\n",
                t.name,
                t.arrivals,
                t.admitted,
                t.rejected,
                t.completed,
                t.failed,
                t.shed,
                t.deadline_missed,
                num(t.sojourn_p50_s),
                num(t.sojourn_p95_s),
                num(t.sojourn_p99_s),
                if i + 1 < self.tenants.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"final_states\": [{}],\n",
            self.final_states
                .iter()
                .map(|s| format!("\"{}\"", s.label()))
                .collect::<Vec<_>>()
                .join(", "),
        ));
        out.push_str("  \"pool_timeline\": [\n");
        for (i, t) in self.pool_timeline.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"device\": {}, \"t_s\": {}, \"from\": \"{}\", \"to\": \"{}\", \"cause\": \"{}\"}}{}\n",
                t.device,
                num(t.t_s),
                t.from.label(),
                t.to.label(),
                t.cause,
                if i + 1 < self.pool_timeline.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON-safe float formatting (non-finite values become 0).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

impl Report for ServiceReport {
    fn kind(&self) -> &'static str {
        "service"
    }

    fn total_s(&self) -> f64 {
        self.horizon_s
    }

    /// Per-tenant phases: the seconds each tenant's completed jobs spent
    /// in the system (sojourn mass, approximated as `completed × p50`).
    /// Phases deliberately do not sum to [`Report::total_s`] — tenants
    /// overlap in time, like devices in an engine report.
    fn phase_breakdown(&self) -> Vec<Phase> {
        self.tenants
            .iter()
            .map(|t| Phase {
                name: format!("tenant:{}", t.name),
                seconds: t.completed as f64 * t.sojourn_p50_s,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &str, admitted: u64, completed: u64) -> TenantStats {
        TenantStats {
            name: name.into(),
            arrivals: admitted,
            admitted,
            rejected: 0,
            completed,
            failed: 0,
            shed: admitted - completed,
            deadline_missed: 0,
            sojourn_p50_s: 0.5,
            sojourn_p95_s: 0.9,
            sojourn_p99_s: 1.0,
        }
    }

    fn report() -> ServiceReport {
        ServiceReport {
            tenants: vec![stats("a", 10, 8), stats("b", 6, 3)],
            pool_timeline: vec![PoolTransition {
                device: 1,
                t_s: 2.5,
                from: BreakerState::Closed,
                to: BreakerState::Open,
                cause: "fault-threshold",
            }],
            final_states: vec![BreakerState::Closed, BreakerState::Open],
            horizon_s: 100.0,
            n_devices: 2,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn totals_and_rates_sum_tenants() {
        let r = report();
        assert_eq!(r.admitted(), 16);
        assert_eq!(r.completed(), 11);
        assert_eq!(r.shed(), 5);
        assert!((r.completion_rate() - 11.0 / 16.0).abs() < 1e-12);
        assert!(r.quarantined(1));
        assert!(!r.quarantined(0));
    }

    #[test]
    fn report_trait_and_renders() {
        let r = report();
        assert_eq!(r.kind(), "service");
        assert_eq!(Report::total_s(&r), 100.0);
        assert_eq!(r.phase_breakdown().len(), 2);
        let table = r.render();
        assert!(table.contains("tenant"), "{table}");
        assert!(table.contains("completion rate"), "{table}");
        let json = r.to_detailed_json();
        assert!(json.contains("\"kind\": \"service\""), "{json}");
        assert!(json.contains("\"fault-threshold\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
