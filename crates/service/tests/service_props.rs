//! Property tests of the service's re-admission path, across curves:
//! a job that completes on a partition containing a device the pool
//! previously quarantined (breaker tripped, probed, re-admitted) must
//! be bit-identical to the fault-free single-GPU reference — quarantine
//! and probation change *placement*, never *values*.

use distmsm::engine::DistMsm;
use distmsm_ec::curves::{Bls12377G1, Bls12381G1, Bn254G1, Mnt4753G1};
use distmsm_ec::{Curve, MsmInstance};
use distmsm_gpu_sim::{FaultKind, MultiGpuSystem};
use distmsm_service::{
    ChaosSchedule, DeviceFaultWindow, JobClass, JobSpec, ProverService, ServiceConfig,
    ServiceEventKind,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Runs a three-GPU service where device 2 fail-stops for the opening
/// stretch (tripping its breaker) and then heals (so a half-open probe
/// re-admits it under the tail of the trickle). Returns the outcome
/// with at least one completion on the re-admitted device guaranteed.
fn run_readmission_scenario<C: Curve>(seed: u64, n: usize) -> distmsm_service::ServiceOutcome<C> {
    let config = ServiceConfig {
        n_devices: 3,
        gpus_per_job: 2,
        degraded_gpus_per_job: 1,
        ..ServiceConfig::default()
    };
    let chaos = ChaosSchedule {
        device_windows: vec![DeviceFaultWindow {
            device: 2,
            t0_s: 0.0,
            t1_s: 10.0,
            kind: FaultKind::FailStop,
        }],
        link_windows: Vec::new(),
    };
    let mut jobs = Vec::new();
    for i in 0..24u64 {
        // Burst, then a trickle: the trickle's dispatches inside the
        // fault window trip the breaker (the burst mostly drains on the
        // devices the first recovery left idle), and its dispatches
        // past the window give the probe a healthy device to re-admit.
        let arrival_s = if i < 10 { 0.001 * i as f64 } else { 5.0 + (i - 10) as f64 };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(i));
        jobs.push(JobSpec {
            id: i,
            tenant: (i % 2) as usize,
            class: JobClass::Batch,
            arrival_s,
            deadline_s: None,
            instance: MsmInstance::<C>::random(n, &mut rng),
        });
    }
    let mut service = ProverService::new(config);
    service.run(jobs.clone(), &chaos)
}

/// The property: the scenario exercises the full breaker cycle, and
/// every job completed on a partition containing the re-admitted device
/// matches the fault-free reference bit for bit.
fn check_readmitted_results_bit_exact<C: Curve>(seed: u64, n: usize) {
    let outcome = run_readmission_scenario::<C>(seed, n);

    // The cycle actually happened: device 2 tripped and was re-admitted.
    let causes: Vec<&str> = outcome
        .report
        .pool_timeline
        .iter()
        .filter(|t| t.device == 2)
        .map(|t| t.cause)
        .collect();
    assert!(
        causes.contains(&"fault-threshold"),
        "{}: device 2 never tripped its breaker: {causes:?}",
        C::NAME
    );
    assert!(
        causes.contains(&"probe-success"),
        "{}: device 2 was never re-admitted: {causes:?}",
        C::NAME
    );

    let readmitted: Vec<_> = outcome
        .completed
        .iter()
        .filter(|c| c.used_readmitted_device)
        .collect();
    assert!(
        !readmitted.is_empty(),
        "{}: no completion rode the re-admitted device",
        C::NAME
    );

    // Rebuild the same instances the scenario ran and compare each
    // re-admitted completion against the fault-free single-GPU result.
    let reference = DistMsm::new(MultiGpuSystem::dgx_a100(1));
    for c in readmitted {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(c.id));
        let inst = MsmInstance::<C>::random(n, &mut rng);
        let clean = reference.execute(&inst).expect("fault-free reference executes");
        assert_eq!(
            clean.result.to_affine(),
            c.result.to_affine(),
            "{} seed={seed} job={}: re-admitted result diverged from the reference",
            C::NAME,
            c.id
        );
    }

    // And the health gate held throughout: replaying the event stream,
    // no dispatch named device 2 while its breaker was open.
    let mut open = false;
    for e in &outcome.events {
        match &e.kind {
            ServiceEventKind::Breaker { transition } if transition.device == 2 => {
                open = transition.to == distmsm_service::BreakerState::Open;
            }
            ServiceEventKind::Dispatched { devices, .. } if devices.contains(&2) => {
                assert!(
                    !open,
                    "{} seed={seed}: job {:?} dispatched to device 2 at t={} \
                     while its breaker was open",
                    C::NAME,
                    e.job,
                    e.t_s
                );
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn bn254_readmitted_results_bit_exact(seed in 0u64..1000) {
        check_readmitted_results_bit_exact::<Bn254G1>(seed, 32);
    }

    #[test]
    fn bls12_377_readmitted_results_bit_exact(seed in 0u64..1000) {
        check_readmitted_results_bit_exact::<Bls12377G1>(seed, 24);
    }

    #[test]
    fn bls12_381_readmitted_results_bit_exact(seed in 0u64..1000) {
        check_readmitted_results_bit_exact::<Bls12381G1>(seed, 24);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn mnt4753_readmitted_results_bit_exact(seed in 0u64..1000) {
        check_readmitted_results_bit_exact::<Mnt4753G1>(seed, 10);
    }
}
