//! Link-partition injection over the fleet NIC tier.
//!
//! The chaos models so far kill devices (fail-stop) or corrupt results
//! (byzantine); a *partition* does neither — both sides stay alive and
//! correct, they just cannot reach each other for a while. On the
//! [`Topology::fleet`] fabric the coordinator↔pod path is
//! `coord/host — coord/nic — ib-core — pod{p}/nic — pod{p}/leader`, so
//! severing a pod's NIC-tier links cuts exactly that reachability
//! without touching either endpoint.
//!
//! A [`PartitionWindow`] is an interval on the simulated clock during
//! which one pod's NIC tier drops traffic in one or both directions:
//!
//! * **Symmetric** — the classic switch-port failure: nothing crosses.
//! * **CoordinatorToPod** — lease responses and new placements are
//!   lost, but the pod's heartbeats and completions still arrive. The
//!   coordinator keeps renewing the lease; the pod self-degrades.
//! * **PodToCoordinator** — heartbeats and completions are lost while
//!   the pod still hears the coordinator. The lease expires and the
//!   pod is fenced even though it received every placement.
//!
//! The asymmetric cases are what make fencing necessary: connectivity
//! is not an equivalence relation, so exactly-once must come from epoch
//! tokens, not from "the pod looked reachable".
//!
//! Everything is deterministic: [`PartitionSchedule::random`] is
//! **prefix-stable** (a fixed number of draws per window, so shrinking
//! the window count keeps earlier windows bit-identical), and
//! [`PartitionSchedule::transition_times`] exposes the exact set of
//! instants at which reachability can change — the membership layer
//! steps its state machine on those plus the heartbeat cadence, never
//! on wall-clock sampling.

use crate::topology::{NodeKind, Topology};

/// Which direction(s) of coordinator↔pod traffic a window severs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionDirection {
    /// Neither direction crosses the NIC tier.
    Symmetric,
    /// Coordinator→pod traffic is lost (lease grants, placements);
    /// pod→coordinator traffic (heartbeats, completions) still flows.
    CoordinatorToPod,
    /// Pod→coordinator traffic is lost (heartbeats, completions);
    /// coordinator→pod traffic still flows.
    PodToCoordinator,
}

/// One link-partition interval on the simulated clock, half-open
/// `[t0_s, t1_s)`, severing one pod's NIC tier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionWindow {
    /// The pod whose NIC tier the window severs.
    pub pod: usize,
    /// Window start (inclusive), simulated seconds.
    pub t0_s: f64,
    /// Window end (exclusive), simulated seconds — the heal instant.
    pub t1_s: f64,
    /// Severed direction(s).
    pub direction: PartitionDirection,
}

impl PartitionWindow {
    /// Is the window active at `t_s`?
    pub fn active(&self, t_s: f64) -> bool {
        self.t0_s <= t_s && t_s < self.t1_s
    }

    /// Does this window block coordinator→pod traffic at `t_s`?
    pub fn blocks_coord_to_pod(&self, t_s: f64) -> bool {
        self.active(t_s)
            && matches!(
                self.direction,
                PartitionDirection::Symmetric | PartitionDirection::CoordinatorToPod
            )
    }

    /// Does this window block pod→coordinator traffic at `t_s`?
    pub fn blocks_pod_to_coord(&self, t_s: f64) -> bool {
        self.active(t_s)
            && matches!(
                self.direction,
                PartitionDirection::Symmetric | PartitionDirection::PodToCoordinator
            )
    }
}

/// A deterministic set of partition windows — the partition half of the
/// fleet chaos schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PartitionSchedule {
    /// The windows, in generation order.
    pub windows: Vec<PartitionWindow>,
}

/// SplitMix64 — the same generator the fault layer uses, duplicated
/// here because `distmsm-comms` is intentionally dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl PartitionSchedule {
    /// The empty schedule: full connectivity forever.
    pub fn none() -> Self {
        Self { windows: Vec::new() }
    }

    /// A schedule from explicit windows.
    pub fn new(windows: Vec<PartitionWindow>) -> Self {
        Self { windows }
    }

    /// No windows at all?
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Seeded random windows over `[0, horizon_s)` for an `n_pods`
    /// fleet. Prefix-stable: exactly four draws per window (pod, start,
    /// duration, direction), so truncating `n_windows` reproduces the
    /// shorter schedule bit-for-bit.
    pub fn random(seed: u64, n_windows: usize, n_pods: usize, horizon_s: f64) -> Self {
        let mut state = seed ^ 0x7061_7274_6974_6e31; // "partitn1"
        let mut u = || splitmix64(&mut state) as f64 / u64::MAX as f64;
        let mut windows = Vec::with_capacity(n_windows);
        for _ in 0..n_windows {
            let pod = (u() * n_pods as f64) as usize % n_pods.max(1);
            let t0_s = u() * horizon_s * 0.7;
            let dur_s = horizon_s * (0.05 + 0.20 * u());
            let direction = match (u() * 3.0) as usize {
                0 => PartitionDirection::Symmetric,
                1 => PartitionDirection::CoordinatorToPod,
                _ => PartitionDirection::PodToCoordinator,
            };
            windows.push(PartitionWindow {
                pod,
                t0_s,
                t1_s: (t0_s + dur_s).min(horizon_s),
                direction,
            });
        }
        Self { windows }
    }

    /// Can the coordinator reach pod `pod` at `t_s`?
    pub fn coordinator_reaches_pod(&self, pod: usize, t_s: f64) -> bool {
        !self.windows.iter().any(|w| w.pod == pod && w.blocks_coord_to_pod(t_s))
    }

    /// Can pod `pod` reach the coordinator at `t_s`?
    pub fn pod_reaches_coordinator(&self, pod: usize, t_s: f64) -> bool {
        !self.windows.iter().any(|w| w.pod == pod && w.blocks_pod_to_coord(t_s))
    }

    /// Does a heartbeat round-trip (request up, lease response down)
    /// complete for pod `pod` at `t_s`?
    pub fn round_trip_ok(&self, pod: usize, t_s: f64) -> bool {
        self.pod_reaches_coordinator(pod, t_s) && self.coordinator_reaches_pod(pod, t_s)
    }

    /// Every instant at which some pod's reachability can change —
    /// window starts and heal times, sorted and deduplicated. Between
    /// consecutive transition times reachability is constant, which is
    /// what lets the membership layer run on discrete events instead of
    /// sampling the clock.
    pub fn transition_times(&self) -> Vec<f64> {
        let mut ts: Vec<f64> =
            self.windows.iter().flat_map(|w| [w.t0_s, w.t1_s]).collect();
        ts.sort_by(|a, b| a.total_cmp(b));
        ts.dedup();
        ts
    }

    /// Latest heal time of any window touching `pod` (`0.0` if none) —
    /// the instant after which the pod is reachable for good.
    pub fn last_heal_s(&self, pod: usize) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.pod == pod)
            .map(|w| w.t1_s)
            .fold(0.0, f64::max)
    }

    /// The NIC-tier link ids of `pod` on a [`Topology::fleet`] fabric —
    /// the links a window on that pod severs (leader↔NIC and
    /// NIC↔core). Panics if the topology is not a fleet fabric.
    pub fn severed_links(topo: &Topology, pod: usize) -> Vec<usize> {
        let label = format!("pod{pod}/nic");
        let nic = topo
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Nic && n.label == label)
            .unwrap_or_else(|| panic!("no node {label}: not a fleet fabric"));
        topo.links_of_node(nic)
    }

    /// Applies one pod's partition to a fleet fabric by downing its
    /// NIC-tier links — used by tests and what-if routing to prove the
    /// windows act on exactly the modeled tier.
    pub fn sever_pod(topo: &mut Topology, pod: usize) {
        for id in Self::severed_links(topo, pod) {
            topo.set_link_down(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(pod: usize, t0: f64, t1: f64, direction: PartitionDirection) -> PartitionWindow {
        PartitionWindow { pod, t0_s: t0, t1_s: t1, direction }
    }

    #[test]
    fn directionality_is_respected() {
        let s = PartitionSchedule::new(vec![
            w(0, 10.0, 20.0, PartitionDirection::Symmetric),
            w(1, 10.0, 20.0, PartitionDirection::CoordinatorToPod),
            w(2, 10.0, 20.0, PartitionDirection::PodToCoordinator),
        ]);
        // Symmetric: both directions dead inside the window.
        assert!(!s.coordinator_reaches_pod(0, 15.0));
        assert!(!s.pod_reaches_coordinator(0, 15.0));
        // Coord→pod only: heartbeats still arrive upstream.
        assert!(!s.coordinator_reaches_pod(1, 15.0));
        assert!(s.pod_reaches_coordinator(1, 15.0));
        // Pod→coord only: the pod still hears the coordinator.
        assert!(s.coordinator_reaches_pod(2, 15.0));
        assert!(!s.pod_reaches_coordinator(2, 15.0));
        // Round trip fails for all three.
        for pod in 0..3 {
            assert!(!s.round_trip_ok(pod, 15.0));
            assert!(s.round_trip_ok(pod, 5.0), "window not yet open");
            assert!(s.round_trip_ok(pod, 20.0), "heal instant is exclusive");
        }
        // An uninvolved pod is never affected.
        assert!(s.round_trip_ok(3, 15.0));
    }

    #[test]
    fn transition_times_are_sorted_window_edges() {
        let s = PartitionSchedule::new(vec![
            w(0, 30.0, 50.0, PartitionDirection::Symmetric),
            w(1, 10.0, 30.0, PartitionDirection::PodToCoordinator),
        ]);
        assert_eq!(s.transition_times(), vec![10.0, 30.0, 50.0]);
        assert_eq!(s.last_heal_s(0), 50.0);
        assert_eq!(s.last_heal_s(1), 30.0);
        assert_eq!(s.last_heal_s(7), 0.0);
    }

    #[test]
    fn random_is_prefix_stable_and_bounded() {
        let long = PartitionSchedule::random(42, 6, 4, 900.0);
        let short = PartitionSchedule::random(42, 3, 4, 900.0);
        assert_eq!(&long.windows[..3], &short.windows[..]);
        for w in &long.windows {
            assert!(w.pod < 4);
            assert!(w.t0_s >= 0.0 && w.t1_s <= 900.0 && w.t0_s < w.t1_s);
        }
        // Determinism: same seed, same schedule.
        assert_eq!(long, PartitionSchedule::random(42, 6, 4, 900.0));
        assert_ne!(long, PartitionSchedule::random(43, 6, 4, 900.0));
    }

    #[test]
    fn severing_the_nic_tier_cuts_exactly_that_pod() {
        let mut topo = Topology::fleet(4);
        let host = topo.master_host();
        // All pods reachable before the cut.
        for p in 0..4 {
            assert!(topo.route(host, topo.gpu_node(p)).is_some());
        }
        PartitionSchedule::sever_pod(&mut topo, 2);
        assert!(
            topo.route(host, topo.gpu_node(2)).is_none(),
            "pod 2 unreachable with its NIC tier down"
        );
        for p in [0, 1, 3] {
            assert!(
                topo.route(host, topo.gpu_node(p)).is_some(),
                "pod {p} unaffected by pod 2's partition"
            );
        }
        // Exactly the leader↔NIC and NIC↔core links are implicated.
        assert_eq!(PartitionSchedule::severed_links(&topo, 2).len(), 2);
    }
}
