//! Communication schedules: flows, steps, and the α–β cost model.
//!
//! A collective is lowered to a [`CommSchedule`]: an ordered list of
//! [`CommStep`]s, each a set of [`Flow`]s that execute concurrently.
//! Costing follows the classic α–β model — a flow over a route pays the
//! route's total latency (α) plus its bytes over the route's bottleneck
//! bandwidth (β⁻¹), with store-and-forward chunked pipelining across
//! multi-hop routes and per-link bandwidth division when several flows of
//! the same step share a physical link.

use crate::topology::{RouteError, Topology};

/// One endpoint of a flow: a GPU rank or the host (master host in
/// multi-node topologies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// GPU with the given global rank.
    Rank(usize),
    /// The (master) host CPU.
    Host,
}

/// Identity of a physical link a flow crosses, used for contention
/// metering. Flat fabrics have synthetic links; topology fabrics use the
/// link's index in the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkId {
    /// Link `index` of a [`Topology`] graph.
    Topo(usize),
    /// The single shared host link of a flat fabric (legacy
    /// `interconnect_gbps` semantics: all device→host traffic divides
    /// one pipe).
    FlatHost,
    /// A dedicated peer link between two ranks of a flat fabric
    /// (legacy `peer_gbps` semantics: full bisection). Stored with
    /// `min ≤ max`.
    FlatPeer(usize, usize),
}

/// One physical link on a resolved path, with its standalone bandwidth.
#[derive(Clone, Debug, PartialEq)]
pub struct PathLink {
    /// Link identity for contention accounting.
    pub id: LinkId,
    /// Human-readable label (`"gpu0 <-> nvswitch0"`).
    pub label: String,
    /// Uncontended bandwidth of this link in GB/s.
    pub gbps: f64,
}

/// A resolved source→destination path through the fabric.
#[derive(Clone, Debug, PartialEq)]
pub struct PathCost {
    /// Total one-way latency across all hops, in seconds.
    pub alpha_s: f64,
    /// Links crossed, in order.
    pub links: Vec<PathLink>,
}

impl PathCost {
    /// Number of hops (links) on the path.
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// Bottleneck bandwidth in GB/s ignoring contention
    /// (`f64::INFINITY` for an empty self-path).
    pub fn min_gbps(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.gbps)
            .fold(f64::INFINITY, f64::min)
    }
}

/// The interconnect a schedule is costed against.
///
/// `Flat` reproduces the legacy two-scalar model bit-for-bit: one shared
/// host pipe (`host_gbps`, zero latency) and a dedicated full-bisection
/// peer link per rank pair (`peer_gbps`). `Topology` routes every flow
/// through the graph with real per-hop latency and shared-link
/// contention.
#[derive(Clone, Copy, Debug)]
pub enum Fabric<'a> {
    /// Legacy flat scalars (`MultiGpuSystem::{interconnect,peer}_gbps`).
    Flat {
        /// Device↔host bandwidth in GB/s, shared by all ranks.
        host_gbps: f64,
        /// Per-pair peer bandwidth in GB/s, full bisection.
        peer_gbps: f64,
    },
    /// An explicit interconnect topology graph.
    Topology(&'a Topology),
}

impl Fabric<'_> {
    /// Resolves the path between two endpoints.
    ///
    /// # Panics
    ///
    /// Panics if a topology fabric has no route between the endpoints
    /// (disconnected graph or out-of-range rank) — schedules are only
    /// built against fabrics where all routes exist. Use
    /// [`Self::try_path`] against a faulted fabric.
    pub fn path(&self, src: Endpoint, dst: Endpoint) -> PathCost {
        self.try_path(src, dst)
            .expect("fabric endpoints must be connected")
    }

    /// Resolves the path between two endpoints, or reports the
    /// disconnection — the expected outcome on a fabric carrying link
    /// faults.
    pub fn try_path(&self, src: Endpoint, dst: Endpoint) -> Result<PathCost, RouteError> {
        if src == dst {
            return Ok(PathCost {
                alpha_s: 0.0,
                links: Vec::new(),
            });
        }
        match *self {
            Fabric::Flat {
                host_gbps,
                peer_gbps,
            } => {
                let (id, label, gbps) = match (src, dst) {
                    (Endpoint::Rank(a), Endpoint::Rank(b)) => {
                        let (lo, hi) = (a.min(b), a.max(b));
                        (
                            LinkId::FlatPeer(lo, hi),
                            format!("flat-peer gpu{lo}<->gpu{hi}"),
                            peer_gbps,
                        )
                    }
                    _ => (LinkId::FlatHost, "flat-host".to_string(), host_gbps),
                };
                Ok(PathCost {
                    alpha_s: 0.0,
                    links: vec![PathLink { id, label, gbps }],
                })
            }
            Fabric::Topology(topo) => {
                let route = match (src, dst) {
                    (Endpoint::Rank(a), Endpoint::Rank(b)) => topo.try_gpu_route(a, b)?,
                    (Endpoint::Rank(a), Endpoint::Host) => topo.try_gpu_to_host_route(a)?,
                    (Endpoint::Host, Endpoint::Rank(b)) => {
                        let mut r = topo.try_gpu_to_host_route(b)?;
                        r.nodes.reverse();
                        r.links.reverse();
                        r
                    }
                    (Endpoint::Host, Endpoint::Host) => unreachable!("src == dst handled above"),
                };
                let links = route
                    .links
                    .iter()
                    .map(|&li| PathLink {
                        id: LinkId::Topo(li),
                        label: topo.link_label(li),
                        gbps: topo.links[li].bandwidth_gbps,
                    })
                    .collect();
                Ok(PathCost {
                    alpha_s: route.alpha_s,
                    links,
                })
            }
        }
    }
}

/// One point-to-point transfer within a step.
#[derive(Clone, Debug, PartialEq)]
pub struct Flow {
    /// Sender.
    pub src: Endpoint,
    /// Receiver.
    pub dst: Endpoint,
    /// Start of the element range carried (inclusive), for replay rules.
    pub lo: usize,
    /// End of the element range carried (exclusive).
    pub hi: usize,
    /// Payload size in bytes.
    pub bytes: f64,
    /// Whether the payload is claimed to be *fully reduced* over every
    /// contributing rank for its element range (checked by the analyze
    /// COMM-002 rule).
    pub reduced: bool,
}

/// A set of flows that execute concurrently; the schedule advances to
/// the next step only when every flow of this one has completed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStep {
    /// Concurrent flows.
    pub flows: Vec<Flow>,
}

/// Tuning knobs for schedule costing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommConfig {
    /// Pipelining granularity for multi-hop routes, in bytes. Each hop
    /// after the first adds one chunk of store-and-forward fill latency.
    pub chunk_bytes: f64,
}

impl Default for CommConfig {
    fn default() -> Self {
        Self {
            // 4 MiB: large enough to amortise per-message overhead,
            // small enough that multi-hop fill time stays negligible.
            chunk_bytes: 4.0 * 1024.0 * 1024.0,
        }
    }
}

/// Aggregate traffic over one physical link across the whole schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkLoad {
    /// Link identity.
    pub link: LinkId,
    /// Human-readable label.
    pub label: String,
    /// Uncontended bandwidth in GB/s.
    pub gbps: f64,
    /// Total bytes carried across all steps.
    pub bytes: f64,
    /// Maximum number of flows sharing the link within a single step.
    pub peak_flows: usize,
}

/// A fully lowered collective: steps, ownership metadata, and (after
/// [`CommSchedule::finalize`]) the α–β cost and per-link loads.
#[derive(Clone, Debug, PartialEq)]
pub struct CommSchedule {
    /// Strategy name (`"ring-all-reduce"`, `"host-gather"`, …).
    pub strategy: String,
    /// Number of participating GPU ranks.
    pub n_ranks: usize,
    /// Logical vector length being reduced/gathered (elements).
    pub vec_len: usize,
    /// Bytes per element (0 when flows carry explicit opaque payloads).
    pub elem_bytes: f64,
    /// Initial contribution range of each rank: rank `r` holds a partial
    /// of elements `rank_owns[r].0 .. rank_owns[r].1` before step 0.
    /// Reductions start from these; the host must end up covering the
    /// union.
    pub rank_owns: Vec<(usize, usize)>,
    /// Ordered steps.
    pub steps: Vec<CommStep>,
    /// Element-combine operations the *host* performs after receiving
    /// (e.g. host-gather reduces `(n_ranks − 1) · vec_len` pairs).
    pub host_reduce_ops: u64,
    /// Modelled wall-clock of the schedule in seconds (set by
    /// [`CommSchedule::finalize`]).
    pub total_s: f64,
    /// Modelled wall-clock of each step in seconds, indexed like
    /// [`CommSchedule::steps`] (set by [`CommSchedule::finalize`]; sums
    /// to [`CommSchedule::total_s`]).
    pub step_s: Vec<f64>,
    /// Per-link aggregate loads (set by [`CommSchedule::finalize`]).
    pub link_loads: Vec<LinkLoad>,
}

impl CommSchedule {
    /// Creates an empty schedule skeleton.
    pub fn new(strategy: &str, n_ranks: usize, vec_len: usize, elem_bytes: f64) -> Self {
        Self {
            strategy: strategy.to_string(),
            n_ranks,
            vec_len,
            elem_bytes,
            rank_owns: vec![(0, vec_len); n_ranks],
            steps: Vec::new(),
            host_reduce_ops: 0,
            total_s: 0.0,
            step_s: Vec::new(),
            link_loads: Vec::new(),
        }
    }

    /// Total payload bytes across every flow of every step.
    pub fn total_bytes(&self) -> f64 {
        self.steps
            .iter()
            .flat_map(|s| s.flows.iter())
            .map(|f| f.bytes)
            .sum()
    }

    /// Number of point-to-point flows in the schedule.
    pub fn n_flows(&self) -> usize {
        self.steps.iter().map(|s| s.flows.len()).sum()
    }

    /// Costs the schedule against `fabric`, filling `total_s` and
    /// `link_loads`.
    ///
    /// Within a step, each link's bandwidth is divided evenly among the
    /// flows crossing it; a flow's effective rate is its path's most
    /// contended link. A flow's completion time is
    /// `α + (bytes + (hops − 1) · min(chunk, bytes)) / rate` — the extra
    /// term is the store-and-forward pipeline fill on multi-hop routes —
    /// and a step completes when its slowest flow does.
    pub fn finalize(&mut self, fabric: &Fabric<'_>, cfg: &CommConfig) {
        let mut total_s = 0.0;
        let mut per_step_s: Vec<f64> = Vec::with_capacity(self.steps.len());
        let mut loads: Vec<LinkLoad> = Vec::new();
        for step in &self.steps {
            let paths: Vec<PathCost> = step
                .flows
                .iter()
                .map(|f| fabric.path(f.src, f.dst))
                .collect();
            // Per-link concurrent flow counts for this step.
            let mut counts: Vec<(LinkId, usize)> = Vec::new();
            for path in &paths {
                for link in &path.links {
                    match counts.iter_mut().find(|(id, _)| *id == link.id) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((link.id, 1)),
                    }
                }
            }
            let mut step_s = 0.0_f64;
            for (flow, path) in step.flows.iter().zip(&paths) {
                if path.links.is_empty() {
                    continue; // self-transfer: free
                }
                let rate_gbps = path
                    .links
                    .iter()
                    .map(|l| {
                        let shared = counts
                            .iter()
                            .find(|(id, _)| *id == l.id)
                            .map_or(1, |(_, c)| *c);
                        l.gbps / shared as f64
                    })
                    .fold(f64::INFINITY, f64::min);
                let fill = (path.hops() - 1) as f64 * cfg.chunk_bytes.min(flow.bytes);
                let flow_s = path.alpha_s + (flow.bytes + fill) / (rate_gbps * 1e9);
                step_s = step_s.max(flow_s);
                for link in &path.links {
                    let shared = counts
                        .iter()
                        .find(|(id, _)| *id == link.id)
                        .map_or(1, |(_, c)| *c);
                    match loads.iter_mut().find(|l| l.link == link.id) {
                        Some(l) => {
                            l.bytes += flow.bytes;
                            l.peak_flows = l.peak_flows.max(shared);
                        }
                        None => loads.push(LinkLoad {
                            link: link.id,
                            label: link.label.clone(),
                            gbps: link.gbps,
                            bytes: flow.bytes,
                            peak_flows: shared,
                        }),
                    }
                }
            }
            total_s += step_s;
            per_step_s.push(step_s);
        }
        loads.sort_by_key(|l| l.link);
        self.total_s = total_s;
        self.step_s = per_step_s;
        self.link_loads = loads;
    }
}

/// Feature-gated emission of a finalized schedule onto the fabric lane
/// of the active `distmsm-telemetry` session.
#[cfg(feature = "telemetry")]
pub mod telemetry {
    use super::{CommSchedule, Endpoint};
    use distmsm_telemetry::{session, Lane, Span};

    fn endpoint_name(e: Endpoint) -> String {
        match e {
            Endpoint::Rank(r) => format!("gpu{r}"),
            Endpoint::Host => "host".into(),
        }
    }

    /// Emits `sched` starting at simulated time `t0_s`: one structural
    /// `"collective"` parent span covering the whole schedule, one
    /// `"transfer"` child span per step (durations from
    /// [`CommSchedule::step_s`], so children sum exactly to
    /// [`CommSchedule::total_s`]), a cumulative `fabric-bytes` counter
    /// sample at each step boundary, and a `flow-bytes` histogram
    /// entry per flow. No-op when no session is active or the schedule
    /// was never finalized.
    pub fn emit_schedule(sched: &CommSchedule, t0_s: f64) {
        if !session::active() || sched.step_s.len() != sched.steps.len() {
            return;
        }
        session::push_span(Span {
            name: format!("{}({} ranks)", sched.strategy, sched.n_ranks),
            cat: "collective".into(),
            lane: Lane::Fabric,
            t0_s,
            t1_s: t0_s + sched.total_s,
            args: vec![
                ("strategy".into(), sched.strategy.clone()),
                ("steps".into(), sched.steps.len().to_string()),
                ("flows".into(), sched.n_flows().to_string()),
                ("bytes".into(), format!("{}", sched.total_bytes())),
            ],
        });
        let mut cursor = t0_s;
        let mut cum_bytes = 0.0;
        for (i, (step, &dur)) in sched.steps.iter().zip(&sched.step_s).enumerate() {
            let step_bytes: f64 = step.flows.iter().map(|f| f.bytes).sum();
            cum_bytes += step_bytes;
            let mut args = vec![
                ("flows".into(), step.flows.len().to_string()),
                ("bytes".into(), format!("{step_bytes}")),
            ];
            if let Some(f) = step.flows.first() {
                args.push((
                    "first-flow".into(),
                    format!(
                        "{}->{} [{}, {})",
                        endpoint_name(f.src),
                        endpoint_name(f.dst),
                        f.lo,
                        f.hi
                    ),
                ));
            }
            session::push_span(Span {
                name: format!("step{}/{}", i, sched.steps.len()),
                cat: "transfer".into(),
                lane: Lane::Fabric,
                t0_s: cursor,
                t1_s: cursor + dur,
                args,
            });
            cursor += dur;
            session::push_counter(distmsm_telemetry::CounterSample {
                name: "fabric-bytes".into(),
                lane: Lane::Fabric,
                t_s: cursor,
                value: cum_bytes,
            });
            for f in &step.flows {
                session::record_histogram("flow-bytes", f.bytes);
            }
        }
    }
}

/// Feature-gated process-global schedule collector, mirroring the
/// `distmsm-gpu-sim` trace stream: `distmsm-analyze` turns capture on,
/// runs a workload, and replays the recorded schedules against its
/// comm-schedule rules. With the `trace` feature off every hook is an
/// inline no-op.
pub mod trace {
    use super::CommSchedule;

    #[cfg(feature = "trace")]
    mod imp {
        use super::CommSchedule;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Mutex;

        static CAPTURING: AtomicBool = AtomicBool::new(false);
        static SCHEDULES: Mutex<Vec<CommSchedule>> = Mutex::new(Vec::new());

        // A panicking workload thread must not wedge the collector:
        // recover the (plain-Vec) state from a poisoned lock.
        fn schedules() -> std::sync::MutexGuard<'static, Vec<CommSchedule>> {
            SCHEDULES.lock().unwrap_or_else(|e| e.into_inner())
        }

        pub fn begin_capture() {
            schedules().clear();
            CAPTURING.store(true, Ordering::SeqCst);
        }

        pub fn end_capture() -> Vec<CommSchedule> {
            CAPTURING.store(false, Ordering::SeqCst);
            std::mem::take(&mut *schedules())
        }

        pub fn capturing() -> bool {
            CAPTURING.load(Ordering::SeqCst)
        }

        pub fn submit(s: &CommSchedule) {
            if capturing() {
                schedules().push(s.clone());
            }
        }
    }

    /// Starts recording every finalized schedule process-wide.
    #[cfg(feature = "trace")]
    pub fn begin_capture() {
        imp::begin_capture();
    }

    /// Stops recording and returns the captured schedules.
    #[cfg(feature = "trace")]
    pub fn end_capture() -> Vec<CommSchedule> {
        imp::end_capture()
    }

    /// Whether capture is currently active.
    #[cfg(feature = "trace")]
    pub fn capturing() -> bool {
        imp::capturing()
    }

    /// Records `s` if capture is active; no-op otherwise.
    #[cfg(feature = "trace")]
    pub fn maybe_submit(s: &CommSchedule) {
        imp::submit(s);
    }

    /// Records `s` if capture is active; no-op otherwise.
    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    pub fn maybe_submit(_s: &CommSchedule) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat() -> Fabric<'static> {
        Fabric::Flat {
            host_gbps: 64.0,
            peer_gbps: 600.0,
        }
    }

    #[test]
    fn flat_host_gather_matches_legacy_serialized_pipe() {
        // n flows of B bytes over the shared host link must cost exactly
        // n·B / host_gbps — the legacy `transfer_time(total_bytes)`.
        let n = 4;
        let bytes = 1e6;
        let mut sched = CommSchedule::new("host-gather", n, n, bytes);
        let mut step = CommStep::default();
        for r in 0..n {
            step.flows.push(Flow {
                src: Endpoint::Rank(r),
                dst: Endpoint::Host,
                lo: r,
                hi: r + 1,
                bytes,
                reduced: true,
            });
        }
        sched.steps.push(step);
        sched.finalize(&flat(), &CommConfig::default());
        let expect = n as f64 * bytes / (64.0 * 1e9);
        assert!((sched.total_s - expect).abs() < 1e-15 * expect.max(1.0));
        assert_eq!(sched.link_loads.len(), 1);
        assert_eq!(sched.link_loads[0].peak_flows, n);
    }

    #[test]
    fn flat_peer_links_are_full_bisection() {
        // Two disjoint peer flows don't contend with each other.
        let bytes = 1e9;
        let mut sched = CommSchedule::new("ring", 4, 4, bytes);
        let mut step = CommStep::default();
        for (a, b) in [(0, 1), (2, 3)] {
            step.flows.push(Flow {
                src: Endpoint::Rank(a),
                dst: Endpoint::Rank(b),
                lo: 0,
                hi: 4,
                bytes,
                reduced: false,
            });
        }
        sched.steps.push(step);
        sched.finalize(&flat(), &CommConfig::default());
        let expect = bytes / (600.0 * 1e9);
        assert!((sched.total_s - expect).abs() < 1e-15);
        assert_eq!(sched.link_loads.len(), 2);
    }

    #[test]
    fn topology_contention_halves_shared_link() {
        // Two GPUs pushing to the host through the shared hub→host root
        // port take twice as long as one.
        let topo = Topology::single_box(4);
        let fab = Fabric::Topology(&topo);
        let cfg = CommConfig::default();
        let bytes = 1e9;
        let flow = |r: usize| Flow {
            src: Endpoint::Rank(r),
            dst: Endpoint::Host,
            lo: 0,
            hi: 1,
            bytes,
            reduced: true,
        };
        let mut one = CommSchedule::new("g", 4, 1, bytes);
        one.steps.push(CommStep {
            flows: vec![flow(0)],
        });
        one.finalize(&fab, &cfg);
        let mut two = CommSchedule::new("g", 4, 1, bytes);
        two.steps.push(CommStep {
            flows: vec![flow(0), flow(1)],
        });
        two.finalize(&fab, &cfg);
        assert!(two.total_s > 1.9 * one.total_s);
        assert!(two.total_s < 2.1 * one.total_s);
    }

    #[test]
    fn multi_hop_pays_pipeline_fill_and_alpha() {
        let topo = Topology::single_box(2);
        let fab = Fabric::Topology(&topo);
        let cfg = CommConfig::default();
        let bytes = 256.0 * 1024.0 * 1024.0;
        let mut sched = CommSchedule::new("p", 2, 1, bytes);
        sched.steps.push(CommStep {
            flows: vec![Flow {
                src: Endpoint::Rank(0),
                dst: Endpoint::Rank(1),
                lo: 0,
                hi: 1,
                bytes,
                reduced: false,
            }],
        });
        sched.finalize(&fab, &cfg);
        let path = fab.path(Endpoint::Rank(0), Endpoint::Rank(1));
        assert_eq!(path.hops(), 2);
        let naive = bytes / (600.0 * 1e9);
        // strictly more than flat-rate (α + one chunk of fill), but close
        assert!(sched.total_s > naive);
        assert!(sched.total_s < naive * 1.2);
    }

    #[test]
    fn self_flow_is_free() {
        let mut sched = CommSchedule::new("s", 2, 1, 8.0);
        sched.steps.push(CommStep {
            flows: vec![Flow {
                src: Endpoint::Rank(1),
                dst: Endpoint::Rank(1),
                lo: 0,
                hi: 1,
                bytes: 1e9,
                reduced: false,
            }],
        });
        sched.finalize(&flat(), &CommConfig::default());
        assert_eq!(sched.total_s, 0.0);
    }
}
