//! `distmsm-comms` — topology-aware interconnect model and bit-exact EC
//! collectives for the DistMSM reproduction.
//!
//! The paper's 16- and 32-GPU configurations span multiple DGX boxes, so
//! the shape of the scaling curve depends on *where* the node boundaries
//! fall, not just on aggregate bandwidth. This crate provides:
//!
//! * [`topology`] — an explicit interconnect graph (GPU, NVSwitch, PCIe
//!   hub, host, and NIC nodes; links with bandwidth and latency) with
//!   deterministic shortest-path routing and presets for a single
//!   DGX-A100 box, a PCIe-only RTX 4090 box, and multi-node DGX pods
//!   over InfiniBand.
//! * [`schedule`] — collectives lowered to step/flow schedules costed
//!   under an α–β (latency + inverse-bandwidth) model with chunked
//!   store-and-forward pipelining and per-link contention metering, plus
//!   a feature-gated trace stream for `distmsm-analyze`.
//! * [`collective`] — host-gather, ring all-reduce, binomial-tree
//!   all-reduce, and reduce-scatter+gather strategies that execute the
//!   reduction *for real* over any element type (the engine passes EC
//!   PADD on `XyzzPoint`), so every strategy is verifiable bit-exact
//!   against a serial reduction while emitting the schedule that an
//!   analytic model can cost without data.
//!
//! The crate has no dependencies; element types and reduce ops are
//! supplied by callers, which keeps `ec → comms` coupling out of the
//! workspace graph.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collective;
pub mod partition;
pub mod schedule;
pub mod topology;

pub use collective::{
    chunk_range, gather_to_host, plan_collective, run_collective, CollectiveStrategy,
};
pub use schedule::{
    CommConfig, CommSchedule, CommStep, Endpoint, Fabric, Flow, LinkId, LinkLoad, PathCost,
    PathLink,
};
pub use partition::{PartitionDirection, PartitionSchedule, PartitionWindow};
pub use topology::{Link, LinkRates, Node, NodeKind, Route, RouteError, Topology};
