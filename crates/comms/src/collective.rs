//! Collective algorithms executed bit-exactly over arbitrary element
//! types.
//!
//! Every strategy both *moves the data* (the returned vector is computed
//! by applying the caller's reduce op exactly as the schedule prescribes
//! — for EC points that op is a real PADD, so results are bit-identical
//! to what a hardware run of the same schedule would produce) and
//! *emits the schedule* that moved it, so the same code path drives
//! functional verification and analytic costing.

use crate::schedule::{
    trace, CommConfig, CommSchedule, CommStep, Endpoint, Fabric, Flow,
};

/// How per-GPU partial vectors are combined and delivered to the host.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CollectiveStrategy {
    /// Every rank ships its full partial vector to the host, which
    /// reduces serially — the legacy engine behaviour, now with its
    /// transfer actually charged.
    #[default]
    HostGather,
    /// Ring reduce-scatter followed by ring all-gather; rank 0 then
    /// ships the fully reduced vector to the host. Bandwidth-optimal:
    /// each rank sends `2·(n−1)/n` of the vector.
    RingAllReduce,
    /// Binomial-tree reduce to rank 0, tree broadcast back out, rank 0
    /// ships to the host. Latency-optimal: `O(log n)` steps.
    TreeAllReduce,
    /// Ring reduce-scatter, then each rank ships its owned fully
    /// reduced chunk straight to the host — skips the all-gather when
    /// only the host needs the result.
    ReduceScatterGather,
}

impl CollectiveStrategy {
    /// Stable kebab-case name (used in schedules, benches, CLI).
    pub fn name(self) -> &'static str {
        match self {
            CollectiveStrategy::HostGather => "host-gather",
            CollectiveStrategy::RingAllReduce => "ring-all-reduce",
            CollectiveStrategy::TreeAllReduce => "tree-all-reduce",
            CollectiveStrategy::ReduceScatterGather => "reduce-scatter-gather",
        }
    }

    /// All strategies, for sweeps.
    pub const ALL: [CollectiveStrategy; 4] = [
        CollectiveStrategy::HostGather,
        CollectiveStrategy::RingAllReduce,
        CollectiveStrategy::TreeAllReduce,
        CollectiveStrategy::ReduceScatterGather,
    ];

    /// Parses a strategy from its [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// Element range `[lo, hi)` of chunk `c` when a `vec_len`-element vector
/// is split into `n` near-equal contiguous chunks.
pub fn chunk_range(vec_len: usize, n: usize, c: usize) -> (usize, usize) {
    (c * vec_len / n, (c + 1) * vec_len / n)
}

/// Runs `strategy` over per-rank partial vectors, combining elements
/// with `op`, and returns the reduced vector as delivered to the host
/// together with the finalized schedule.
///
/// `op` must be associative and commutative for all strategies to agree
/// with the serial left fold (EC PADD is both). `elem_bytes` sizes the
/// flows.
///
/// # Panics
///
/// Panics if `partials` is empty or the per-rank vectors have unequal
/// lengths.
pub fn run_collective<T: Clone>(
    strategy: CollectiveStrategy,
    partials: &[Vec<T>],
    op: impl Fn(&T, &T) -> T,
    fabric: &Fabric<'_>,
    cfg: &CommConfig,
    elem_bytes: f64,
) -> (Vec<T>, CommSchedule) {
    let n = partials.len();
    assert!(n > 0, "collective over zero ranks");
    let v = partials[0].len();
    assert!(
        partials.iter().all(|p| p.len() == v),
        "ragged partial vectors"
    );
    let mut bufs: Vec<Vec<T>> = partials.to_vec();
    let mut sched = CommSchedule::new(strategy.name(), n, v, elem_bytes);

    let result = match strategy {
        CollectiveStrategy::HostGather => {
            let mut step = CommStep::default();
            for r in 0..n {
                step.flows.push(Flow {
                    src: Endpoint::Rank(r),
                    dst: Endpoint::Host,
                    lo: 0,
                    hi: v,
                    bytes: v as f64 * elem_bytes,
                    // a single rank's partial is "fully reduced" only
                    // when it is the sole contributor
                    reduced: n == 1,
                });
            }
            sched.steps.push(step);
            sched.host_reduce_ops = (n as u64 - 1) * v as u64;
            let mut out = bufs[0].clone();
            for buf in &bufs[1..] {
                for (acc, x) in out.iter_mut().zip(buf) {
                    *acc = op(acc, x);
                }
            }
            out
        }
        CollectiveStrategy::RingAllReduce => {
            ring_reduce_scatter(&mut bufs, &op, &mut sched, elem_bytes);
            ring_all_gather(&mut bufs, &mut sched, elem_bytes);
            push_rank_to_host(&mut sched, 0, 0, v, elem_bytes);
            bufs[0].clone()
        }
        CollectiveStrategy::TreeAllReduce => {
            // Binomial reduce toward rank 0: at distance d, rank r with
            // r % 2d == d sends its whole (partially reduced) vector to
            // r − d.
            let mut d = 1;
            while d < n {
                let mut step = CommStep::default();
                let mut moves = Vec::new();
                for r in 0..n {
                    if r % (2 * d) == d {
                        let dst = r - d;
                        step.flows.push(Flow {
                            src: Endpoint::Rank(r),
                            dst: Endpoint::Rank(dst),
                            lo: 0,
                            hi: v,
                            bytes: v as f64 * elem_bytes,
                            reduced: false,
                        });
                        moves.push((r, dst));
                    }
                }
                if !step.flows.is_empty() {
                    sched.steps.push(step);
                }
                for (src, dst) in moves {
                    let incoming = bufs[src].clone();
                    for (acc, x) in bufs[dst].iter_mut().zip(&incoming) {
                        *acc = op(acc, x);
                    }
                }
                d *= 2;
            }
            // Tree broadcast back out (mirror image), then rank 0 → host.
            while d >= 1 {
                let mut step = CommStep::default();
                let mut moves = Vec::new();
                for r in 0..n {
                    if r % (2 * d) == 0 && r + d < n {
                        step.flows.push(Flow {
                            src: Endpoint::Rank(r),
                            dst: Endpoint::Rank(r + d),
                            lo: 0,
                            hi: v,
                            bytes: v as f64 * elem_bytes,
                            reduced: true,
                        });
                        moves.push((r, r + d));
                    }
                }
                if !step.flows.is_empty() {
                    sched.steps.push(step);
                }
                for (src, dst) in moves {
                    bufs[dst] = bufs[src].clone();
                }
                d /= 2;
            }
            push_rank_to_host(&mut sched, 0, 0, v, elem_bytes);
            bufs[0].clone()
        }
        CollectiveStrategy::ReduceScatterGather => {
            ring_reduce_scatter(&mut bufs, &op, &mut sched, elem_bytes);
            // Rank r owns fully reduced chunk (r + 1) mod n; everyone
            // ships their chunk to the host concurrently.
            let mut step = CommStep::default();
            for r in 0..n {
                let (lo, hi) = chunk_range(v, n, (r + 1) % n);
                if lo == hi {
                    continue;
                }
                step.flows.push(Flow {
                    src: Endpoint::Rank(r),
                    dst: Endpoint::Host,
                    lo,
                    hi,
                    bytes: (hi - lo) as f64 * elem_bytes,
                    reduced: true,
                });
            }
            if !step.flows.is_empty() {
                sched.steps.push(step);
            }
            let mut out = bufs[0].clone();
            for (r, buf) in bufs.iter().enumerate() {
                let (lo, hi) = chunk_range(v, n, (r + 1) % n);
                out[lo..hi].clone_from_slice(&buf[lo..hi]);
            }
            out
        }
    };

    sched.finalize(fabric, cfg);
    trace::maybe_submit(&sched);
    (result, sched)
}

/// Builds and costs the schedule for `strategy` without moving data —
/// the analytic model's entry point. Identical steps and cost to
/// [`run_collective`] on `n_ranks` vectors of `vec_len` elements.
pub fn plan_collective(
    strategy: CollectiveStrategy,
    n_ranks: usize,
    vec_len: usize,
    elem_bytes: f64,
    fabric: &Fabric<'_>,
    cfg: &CommConfig,
) -> CommSchedule {
    let partials: Vec<Vec<()>> = vec![vec![(); vec_len]; n_ranks];
    let (_, sched) = run_collective(strategy, &partials, |_, _| (), fabric, cfg, elem_bytes);
    sched
}

/// Plans a plain device→host gather of per-rank payloads (no reduction):
/// one step, one flow per rank with explicit byte counts. Used for the
/// bucket-partial gather before a CPU-side bucket-reduce.
pub fn gather_to_host(
    per_rank_bytes: &[f64],
    fabric: &Fabric<'_>,
    cfg: &CommConfig,
) -> CommSchedule {
    let n = per_rank_bytes.len();
    let mut sched = CommSchedule::new("gather-to-host", n, n, 0.0);
    // Rank r is the sole contributor of "element" r; a rank with nothing
    // to send contributes no elements at all.
    for (r, owns) in sched.rank_owns.iter_mut().enumerate() {
        *owns = if per_rank_bytes[r] > 0.0 { (r, r + 1) } else { (r, r) };
    }
    let mut step = CommStep::default();
    for (r, &bytes) in per_rank_bytes.iter().enumerate() {
        if bytes <= 0.0 {
            continue;
        }
        step.flows.push(Flow {
            src: Endpoint::Rank(r),
            dst: Endpoint::Host,
            lo: r,
            hi: r + 1,
            bytes,
            reduced: true,
        });
    }
    if !step.flows.is_empty() {
        sched.steps.push(step);
    }
    sched.finalize(fabric, cfg);
    trace::maybe_submit(&sched);
    sched
}

/// Ring reduce-scatter over `bufs` in place: `n − 1` steps; in step `t`
/// rank `r` sends chunk `(r − t) mod n` to rank `(r + 1) mod n`, which
/// reduces it in. Afterwards rank `r` holds the fully reduced chunk
/// `(r + 1) mod n`.
fn ring_reduce_scatter<T: Clone>(
    bufs: &mut [Vec<T>],
    op: &impl Fn(&T, &T) -> T,
    sched: &mut CommSchedule,
    elem_bytes: f64,
) {
    let n = bufs.len();
    let v = bufs[0].len();
    for t in 0..n.saturating_sub(1) {
        let mut step = CommStep::default();
        let mut payloads: Vec<(usize, usize, Vec<T>)> = Vec::new();
        for (r, buf) in bufs.iter().enumerate() {
            let c = (r + n - t % n) % n;
            let (lo, hi) = chunk_range(v, n, c);
            if lo == hi {
                continue;
            }
            let dst = (r + 1) % n;
            step.flows.push(Flow {
                src: Endpoint::Rank(r),
                dst: Endpoint::Rank(dst),
                lo,
                hi,
                bytes: (hi - lo) as f64 * elem_bytes,
                // fully reduced only on the last step's arrival, which
                // the receiver completes locally — in flight it is not
                reduced: false,
            });
            payloads.push((dst, lo, buf[lo..hi].to_vec()));
        }
        if !step.flows.is_empty() {
            sched.steps.push(step);
        }
        // Apply with pre-step snapshot semantics: all sends read the
        // state from before this step (payloads captured above).
        for (dst, lo, data) in payloads {
            for (i, x) in data.iter().enumerate() {
                bufs[dst][lo + i] = op(&bufs[dst][lo + i], x);
            }
        }
    }
}

/// Ring all-gather of the fully reduced chunks: `n − 1` steps; in step
/// `t` rank `r` forwards chunk `(r + 1 − t) mod n`.
fn ring_all_gather<T: Clone>(bufs: &mut [Vec<T>], sched: &mut CommSchedule, elem_bytes: f64) {
    let n = bufs.len();
    let v = bufs[0].len();
    for t in 0..n.saturating_sub(1) {
        let mut step = CommStep::default();
        let mut payloads: Vec<(usize, usize, Vec<T>)> = Vec::new();
        for (r, buf) in bufs.iter().enumerate() {
            let c = (r + 1 + n - t % n) % n;
            let (lo, hi) = chunk_range(v, n, c);
            if lo == hi {
                continue;
            }
            let dst = (r + 1) % n;
            step.flows.push(Flow {
                src: Endpoint::Rank(r),
                dst: Endpoint::Rank(dst),
                lo,
                hi,
                bytes: (hi - lo) as f64 * elem_bytes,
                reduced: true,
            });
            payloads.push((dst, lo, buf[lo..hi].to_vec()));
        }
        if !step.flows.is_empty() {
            sched.steps.push(step);
        }
        for (dst, lo, data) in payloads {
            for (i, x) in data.iter().enumerate() {
                bufs[dst][lo + i] = x.clone();
            }
        }
    }
}

/// Appends a single-flow step shipping rank `src`'s fully reduced
/// elements `[lo, hi)` to the host.
fn push_rank_to_host(sched: &mut CommSchedule, src: usize, lo: usize, hi: usize, elem_bytes: f64) {
    if lo == hi {
        return;
    }
    sched.steps.push(CommStep {
        flows: vec![Flow {
            src: Endpoint::Rank(src),
            dst: Endpoint::Host,
            lo,
            hi,
            bytes: (hi - lo) as f64 * elem_bytes,
            reduced: true,
        }],
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat() -> Fabric<'static> {
        Fabric::Flat {
            host_gbps: 64.0,
            peer_gbps: 600.0,
        }
    }

    fn serial_sum(partials: &[Vec<u64>]) -> Vec<u64> {
        let mut out = partials[0].clone();
        for p in &partials[1..] {
            for (a, b) in out.iter_mut().zip(p) {
                *a = a.wrapping_add(*b);
            }
        }
        out
    }

    fn sample(n: usize, v: usize) -> Vec<Vec<u64>> {
        (0..n)
            .map(|r| {
                (0..v)
                    .map(|e| {
                        let x = (r * 1_000_003 + e * 7919 + 13) as u64;
                        x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn all_strategies_match_serial_reduction() {
        for n in [1, 2, 3, 4, 5, 8, 13] {
            for v in [1, 2, 7, 16, 33] {
                let partials = sample(n, v);
                let want = serial_sum(&partials);
                for strat in CollectiveStrategy::ALL {
                    let (got, sched) = run_collective(
                        strat,
                        &partials,
                        |a, b| a.wrapping_add(*b),
                        &flat(),
                        &CommConfig::default(),
                        8.0,
                    );
                    assert_eq!(got, want, "{} n={n} v={v}", strat.name());
                    assert_eq!(sched.n_ranks, n);
                    assert_eq!(sched.vec_len, v);
                    if n > 1 {
                        assert!(sched.total_s > 0.0, "{}", strat.name());
                    }
                }
            }
        }
    }

    #[test]
    fn plan_matches_run_cost() {
        let partials = sample(6, 24);
        for strat in CollectiveStrategy::ALL {
            let (_, ran) = run_collective(
                strat,
                &partials,
                |a, b| a.wrapping_add(*b),
                &flat(),
                &CommConfig::default(),
                8.0,
            );
            let planned = plan_collective(strat, 6, 24, 8.0, &flat(), &CommConfig::default());
            assert_eq!(planned.total_s, ran.total_s, "{}", strat.name());
            assert_eq!(planned.n_flows(), ran.n_flows());
            assert_eq!(planned.total_bytes(), ran.total_bytes());
        }
    }

    #[test]
    fn ring_moves_less_host_traffic_than_gather() {
        let n = 8;
        let v = 64;
        let hg = plan_collective(
            CollectiveStrategy::HostGather,
            n,
            v,
            128.0,
            &flat(),
            &CommConfig::default(),
        );
        let rs = plan_collective(
            CollectiveStrategy::ReduceScatterGather,
            n,
            v,
            128.0,
            &flat(),
            &CommConfig::default(),
        );
        let host_bytes = |s: &CommSchedule| -> f64 {
            s.steps
                .iter()
                .flat_map(|st| st.flows.iter())
                .filter(|f| f.dst == Endpoint::Host)
                .map(|f| f.bytes)
                .sum()
        };
        assert!((host_bytes(&hg) - n as f64 * v as f64 * 128.0).abs() < 1e-9);
        assert!((host_bytes(&rs) - v as f64 * 128.0).abs() < 1e-9);
        // and host-gather charges the host-side reduction it implies
        assert_eq!(hg.host_reduce_ops, (n as u64 - 1) * v as u64);
        assert_eq!(rs.host_reduce_ops, 0);
    }

    #[test]
    fn gather_to_host_bytes_and_cost() {
        // Equal payloads over the shared flat host pipe serialize to
        // exactly total / bw (the legacy `transfer_time` semantics).
        let per = [2e6, 2e6, 2e6];
        let sched = gather_to_host(&per, &flat(), &CommConfig::default());
        assert_eq!(sched.n_flows(), 3);
        let total: f64 = per.iter().sum();
        assert!((sched.total_bytes() - total).abs() < 1e-9);
        let expect = total / (64.0 * 1e9);
        assert!((sched.total_s - expect).abs() < 1e-15);
        // Unequal payloads follow the convoy model: the largest flow
        // keeps its 1/n bandwidth share until the step ends.
        let uneven = gather_to_host(&[1e6, 2e6, 3e6], &flat(), &CommConfig::default());
        let convoy = 3.0 * 3e6 / (64.0 * 1e9);
        assert!((uneven.total_s - convoy).abs() < 1e-15);
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in CollectiveStrategy::ALL {
            assert_eq!(CollectiveStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(CollectiveStrategy::parse("nope"), None);
    }

    #[test]
    fn single_rank_collectives_are_trivial() {
        let partials = sample(1, 5);
        for strat in CollectiveStrategy::ALL {
            let (got, sched) = run_collective(
                strat,
                &partials,
                |a, b| a.wrapping_add(*b),
                &flat(),
                &CommConfig::default(),
                8.0,
            );
            assert_eq!(got, partials[0]);
            assert_eq!(sched.host_reduce_ops, 0);
        }
    }
}
