//! Interconnect topology graphs: GPUs, switches, hosts and NICs joined
//! by links with bandwidth and latency.
//!
//! The paper's 16- and 32-GPU configurations span multiple DGX boxes, so
//! the flat two-scalar interconnect model (`interconnect_gbps` /
//! `peer_gbps`) cannot reproduce the node-boundary knee of its scaling
//! curves. This module models the interconnect as an explicit graph:
//!
//! * **nodes** — GPUs, NVSwitch-class peer switches, PCIe hubs/root
//!   complexes, host CPUs and InfiniBand NICs/switches;
//! * **links** — undirected, with a sustained bandwidth (GB/s) and a
//!   per-message latency (seconds);
//! * **routing** — deterministic shortest path (Dijkstra over
//!   `latency + ref_bytes/bandwidth`), where only switch-class nodes may
//!   relay traffic (a GPU or host is never a transit hop);
//! * **contention** — per-link flow metering used by the schedule layer
//!   to divide link bandwidth among concurrent flows.
//!
//! Presets mirror the testbeds the paper evaluates on: a single
//! NVSwitch-backed DGX-A100 box, a PCIe-only RTX4090-class box, and a
//! multi-node DGX pod whose boxes are joined over InfiniBand.

/// What a topology node is. The variant determines whether the node may
/// relay traffic: only switch-class nodes ([`NodeKind::Switch`],
/// [`NodeKind::PcieHub`], [`NodeKind::Nic`]) appear in the interior of a
/// route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A GPU endpoint, carrying its global device index.
    Gpu(usize),
    /// An NVSwitch-class all-to-all peer switch.
    Switch,
    /// A PCIe hub / root complex aggregating device links toward a host.
    PcieHub,
    /// A host CPU endpoint.
    Host,
    /// A NIC or InfiniBand switch port (relays inter-node traffic).
    Nic,
}

impl NodeKind {
    /// True when the node may appear in the interior of a route.
    pub fn can_relay(&self) -> bool {
        matches!(self, Self::Switch | Self::PcieHub | Self::Nic)
    }
}

/// One node of the interconnect graph.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// Node kind (GPU / switch / hub / host / NIC).
    pub kind: NodeKind,
    /// Human-readable label used in reports (e.g. `"box1/gpu3"`).
    pub label: String,
}

/// One undirected link of the interconnect graph.
#[derive(Clone, Debug, PartialEq)]
pub struct Link {
    /// First endpoint (node index).
    pub a: usize,
    /// Second endpoint (node index).
    pub b: usize,
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Per-message latency in seconds.
    pub latency_s: f64,
    /// Whether the link is operational. A downed link stays in the graph
    /// (so link indices remain stable) but the router never crosses it.
    pub up: bool,
}

/// Why a route could not be produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// No operational path joins the two endpoints.
    Disconnected {
        /// Source node label.
        from: String,
        /// Destination node label.
        to: String,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Disconnected { from, to } => {
                write!(f, "no operational route from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A routed path between two endpoints under the α–β cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct Route {
    /// Node indices along the path, source first, destination last.
    pub nodes: Vec<usize>,
    /// Link indices along the path (one fewer than `nodes`).
    pub links: Vec<usize>,
    /// α: total per-message latency (sum of link latencies), seconds.
    pub alpha_s: f64,
    /// Bottleneck bandwidth in GB/s (minimum over the path's links).
    pub min_gbps: f64,
}

impl Route {
    /// Number of store-and-forward hops (= number of links).
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Reference message size used to weight routing decisions: large enough
/// that bandwidth dominates switch-hop latency, so peer traffic prefers
/// the NVSwitch plane over a detour through the host.
const ROUTE_REF_BYTES: f64 = 1_048_576.0;

/// An interconnect topology graph.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Preset (or user-chosen) name, e.g. `"dgx-a100-pod-4x8"`.
    pub name: String,
    /// All nodes.
    pub nodes: Vec<Node>,
    /// All links.
    pub links: Vec<Link>,
    /// GPU node index by global GPU rank.
    gpu_nodes: Vec<usize>,
    /// Node index of the master host (rank 0's host): the CPU that runs
    /// bucket-reduce and window-reduce.
    master_host: usize,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            links: Vec::new(),
            gpu_nodes: Vec::new(),
            master_host: usize::MAX,
        }
    }

    /// Adds a node and returns its index. The first [`NodeKind::Host`]
    /// added becomes the master host; GPU nodes must be added in rank
    /// order.
    pub fn add_node(&mut self, kind: NodeKind, label: impl Into<String>) -> usize {
        let id = self.nodes.len();
        match kind {
            NodeKind::Gpu(rank) => {
                assert_eq!(rank, self.gpu_nodes.len(), "GPU nodes must be added in rank order");
                self.gpu_nodes.push(id);
            }
            NodeKind::Host if self.master_host == usize::MAX => self.master_host = id,
            _ => {}
        }
        self.nodes.push(Node {
            kind,
            label: label.into(),
        });
        id
    }

    /// Adds an undirected link and returns its index.
    pub fn connect(&mut self, a: usize, b: usize, bandwidth_gbps: f64, latency_s: f64) -> usize {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "link endpoints must exist");
        assert!(bandwidth_gbps > 0.0, "links need positive bandwidth");
        self.links.push(Link {
            a,
            b,
            bandwidth_gbps,
            latency_s,
            up: true,
        });
        self.links.len() - 1
    }

    /// Index of the (first) link joining nodes `a` and `b`, in either
    /// orientation.
    pub fn link_between(&self, a: usize, b: usize) -> Option<usize> {
        self.links
            .iter()
            .position(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
    }

    /// Indices of all links incident to `node`.
    pub fn links_of_node(&self, node: usize) -> Vec<usize> {
        (0..self.links.len())
            .filter(|&i| self.links[i].a == node || self.links[i].b == node)
            .collect()
    }

    /// Marks link `id` down: it stays in the graph (indices are stable)
    /// but the router never crosses it.
    pub fn set_link_down(&mut self, id: usize) {
        self.links[id].up = false;
    }

    /// Degrades link `id` to `factor` of its nominal bandwidth
    /// (`0 < factor ≤ 1`). The link stays routable; every schedule
    /// crossing it re-prices.
    pub fn degrade_link(&mut self, id: usize, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0, "degrade factor must be in (0, 1]");
        self.links[id].bandwidth_gbps *= factor;
    }

    /// Number of GPU endpoints.
    pub fn n_gpus(&self) -> usize {
        self.gpu_nodes.len()
    }

    /// Node index of GPU `rank`.
    ///
    /// # Panics
    ///
    /// Panics when `rank` is out of range.
    pub fn gpu_node(&self, rank: usize) -> usize {
        self.gpu_nodes[rank]
    }

    /// Node index of the master host (the CPU running the reduce stages).
    ///
    /// # Panics
    ///
    /// Panics when the topology declares no host.
    pub fn master_host(&self) -> usize {
        assert!(self.master_host != usize::MAX, "topology has no host node");
        self.master_host
    }

    /// Label of link `id`, `"a<->b"`.
    pub fn link_label(&self, id: usize) -> String {
        let l = &self.links[id];
        format!("{}<->{}", self.nodes[l.a].label, self.nodes[l.b].label)
    }

    /// Deterministic shortest path from `from` to `to` under the α–β
    /// weight `latency + ref_bytes / bandwidth`, relaying only through
    /// switch-class nodes. Returns `None` when disconnected.
    pub fn route(&self, from: usize, to: usize) -> Option<Route> {
        if from == to {
            return Some(Route {
                nodes: vec![from],
                links: Vec::new(),
                alpha_s: 0.0,
                min_gbps: f64::INFINITY,
            });
        }
        // Dijkstra with deterministic tie-breaking on (cost, node id).
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n]; // (node, link)
        let mut done = vec![false; n];
        dist[from] = 0.0;
        loop {
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for v in 0..n {
                if !done[v] && dist[v] < best {
                    best = dist[v];
                    u = v;
                }
            }
            if u == usize::MAX {
                return None;
            }
            if u == to {
                break;
            }
            done[u] = true;
            // endpoints other than the source never relay
            if u != from && !self.nodes[u].kind.can_relay() {
                continue;
            }
            for (li, l) in self.links.iter().enumerate() {
                if !l.up {
                    continue;
                }
                let v = if l.a == u {
                    l.b
                } else if l.b == u {
                    l.a
                } else {
                    continue;
                };
                let w = l.latency_s + ROUTE_REF_BYTES / (l.bandwidth_gbps * 1e9);
                if dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                    prev[v] = Some((u, li));
                }
            }
        }
        let mut nodes = vec![to];
        let mut links = Vec::new();
        let mut cur = to;
        while let Some((p, li)) = prev[cur] {
            links.push(li);
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        links.reverse();
        let alpha_s = links.iter().map(|&l| self.links[l].latency_s).sum();
        let min_gbps = links
            .iter()
            .map(|&l| self.links[l].bandwidth_gbps)
            .fold(f64::INFINITY, f64::min);
        Some(Route {
            nodes,
            links,
            alpha_s,
            min_gbps,
        })
    }

    /// Route between two GPUs by rank.
    ///
    /// # Panics
    ///
    /// Panics when the GPUs are disconnected (a malformed or faulted
    /// topology) — use [`Self::try_gpu_route`] when disconnection is an
    /// expected outcome.
    pub fn gpu_route(&self, a: usize, b: usize) -> Route {
        self.try_gpu_route(a, b).expect("GPUs must be connected")
    }

    /// Fallible route between two GPUs by rank: a faulted fabric can
    /// legitimately partition a pair.
    pub fn try_gpu_route(&self, a: usize, b: usize) -> Result<Route, RouteError> {
        let (na, nb) = (self.gpu_node(a), self.gpu_node(b));
        self.route(na, nb).ok_or_else(|| RouteError::Disconnected {
            from: self.nodes[na].label.clone(),
            to: self.nodes[nb].label.clone(),
        })
    }

    /// Route from GPU `rank` to the master host.
    ///
    /// # Panics
    ///
    /// Panics when the GPU cannot reach the host — use
    /// [`Self::try_gpu_to_host_route`] when disconnection is an expected
    /// outcome.
    pub fn gpu_to_host_route(&self, rank: usize) -> Route {
        self.try_gpu_to_host_route(rank).expect("GPU must reach the host")
    }

    /// Fallible route from GPU `rank` to the master host: a GPU whose
    /// ports are all down cannot reach it, and the engine treats such a
    /// rank as lost.
    pub fn try_gpu_to_host_route(&self, rank: usize) -> Result<Route, RouteError> {
        let (n, h) = (self.gpu_node(rank), self.master_host());
        self.route(n, h).ok_or_else(|| RouteError::Disconnected {
            from: self.nodes[n].label.clone(),
            to: self.nodes[h].label.clone(),
        })
    }

    // ---- presets --------------------------------------------------------

    /// A single NVSwitch-backed DGX-A100-class box with `n` GPUs
    /// (`n = 8` is the paper's testbed node).
    ///
    /// Wiring per GPU: a 600 GB/s NVLink port into the box NVSwitch and a
    /// 64 GB/s PCIe link into the box PCIe hub; the hub reaches the host
    /// over one shared 64 GB/s root port (so a full-box host gather is
    /// root-port-bound, matching the flat model's single host pipe).
    pub fn single_box(n: usize) -> Self {
        assert!(n >= 1, "a box needs at least one GPU");
        let mut t = Self::new(format!("dgx-a100-box-{n}"));
        t.wire_box(0, n, LinkRates::nvswitch_box());
        t
    }

    /// The paper's 8-GPU DGX-A100 node.
    pub fn dgx_a100_box() -> Self {
        Self::single_box(8)
    }

    /// A PCIe-only box (RTX4090-class): no peer switch, every GPU hangs
    /// off one PCIe hub at 32 GB/s, so peer traffic detours through the
    /// hub and contends with the host link.
    pub fn pcie_box(n: usize) -> Self {
        assert!(n >= 1, "a box needs at least one GPU");
        let mut t = Self::new(format!("pcie-box-{n}"));
        t.wire_box(0, n, LinkRates::pcie_box());
        t
    }

    /// A multi-node DGX-A100 pod: `n` GPUs in boxes of eight, each box's
    /// NVSwitch plane reaching an InfiniBand switch through a 200 GB/s
    /// NIC aggregate (8 × HDR ports), and the remote hosts' traffic
    /// landing on box 0's PCIe hub. Cross-node traffic is therefore
    /// NIC-bound (200 GB/s shared per box) — the source of the scaling
    /// knee at node boundaries.
    pub fn dgx_pod(n: usize) -> Self {
        assert!(n > 8, "a pod needs more than one 8-GPU box");
        let n_boxes = n.div_ceil(8);
        let mut t = Self::new(format!("dgx-a100-pod-{n_boxes}x8"));
        let ib = t.add_node(NodeKind::Nic, "ib-switch");
        for b in 0..n_boxes {
            let gpus = (n - 8 * b).min(8);
            let (switch, hub) = t.wire_box(b, gpus, LinkRates::nvswitch_box());
            let nic = t.add_node(NodeKind::Nic, format!("box{b}/nic"));
            t.connect(switch, nic, LinkRates::NIC_GBPS, LinkRates::NIC_LATENCY_S);
            // the NIC also reaches the box's PCIe hub so remote traffic
            // can terminate on a host
            t.connect(nic, hub, LinkRates::PCIE_GBPS, LinkRates::PCIE_LATENCY_S);
            t.connect(nic, ib, LinkRates::NIC_GBPS, LinkRates::NIC_LATENCY_S);
        }
        t
    }

    /// The cross-pod fleet fabric: `n_pods` pods, each contributing one
    /// reduce-leader rank whose aggregated window partials leave the pod
    /// through its 200 GB/s NIC onto an InfiniBand core switch. The
    /// fleet coordinator host hangs off the core switch behind its own
    /// NIC and PCIe hub, so cross-pod reduce trees span the NIC tier
    /// end-to-end and the final fold lands on the coordinator — every
    /// hop pays InfiniBand latency, which is what makes the pod-count
    /// scaling knee visible.
    pub fn fleet(n_pods: usize) -> Self {
        assert!(n_pods >= 1, "a fleet needs at least one pod");
        let mut t = Self::new(format!("fleet-{n_pods}pods"));
        // Coordinator first: its host node becomes the master host.
        let hub = t.add_node(NodeKind::PcieHub, "coord/hub");
        let host = t.add_node(NodeKind::Host, "coord/host");
        t.connect(hub, host, LinkRates::PCIE_GBPS, LinkRates::PCIE_LATENCY_S);
        let core = t.add_node(NodeKind::Nic, "ib-core");
        let coord_nic = t.add_node(NodeKind::Nic, "coord/nic");
        t.connect(coord_nic, hub, LinkRates::PCIE_GBPS, LinkRates::PCIE_LATENCY_S);
        t.connect(coord_nic, core, LinkRates::NIC_GBPS, LinkRates::NIC_LATENCY_S);
        for p in 0..n_pods {
            let nic = t.add_node(NodeKind::Nic, format!("pod{p}/nic"));
            let g = t.add_node(NodeKind::Gpu(p), format!("pod{p}/leader"));
            t.connect(g, nic, LinkRates::NIC_GBPS, LinkRates::NIC_LATENCY_S);
            t.connect(nic, core, LinkRates::NIC_GBPS, LinkRates::NIC_LATENCY_S);
        }
        t
    }

    /// Wires one box (GPUs, switch-or-hub plane, host) with `gpus` GPUs
    /// whose global ranks continue from the GPUs already present.
    /// Returns `(peer plane node, pcie hub node)` — for a PCIe-only box
    /// both are the hub.
    fn wire_box(&mut self, box_idx: usize, gpus: usize, rates: LinkRates) -> (usize, usize) {
        let hub = self.add_node(NodeKind::PcieHub, format!("box{box_idx}/hub"));
        let host = self.add_node(NodeKind::Host, format!("box{box_idx}/host"));
        self.connect(hub, host, rates.pcie_gbps, rates.pcie_latency_s);
        let plane = if rates.peer_gbps > 0.0 {
            self.add_node(NodeKind::Switch, format!("box{box_idx}/nvswitch"))
        } else {
            hub
        };
        for _ in 0..gpus {
            let rank = self.gpu_nodes.len();
            let g = self.add_node(NodeKind::Gpu(rank), format!("box{box_idx}/gpu{rank}"));
            if rates.peer_gbps > 0.0 {
                self.connect(g, plane, rates.peer_gbps, rates.peer_latency_s);
            }
            self.connect(g, hub, rates.pcie_gbps, rates.pcie_latency_s);
        }
        (plane, hub)
    }
}

/// Link-rate bundle used by the box presets.
#[derive(Clone, Copy, Debug)]
pub struct LinkRates {
    /// GPU↔NVSwitch bandwidth (0 = no peer plane).
    pub peer_gbps: f64,
    /// Per-message NVLink hop latency.
    pub peer_latency_s: f64,
    /// GPU↔hub and hub↔host PCIe bandwidth.
    pub pcie_gbps: f64,
    /// Per-message PCIe hop latency.
    pub pcie_latency_s: f64,
}

impl LinkRates {
    /// NVSwitch↔NIC / NIC↔IB-switch aggregate bandwidth (8 × HDR200).
    pub const NIC_GBPS: f64 = 200.0;
    /// Per-message InfiniBand hop latency.
    pub const NIC_LATENCY_S: f64 = 2e-6;
    /// PCIe 4 ×16 class bandwidth (the DGX host plane).
    pub const PCIE_GBPS: f64 = 64.0;
    /// Per-message PCIe hop latency.
    pub const PCIE_LATENCY_S: f64 = 5e-6;

    /// Rates for an NVSwitch-backed DGX-A100-class box.
    pub fn nvswitch_box() -> Self {
        Self {
            peer_gbps: 600.0,
            peer_latency_s: 2e-6,
            pcie_gbps: Self::PCIE_GBPS,
            pcie_latency_s: Self::PCIE_LATENCY_S,
        }
    }

    /// Rates for a PCIe-only (RTX4090-class) box.
    pub fn pcie_box() -> Self {
        Self {
            peer_gbps: 0.0,
            peer_latency_s: 0.0,
            pcie_gbps: 32.0,
            pcie_latency_s: Self::PCIE_LATENCY_S,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_box_peer_routes_over_nvswitch() {
        let t = Topology::dgx_a100_box();
        assert_eq!(t.n_gpus(), 8);
        let r = t.gpu_route(0, 7);
        assert_eq!(r.hops(), 2, "gpu->nvswitch->gpu");
        assert_eq!(r.min_gbps, 600.0);
    }

    #[test]
    fn single_box_host_route_is_pcie_bound() {
        let t = Topology::dgx_a100_box();
        let r = t.gpu_to_host_route(3);
        assert_eq!(r.hops(), 2, "gpu->hub->host");
        assert_eq!(r.min_gbps, 64.0);
    }

    #[test]
    fn pcie_box_peer_detours_through_hub() {
        let t = Topology::pcie_box(4);
        let r = t.gpu_route(0, 1);
        assert_eq!(r.hops(), 2);
        assert_eq!(r.min_gbps, 32.0);
    }

    #[test]
    fn pod_cross_node_is_nic_bound() {
        let t = Topology::dgx_pod(16);
        assert_eq!(t.n_gpus(), 16);
        // intra-box stays on the NVSwitch plane
        let intra = t.gpu_route(0, 7);
        assert_eq!(intra.min_gbps, 600.0);
        // cross-box bottlenecks on the 200 GB/s NIC aggregate
        let cross = t.gpu_route(0, 8);
        assert_eq!(cross.min_gbps, 200.0);
        assert!(cross.hops() > intra.hops());
        assert!(cross.alpha_s > intra.alpha_s);
    }

    #[test]
    fn pod_remote_host_route_terminates_on_master_hub() {
        let t = Topology::dgx_pod(16);
        let local = t.gpu_to_host_route(0);
        let remote = t.gpu_to_host_route(12);
        assert_eq!(local.min_gbps, 64.0);
        assert_eq!(remote.min_gbps, 64.0, "remote lands on the master root port");
        assert!(remote.hops() > local.hops());
        assert!(remote.alpha_s > local.alpha_s);
    }

    #[test]
    fn gpus_never_relay() {
        // in a pod, NVSwitch->hub traffic must not shortcut through a GPU
        let t = Topology::dgx_pod(16);
        for rank in [8usize, 9, 15] {
            let r = t.gpu_to_host_route(rank);
            for &mid in &r.nodes[1..r.nodes.len() - 1] {
                assert!(
                    t.nodes[mid].kind.can_relay(),
                    "transit node {} must be switch-class",
                    t.nodes[mid].label
                );
            }
        }
    }

    #[test]
    fn self_route_is_free() {
        let t = Topology::dgx_a100_box();
        let r = t.route(t.gpu_node(2), t.gpu_node(2)).unwrap();
        assert_eq!(r.hops(), 0);
        assert_eq!(r.alpha_s, 0.0);
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        let mut t = Topology::new("two-islands");
        let a = t.add_node(NodeKind::Gpu(0), "a");
        let b = t.add_node(NodeKind::Gpu(1), "b");
        assert_eq!(t.route(a, b), None);
        assert!(matches!(
            t.try_gpu_route(0, 1),
            Err(RouteError::Disconnected { .. })
        ));
    }

    #[test]
    fn downed_nvswitch_link_reroutes_via_host_hub() {
        // Golden degraded-topology test: drop gpu0's NVLink port in a
        // single box and its peer traffic must detour over PCIe through
        // the hub — 2 hops, priced at the 64 GB/s root-plane bandwidth
        // instead of 600 GB/s NVLink.
        let mut t = Topology::dgx_a100_box();
        let clean = t.gpu_route(0, 1);
        assert_eq!(clean.min_gbps, 600.0);
        let g0 = t.gpu_node(0);
        let nvlink = t
            .links_of_node(g0)
            .into_iter()
            .find(|&l| t.links[l].bandwidth_gbps == 600.0)
            .expect("gpu0 has an NVLink port");
        t.set_link_down(nvlink);
        let r = t.gpu_route(0, 1);
        assert_eq!(r.hops(), 2, "gpu0->hub->gpu1");
        assert_eq!(r.min_gbps, 64.0, "detour is PCIe-priced");
        assert!(
            t.nodes[r.nodes[1]].kind == NodeKind::PcieHub,
            "detour relays through the host hub, got {}",
            t.nodes[r.nodes[1]].label
        );
        // unaffected pairs keep the NVSwitch plane
        assert_eq!(t.gpu_route(1, 2).min_gbps, 600.0);
        // gpu0 still reaches the host (its PCIe port is fine)
        assert_eq!(t.gpu_to_host_route(0).min_gbps, 64.0);
    }

    #[test]
    fn degraded_link_reprices_but_stays_routable() {
        let mut t = Topology::dgx_a100_box();
        let g0 = t.gpu_node(0);
        let nvlink = t
            .links_of_node(g0)
            .into_iter()
            .find(|&l| t.links[l].bandwidth_gbps == 600.0)
            .expect("gpu0 has an NVLink port");
        t.degrade_link(nvlink, 0.25);
        let r = t.gpu_route(0, 1);
        // at 150 GB/s the NVSwitch plane still beats the 64 GB/s detour
        assert_eq!(r.hops(), 2);
        assert_eq!(r.min_gbps, 150.0);
        // degrade below PCIe and the router abandons the plane
        t.degrade_link(nvlink, 0.1); // now 15 GB/s
        let r = t.gpu_route(0, 1);
        assert_eq!(r.min_gbps, 64.0, "router prefers the PCIe detour");
    }

    #[test]
    fn fully_isolated_gpu_loses_host_reachability() {
        let mut t = Topology::dgx_a100_box();
        for l in t.links_of_node(t.gpu_node(3)) {
            t.set_link_down(l);
        }
        assert!(t.try_gpu_to_host_route(3).is_err());
        assert!(t.try_gpu_route(3, 4).is_err());
        // the rest of the box is unaffected
        assert!(t.try_gpu_to_host_route(2).is_ok());
        let err = t.try_gpu_route(3, 4).unwrap_err();
        assert!(err.to_string().contains("gpu3"), "{err}");
    }

    #[test]
    fn link_between_finds_either_orientation() {
        let t = Topology::dgx_a100_box();
        let g0 = t.gpu_node(0);
        let g1 = t.gpu_node(1);
        assert!(t.link_between(g0, g1).is_none(), "no direct gpu-gpu link");
        for l in t.links_of_node(g0) {
            let link = &t.links[l];
            let other = if link.a == g0 { link.b } else { link.a };
            assert_eq!(t.link_between(other, g0), Some(l));
        }
    }
}
