//! Property tests: every collective strategy is bit-identical to the
//! serial PADD reduction on random MSM partials, on every curve and
//! every fabric, plus golden tests pinning the preset topologies'
//! routed bandwidths.

use distmsm_comms::{
    plan_collective, run_collective, CollectiveStrategy, CommConfig, Fabric, Topology,
};
use distmsm_ec::curves::{Bls12377G1, Bls12381G1, Bn254G1, Mnt4753G1};
use distmsm_ec::{Curve, XyzzPoint};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Random per-rank partial vectors of group elements, as produced by
/// per-GPU window reduction (identity sprinkled in: empty windows).
fn random_partials<C: Curve>(n_ranks: usize, vec_len: usize, seed: u64) -> Vec<Vec<XyzzPoint<C>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_ranks)
        .map(|_| {
            (0..vec_len)
                .map(|_| {
                    if rng.random_range(0..8u32) == 0 {
                        XyzzPoint::identity()
                    } else {
                        C::generator().scalar_mul(&C::random_scalar(&mut rng))
                    }
                })
                .collect()
        })
        .collect()
}

fn serial_padd<C: Curve>(partials: &[Vec<XyzzPoint<C>>]) -> Vec<XyzzPoint<C>> {
    let mut out = partials[0].clone();
    for p in &partials[1..] {
        for (acc, x) in out.iter_mut().zip(p) {
            *acc = acc.padd(x);
        }
    }
    out
}

fn check_all_strategies<C: Curve>(n_ranks: usize, vec_len: usize, seed: u64) {
    let partials = random_partials::<C>(n_ranks, vec_len, seed);
    let want = serial_padd(&partials);
    let pod = Topology::dgx_pod(12);
    let boxed = Topology::single_box(n_ranks.max(1));
    let fabrics: Vec<Fabric<'_>> = vec![
        Fabric::Flat {
            host_gbps: 64.0,
            peer_gbps: 600.0,
        },
        Fabric::Topology(&boxed),
        Fabric::Topology(&pod),
    ];
    for fabric in &fabrics {
        if let Fabric::Topology(t) = fabric {
            if t.n_gpus() < n_ranks {
                continue;
            }
        }
        for strat in CollectiveStrategy::ALL {
            let (got, sched) = run_collective(
                strat,
                &partials,
                |a, b| a.padd(b),
                fabric,
                &CommConfig::default(),
                128.0,
            );
            assert_eq!(got, want, "{} n={n_ranks} v={vec_len}", strat.name());
            assert_eq!(sched.n_ranks, n_ranks);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn bn254_collectives_match_serial(n in 1usize..9, v in 1usize..12, seed in 0u64..1000) {
        check_all_strategies::<Bn254G1>(n, v, seed);
    }

    #[test]
    fn bls12_377_collectives_match_serial(n in 1usize..7, v in 1usize..10, seed in 0u64..1000) {
        check_all_strategies::<Bls12377G1>(n, v, seed);
    }

    #[test]
    fn bls12_381_collectives_match_serial(n in 1usize..7, v in 1usize..10, seed in 0u64..1000) {
        check_all_strategies::<Bls12381G1>(n, v, seed);
    }

    #[test]
    fn mnt4753_collectives_match_serial(n in 1usize..5, v in 1usize..6, seed in 0u64..1000) {
        check_all_strategies::<Mnt4753G1>(n, v, seed);
    }
}

// ---- golden routed-bandwidth pins --------------------------------------

#[test]
fn golden_dgx_box_routes() {
    let t = Topology::dgx_a100_box();
    assert_eq!(t.n_gpus(), 8);
    for a in 0..8 {
        for b in 0..8 {
            let r = t.gpu_route(a, b);
            if a == b {
                assert_eq!(r.hops(), 0);
            } else {
                assert_eq!(r.hops(), 2, "gpu{a}->nvswitch->gpu{b}");
                assert_eq!(r.min_gbps, 600.0);
                assert_eq!(r.alpha_s, 4e-6);
            }
        }
        let h = t.gpu_to_host_route(a);
        assert_eq!(h.hops(), 2);
        assert_eq!(h.min_gbps, 64.0);
        assert_eq!(h.alpha_s, 1e-5);
    }
}

#[test]
fn golden_pcie_box_routes() {
    let t = Topology::pcie_box(4);
    let peer = t.gpu_route(0, 3);
    assert_eq!(peer.hops(), 2);
    assert_eq!(peer.min_gbps, 32.0);
    let host = t.gpu_to_host_route(2);
    assert_eq!(host.hops(), 2);
    assert_eq!(host.min_gbps, 32.0);
}

#[test]
fn golden_pod_routes() {
    let t = Topology::dgx_pod(32);
    assert_eq!(t.n_gpus(), 32);
    // intra-box unchanged from the single box
    let intra = t.gpu_route(0, 7);
    assert_eq!(intra.min_gbps, 600.0);
    assert_eq!(intra.hops(), 2);
    // cross-box: gpu -> nvswitch -> nic -> ib -> nic -> nvswitch -> gpu
    let cross = t.gpu_route(0, 31);
    assert_eq!(cross.hops(), 6);
    assert_eq!(cross.min_gbps, 200.0);
    // remote host gather crosses the fabric and lands on box 0's root port
    let remote_host = t.gpu_to_host_route(24);
    assert_eq!(remote_host.min_gbps, 64.0);
    assert!(remote_host.hops() > t.gpu_to_host_route(0).hops());
}

#[test]
fn analytic_plan_shows_cross_node_knee() {
    // Same 16-rank all-reduce: splitting the ranks across two boxes must
    // cost strictly more than one (hypothetical) single box of 16.
    let single = Topology::single_box(16);
    let pod = Topology::dgx_pod(16);
    for strat in CollectiveStrategy::ALL {
        let a = plan_collective(
            strat,
            16,
            64,
            128.0,
            &Fabric::Topology(&single),
            &CommConfig::default(),
        );
        let b = plan_collective(
            strat,
            16,
            64,
            128.0,
            &Fabric::Topology(&pod),
            &CommConfig::default(),
        );
        assert!(
            b.total_s > a.total_s,
            "{}: pod {} <= box {}",
            strat.name(),
            b.total_s,
            a.total_s
        );
    }
}
