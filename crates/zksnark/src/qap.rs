//! R1CS → QAP instance via NTT.
//!
//! The prover evaluates the constraint matrices against the assignment
//! (`az`, `bz`, `cz` over the constraint domain) and computes the
//! quotient `h = (az·bz − cz)/Z` on a coset — the NTT-heavy stage of
//! proof generation.

use crate::ntt::NttDomain;
use crate::r1cs::ConstraintSystem;
use distmsm_ff::{Fp, FpParams};

/// The prover-side QAP artefacts.
#[derive(Clone, Debug)]
pub struct QapWitness<P: FpParams<N>, const N: usize> {
    /// Evaluations `⟨A_k, z⟩` on the constraint domain (zero padded).
    pub az: Vec<Fp<P, N>>,
    /// Evaluations `⟨B_k, z⟩`.
    pub bz: Vec<Fp<P, N>>,
    /// Evaluations `⟨C_k, z⟩`.
    pub cz: Vec<Fp<P, N>>,
    /// Coefficients of the quotient polynomial `h`.
    pub h: Vec<Fp<P, N>>,
    /// The evaluation domain.
    pub domain: NttDomain<P, N>,
    /// NTT invocations spent (the cost-model input: 7 size-`d` NTTs).
    pub ntt_count: u32,
}

/// Computes the QAP witness for a satisfied constraint system.
///
/// # Panics
///
/// Panics if the field's two-adicity cannot host the constraint count, or
/// if the system is unsatisfied (the quotient would not exist — checked
/// via the polynomial identity in debug builds).
pub fn qap_witness<P: FpParams<N>, const N: usize>(
    cs: &ConstraintSystem<P, N>,
) -> QapWitness<P, N> {
    let d = cs.n_constraints().next_power_of_two().max(2);
    let log_d = d.trailing_zeros();
    let domain = NttDomain::<P, N>::new(log_d).expect("two-adicity too small for circuit");

    let mut az = vec![Fp::ZERO; d];
    let mut bz = vec![Fp::ZERO; d];
    let mut cz = vec![Fp::ZERO; d];
    for (k, c) in cs.constraints().iter().enumerate() {
        az[k] = cs.eval_lc(&c.a);
        bz[k] = cs.eval_lc(&c.b);
        cz[k] = cs.eval_lc(&c.c);
    }

    // interpolate to coefficients (3 inverse NTTs)
    let mut a_poly = az.clone();
    let mut b_poly = bz.clone();
    let mut c_poly = cz.clone();
    domain.inverse(&mut a_poly);
    domain.inverse(&mut b_poly);
    domain.inverse(&mut c_poly);

    // evaluate on the coset g·H where Z(x) = x^d − 1 is invertible
    let g = multiplicative_shift::<P, N>();
    let mut a_cos = a_poly;
    let mut b_cos = b_poly;
    let mut c_cos = c_poly;
    domain.coset_forward(&mut a_cos, g);
    domain.coset_forward(&mut b_cos, g);
    domain.coset_forward(&mut c_cos, g);

    // h|coset = (az·bz − cz)/Z, with Z constant on the coset
    let z_inv = domain
        .vanishing_on_coset(g)
        .inverse()
        .expect("Z nonzero off the domain");
    let mut h = Vec::with_capacity(d);
    for i in 0..d {
        h.push((a_cos[i] * b_cos[i] - c_cos[i]) * z_inv);
    }
    domain.coset_inverse(&mut h, g);
    // h has degree d − 2 for a satisfied system; the top coefficient must
    // vanish (this is the quotient-exactness check).
    debug_assert!(
        h.last().is_none_or(Fp::is_zero),
        "system unsatisfied: (az·bz − cz) is not divisible by Z"
    );

    QapWitness {
        az,
        bz,
        cz,
        h,
        domain,
        ntt_count: 3 + 3 + 1, // 3 iNTT + 3 coset NTT + 1 coset iNTT
    }
}

/// A coset shift: any element outside the 2^s-torsion; the field's small
/// quadratic non-residue works. Searching once per call is cheap relative
/// to the NTTs around it.
fn multiplicative_shift<P: FpParams<N>, const N: usize>() -> Fp<P, N> {
    let mut g = Fp::<P, N>::from_u64(2);
    while g.legendre() != -1 {
        g += Fp::ONE;
    }
    g
}

/// Verifies the QAP identity `az·bz − cz = h·Z` at a random point τ —
/// the structural soundness check this reproduction uses in place of a
/// full pairing verifier (DESIGN.md §1; proof verification is O(1) in the
/// paper and not part of any reproduced experiment).
pub fn check_qap_identity<P: FpParams<N>, const N: usize>(
    w: &QapWitness<P, N>,
    tau: Fp<P, N>,
) -> bool {
    let d = w.domain.size();
    // interpolate az/bz/cz and evaluate at tau
    let eval_from_values = |values: &[Fp<P, N>]| -> Fp<P, N> {
        let mut coeffs = values.to_vec();
        w.domain.inverse(&mut coeffs);
        horner(&coeffs, tau)
    };
    let a = eval_from_values(&w.az);
    let b = eval_from_values(&w.bz);
    let c = eval_from_values(&w.cz);
    let h = horner(&w.h, tau);
    let z = tau.pow(&[d as u64]) - Fp::ONE;
    a * b - c == h * z
}

fn horner<P: FpParams<N>, const N: usize>(coeffs: &[Fp<P, N>], x: Fp<P, N>) -> Fp<P, N> {
    coeffs
        .iter()
        .rev()
        .fold(Fp::ZERO, |acc, &c| acc * x + c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r1cs::synthetic_circuit;
    use distmsm_ff::params::Bn254Fr;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn qap_identity_holds_for_satisfied_system() {
        let mut rng = StdRng::seed_from_u64(30);
        let cs = synthetic_circuit::<Bn254Fr, 4, _>(100, &mut rng);
        assert!(cs.is_satisfied());
        let w = qap_witness(&cs);
        let tau = distmsm_ff::Fp::random(&mut rng);
        assert!(check_qap_identity(&w, tau));
    }

    #[test]
    fn qap_identity_fails_for_tampered_witness() {
        let mut rng = StdRng::seed_from_u64(31);
        let cs = synthetic_circuit::<Bn254Fr, 4, _>(64, &mut rng);
        let mut w = qap_witness(&cs);
        w.h[0] += distmsm_ff::Fp::ONE;
        let tau = distmsm_ff::Fp::random(&mut rng);
        assert!(!check_qap_identity(&w, tau));
    }

    #[test]
    fn ntt_count_is_seven() {
        let mut rng = StdRng::seed_from_u64(32);
        let cs = synthetic_circuit::<Bn254Fr, 4, _>(16, &mut rng);
        assert_eq!(qap_witness(&cs).ntt_count, 7);
    }

    #[test]
    fn domain_is_padded_to_power_of_two() {
        let mut rng = StdRng::seed_from_u64(33);
        let cs = synthetic_circuit::<Bn254Fr, 4, _>(100, &mut rng);
        let w = qap_witness(&cs);
        assert_eq!(w.domain.size(), 128);
        assert_eq!(w.az.len(), 128);
    }
}
