//! Complete Groth16 over BN254: trusted setup, proving (with every MSM on
//! the simulated multi-GPU engine) and **pairing-based verification**.
//!
//! This is the full protocol the paper's end-to-end workloads run —
//! "DistMSM generates proofs in the same format as those produced on
//! CPUs, allowing for verification by libsnark" — closed under this
//! repository: proofs produced here verify under the optimal ate pairing
//! of `distmsm-ec`, with the standard equation
//!
//! ```text
//! e(A, B) = e(α, β) · e(Σ aᵢ·ICᵢ, γ) · e(C, δ).
//! ```

use crate::qap::qap_witness;
use crate::r1cs::ConstraintSystem;
use distmsm::engine::{DistMsm, MsmError};
use distmsm_ec::curve::{Affine, Curve, XyzzPoint};
use distmsm_ec::curves::{Bn254G1, Bn254G2};
use distmsm_ec::pairing::pairing_product_is_one;
use distmsm_ec::MsmInstance;
use distmsm_ff::params::Bn254Fr;
use distmsm_ff::Fp;
use distmsm_gpu_sim::MultiGpuSystem;
use rand::Rng;

type Fr = Fp<Bn254Fr, 4>;
type G1 = Affine<Bn254G1>;
type G2 = Affine<Bn254G2>;

/// The Groth16 proving key (CRS, prover half).
#[derive(Clone, Debug)]
pub struct ProvingKey {
    alpha_g1: G1,
    beta_g1: G1,
    delta_g1: G1,
    beta_g2: G2,
    delta_g2: G2,
    /// `uᵢ(τ)·G1` for every variable.
    a_query: Vec<G1>,
    /// `vᵢ(τ)·G1`.
    b_g1_query: Vec<G1>,
    /// `vᵢ(τ)·G2`.
    b_g2_query: Vec<G2>,
    /// `((β·uᵢ + α·vᵢ + wᵢ)/δ)(τ)·G1` for private variables.
    l_query: Vec<G1>,
    /// `(τ^i·Z(τ)/δ)·G1` for the quotient.
    h_query: Vec<G1>,
    n_public: usize,
}

/// The Groth16 verifying key.
#[derive(Clone, Debug)]
pub struct VerifyingKey {
    alpha_g1: G1,
    beta_g2: G2,
    gamma_g2: G2,
    delta_g2: G2,
    /// `((β·uᵢ + α·vᵢ + wᵢ)/γ)(τ)·G1` for the constant and each public
    /// input.
    ic: Vec<G1>,
}

/// A Groth16 proof: exactly two G1 elements and one G2 element (the
/// paper's 127-byte constant-size proof in compressed form).
#[derive(Clone, Debug, PartialEq)]
pub struct Groth16Proof {
    /// The `A` commitment.
    pub a: G1,
    /// The `B` commitment.
    pub b: G2,
    /// The `C` commitment.
    pub c: G1,
}

impl Groth16Proof {
    /// Wire encoding: all three elements compressed (G1: 33 B, G2: 65 B
    /// via the `Fp²` square root) — 131 bytes, four flag bytes away from
    /// the paper's bit-packed 127.
    pub fn to_bytes(&self) -> Vec<u8> {
        use distmsm_ec::serialize::point_to_compressed;
        let mut out = point_to_compressed(&self.a);
        out.extend(point_to_compressed(&self.b));
        out.extend(point_to_compressed(&self.c));
        out
    }

    /// Strict decoding of [`Self::to_bytes`]; validates curve membership.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        use distmsm_ec::serialize::point_from_compressed;
        if bytes.len() != 33 + 65 + 33 {
            return None;
        }
        Some(Self {
            a: point_from_compressed(&bytes[..33])?,
            b: point_from_compressed(&bytes[33..98])?,
            c: point_from_compressed(&bytes[98..])?,
        })
    }
}

fn g1_mul(k: Fr) -> G1 {
    Bn254G1::generator().scalar_mul(&k.to_uint()).to_affine()
}

fn g2_mul(k: Fr) -> G2 {
    Bn254G2::generator().scalar_mul(&k.to_uint()).to_affine()
}

fn nonzero<R: Rng + ?Sized>(rng: &mut R) -> Fr {
    loop {
        let x = Fr::random(rng);
        if !x.is_zero() {
            return x;
        }
    }
}

/// Trusted setup for a circuit: samples the toxic waste `(τ, α, β, γ, δ)`
/// and evaluates the QAP polynomials at `τ` in the exponent.
///
/// # Panics
///
/// Panics if the circuit's domain exceeds the field's two-adicity.
pub fn setup<R: Rng + ?Sized>(
    cs: &ConstraintSystem<Bn254Fr, 4>,
    rng: &mut R,
) -> (ProvingKey, VerifyingKey) {
    let tau = nonzero(rng);
    let alpha = nonzero(rng);
    let beta = nonzero(rng);
    let gamma = nonzero(rng);
    let delta = nonzero(rng);

    let m = cs.n_variables();
    let d = cs.n_constraints().next_power_of_two().max(2);
    let domain = crate::ntt::NttDomain::<Bn254Fr, 4>::new(d.trailing_zeros())
        .expect("domain fits the field's two-adicity");

    // Lagrange basis at τ: L_j(τ) = ω^j · (τ^d − 1) / (d · (τ − ω^j))
    let z_tau = tau.pow(&[d as u64]) - Fr::ONE;
    assert!(!z_tau.is_zero(), "τ landed on the domain (re-run setup)");
    let omega = domain.generator();
    let d_inv = Fr::from_u64(d as u64).inverse().expect("d < r");
    let mut lagrange = Vec::with_capacity(d);
    let mut w_j = Fr::ONE;
    for _ in 0..d {
        let denom = (tau - w_j).inverse().expect("τ off the domain");
        lagrange.push(w_j * z_tau * d_inv * denom);
        w_j *= omega;
    }

    // u_i(τ), v_i(τ), w_i(τ) from the sparse constraint matrices
    let mut u = vec![Fr::ZERO; m];
    let mut v = vec![Fr::ZERO; m];
    let mut w = vec![Fr::ZERO; m];
    for (j, c) in cs.constraints().iter().enumerate() {
        for &(var, coeff) in &c.a {
            u[var] += coeff * lagrange[j];
        }
        for &(var, coeff) in &c.b {
            v[var] += coeff * lagrange[j];
        }
        for &(var, coeff) in &c.c {
            w[var] += coeff * lagrange[j];
        }
    }

    let gamma_inv = gamma.inverse().expect("nonzero");
    let delta_inv = delta.inverse().expect("nonzero");
    let n_pub = cs.n_public() + 1; // constant-1 wire counts as public

    let a_query: Vec<G1> = u.iter().map(|&ui| g1_mul(ui)).collect();
    let b_g1_query: Vec<G1> = v.iter().map(|&vi| g1_mul(vi)).collect();
    let b_g2_query: Vec<G2> = v.iter().map(|&vi| g2_mul(vi)).collect();

    let combined =
        |i: usize| -> Fr { beta * u[i] + alpha * v[i] + w[i] };
    let ic: Vec<G1> = (0..n_pub).map(|i| g1_mul(combined(i) * gamma_inv)).collect();
    let l_query: Vec<G1> = (n_pub..m).map(|i| g1_mul(combined(i) * delta_inv)).collect();

    // h query: τ^i · Z(τ)/δ for i in 0..d−1
    let mut h_query = Vec::with_capacity(d - 1);
    let mut tau_i = Fr::ONE;
    for _ in 0..(d - 1) {
        h_query.push(g1_mul(tau_i * z_tau * delta_inv));
        tau_i *= tau;
    }

    let pk = ProvingKey {
        alpha_g1: g1_mul(alpha),
        beta_g1: g1_mul(beta),
        delta_g1: g1_mul(delta),
        beta_g2: g2_mul(beta),
        delta_g2: g2_mul(delta),
        a_query,
        b_g1_query,
        b_g2_query,
        l_query,
        h_query,
        n_public: n_pub,
    };
    let vk = VerifyingKey {
        alpha_g1: pk.alpha_g1,
        beta_g2: pk.beta_g2,
        gamma_g2: g2_mul(gamma),
        delta_g2: pk.delta_g2,
        ic,
    };
    (pk, vk)
}

/// Produces a proof, running all four MSMs on the simulated multi-GPU
/// engine (the paper's Figure 1 pipeline end to end).
///
/// # Errors
///
/// Propagates MSM failures.
///
/// # Panics
///
/// Panics if the assignment does not satisfy the constraint system.
pub fn prove<R: Rng + ?Sized>(
    pk: &ProvingKey,
    cs: &ConstraintSystem<Bn254Fr, 4>,
    system: &MultiGpuSystem,
    rng: &mut R,
) -> Result<Groth16Proof, MsmError> {
    assert!(cs.is_satisfied(), "cannot prove an unsatisfied system");
    let engine = DistMsm::new(system.clone());
    let z: Vec<_> = cs.assignment().iter().map(Fp::to_uint).collect();

    let msm_g1 = |points: &[G1], scalars: &[<Bn254G1 as Curve>::Scalar]| {
        engine
            .execute(&MsmInstance::<Bn254G1> {
                points: points.to_vec(),
                scalars: scalars.to_vec(),
            })
            .map(|r| r.result)
    };

    let r = Fr::random(rng);
    let s = Fr::random(rng);

    // A = α + Σ zᵢ uᵢ(τ) + rδ
    let a_acc = msm_g1(&pk.a_query, &z)?
        .padd(&pk.alpha_g1.to_xyzz())
        .padd(&pk.delta_g1.scalar_mul(&r.to_uint()));

    // B = β + Σ zᵢ vᵢ(τ) + sδ (in G2, with a G1 copy for C)
    let b_g2 = engine
        .execute(&MsmInstance::<Bn254G2> {
            points: pk.b_g2_query.clone(),
            scalars: z.clone(),
        })?
        .result
        .padd(&pk.beta_g2.to_xyzz())
        .padd(&pk.delta_g2.scalar_mul(&s.to_uint()));
    let b_g1 = msm_g1(&pk.b_g1_query, &z)?
        .padd(&pk.beta_g1.to_xyzz())
        .padd(&pk.delta_g1.scalar_mul(&s.to_uint()));

    // C = Σ_priv zᵢ Lᵢ + h(τ)Z(τ)/δ + sA + rB − rsδ
    let qap = qap_witness(cs);
    let h_scalars: Vec<_> = qap
        .h
        .iter()
        .take(pk.h_query.len())
        .map(Fp::to_uint)
        .collect();
    let priv_scalars: Vec<_> = z[pk.n_public..].to_vec();
    let mut c_acc = XyzzPoint::<Bn254G1>::identity();
    if !pk.l_query.is_empty() {
        c_acc = c_acc.padd(&msm_g1(&pk.l_query, &priv_scalars)?);
    }
    if !pk.h_query.is_empty() {
        c_acc = c_acc.padd(&msm_g1(&pk.h_query[..h_scalars.len()], &h_scalars)?);
    }
    c_acc = c_acc
        .padd(&a_acc.scalar_mul(&s.to_uint()))
        .padd(&b_g1.scalar_mul(&r.to_uint()))
        .padd(&pk.delta_g1.scalar_mul(&(r * s).to_uint()).neg());

    Ok(Groth16Proof {
        a: a_acc.to_affine(),
        b: b_g2.to_affine(),
        c: c_acc.to_affine(),
    })
}

/// Verifies a proof against the public inputs with the pairing equation.
pub fn verify(vk: &VerifyingKey, public_inputs: &[Fr], proof: &Groth16Proof) -> bool {
    if public_inputs.len() + 1 != vk.ic.len() {
        return false;
    }
    // Σ aᵢ·ICᵢ with a₀ = 1
    let mut acc = vk.ic[0].to_xyzz();
    for (x, ic) in public_inputs.iter().zip(&vk.ic[1..]) {
        acc = acc.padd(&ic.scalar_mul(&x.to_uint()));
    }
    // e(A, B) · e(−α, β) · e(−acc, γ) · e(−C, δ) = 1
    pairing_product_is_one(&[
        (proof.a, proof.b),
        (vk.alpha_g1.neg(), vk.beta_g2),
        (acc.to_affine().neg(), vk.gamma_g2),
        (proof.c.neg(), vk.delta_g2),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r1cs::synthetic_circuit;
    use rand::{rngs::StdRng, SeedableRng};

    fn demo_circuit(x: u64, w: u64) -> (ConstraintSystem<Bn254Fr, 4>, Vec<Fr>) {
        // prove knowledge of w with x = w²  (one public input)
        let mut cs = ConstraintSystem::new();
        let x_var = cs.alloc(Fr::from_u64(x));
        cs.set_public(1);
        let w_var = cs.alloc(Fr::from_u64(w));
        let w2 = cs.mul(w_var, w_var);
        // enforce w² = x
        cs.enforce(
            vec![(w2, Fr::ONE)],
            vec![(ConstraintSystem::<Bn254Fr, 4>::one(), Fr::ONE)],
            vec![(x_var, Fr::ONE)],
        );
        (cs, vec![Fr::from_u64(x)])
    }

    #[test]
    fn prove_and_verify_square_circuit() {
        let mut rng = StdRng::seed_from_u64(800);
        let (cs, public) = demo_circuit(49, 7);
        assert!(cs.is_satisfied());
        let (pk, vk) = setup(&cs, &mut rng);
        let sys = MultiGpuSystem::dgx_a100(2);
        let proof = prove(&pk, &cs, &sys, &mut rng).expect("prove");
        assert!(verify(&vk, &public, &proof), "honest proof must verify");
    }

    #[test]
    fn wrong_public_input_rejected() {
        let mut rng = StdRng::seed_from_u64(801);
        let (cs, _) = demo_circuit(49, 7);
        let (pk, vk) = setup(&cs, &mut rng);
        let sys = MultiGpuSystem::dgx_a100(1);
        let proof = prove(&pk, &cs, &sys, &mut rng).expect("prove");
        assert!(!verify(&vk, &[Fr::from_u64(50)], &proof));
        assert!(!verify(&vk, &[], &proof), "arity mismatch rejected");
    }

    #[test]
    fn proof_serialization_round_trip() {
        let mut rng = StdRng::seed_from_u64(805);
        let (cs, public) = demo_circuit(36, 6);
        let (pk, vk) = setup(&cs, &mut rng);
        let sys = MultiGpuSystem::dgx_a100(1);
        let proof = prove(&pk, &cs, &sys, &mut rng).expect("prove");
        let bytes = proof.to_bytes();
        assert_eq!(bytes.len(), 131, "constant proof size");
        let decoded = Groth16Proof::from_bytes(&bytes).expect("decode");
        assert_eq!(decoded, proof);
        assert!(verify(&vk, &public, &decoded));
        assert!(Groth16Proof::from_bytes(&bytes[..100]).is_none());
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut rng = StdRng::seed_from_u64(802);
        let (cs, public) = demo_circuit(121, 11);
        let (pk, vk) = setup(&cs, &mut rng);
        let sys = MultiGpuSystem::dgx_a100(1);
        let mut proof = prove(&pk, &cs, &sys, &mut rng).expect("prove");
        proof.a = proof.a.neg();
        assert!(!verify(&vk, &public, &proof));
    }

    #[test]
    fn synthetic_circuit_round_trip() {
        let mut rng = StdRng::seed_from_u64(803);
        let cs = synthetic_circuit::<Bn254Fr, 4, _>(60, &mut rng);
        let (pk, vk) = setup(&cs, &mut rng);
        let sys = MultiGpuSystem::dgx_a100(4);
        let proof = prove(&pk, &cs, &sys, &mut rng).expect("prove");
        let public: Vec<Fr> = cs.assignment()[1..=cs.n_public()].to_vec();
        assert!(verify(&vk, &public, &proof));
    }

    #[test]
    fn proof_from_different_witness_still_verifies() {
        // zero-knowledge sanity: both square roots prove the same statement
        let mut rng = StdRng::seed_from_u64(804);
        let (cs_a, public) = demo_circuit(49, 7);
        let (pk, vk) = setup(&cs_a, &mut rng);
        let sys = MultiGpuSystem::dgx_a100(1);
        let p1 = prove(&pk, &cs_a, &sys, &mut rng).expect("prove 7");
        assert!(verify(&vk, &public, &p1));
        // witness -7 = r - 7
        let minus7 = -Fr::from_u64(7);
        let mut cs_b = ConstraintSystem::<Bn254Fr, 4>::new();
        let x_var = cs_b.alloc(Fr::from_u64(49));
        cs_b.set_public(1);
        let w_var = cs_b.alloc(minus7);
        let w2 = cs_b.mul(w_var, w_var);
        cs_b.enforce(
            vec![(w2, Fr::ONE)],
            vec![(ConstraintSystem::<Bn254Fr, 4>::one(), Fr::ONE)],
            vec![(x_var, Fr::ONE)],
        );
        assert!(cs_b.is_satisfied());
        let p2 = prove(&pk, &cs_b, &sys, &mut rng).expect("prove -7");
        assert!(verify(&vk, &public, &p2));
        assert_ne!(p1, p2, "different randomness/witness ⇒ different proofs");
    }
}
