//! The end-to-end workloads of Table 4.
//!
//! The paper evaluates Zcash-Sprout (digital currency), Otti-SGD and
//! Zen_acc-LeNet (verifiable machine learning), reporting only their
//! R1CS constraint counts; the circuits themselves are proprietary /
//! external artefacts. Per the substitution rule we synthesise circuits
//! with the same constraint counts (what the MSM/NTT sizes — and hence
//! all timing — depend on) and keep a scaled-down variant for functional
//! validation.

use crate::prover::{ntt_time_single_gpu, ProverTiming};
use distmsm::analytic::{estimate_distmsm, CurveDesc};
use distmsm::engine::DistMsmConfig;
use distmsm_gpu_sim::MultiGpuSystem;

/// One Table 4 row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Workload {
    /// Application name as printed in Table 4.
    pub name: &'static str,
    /// R1CS constraint count ("Size" column).
    pub constraints: u64,
}

/// The three applications of Table 4.
pub const WORKLOADS: [Workload; 3] = [
    Workload {
        name: "Zcash-Sprout",
        constraints: 2_585_747,
    },
    Workload {
        name: "Otti-SGD",
        constraints: 6_968_254,
    },
    Workload {
        name: "Zen_acc-LeNet",
        constraints: 77_689_757,
    },
];

/// Average nonzero entries per constraint row in the synthetic circuits
/// (each constraint touches a handful of variables).
const NNZ_PER_CONSTRAINT: u64 = 6;

/// Effective integer throughput of the libsnark prover code (ops/s).
///
/// libsnark's measured 145.8 s for the 2.59M-constraint Zcash-Sprout
/// circuit implies ~1.9·10⁹ sustained int-ops/s — consistent with a
/// largely serial bignum implementation rather than the host's 1.5·10¹¹
/// peak. The *others* stage runs this same code in both columns of
/// Table 4 ("These operations remain on CPUs"), so the constant applies
/// to it on the GPU side too.
pub const LIBSNARK_OPS_PER_SEC: f64 = 1.9e9;

/// CPU time of the non-accelerated "others" stage at libsnark throughput.
fn others_time_libsnark(w: &Workload) -> f64 {
    let d = w.constraints.next_power_of_two();
    let ops = w.constraints as f64 * NNZ_PER_CONSTRAINT as f64 * 320.0 + d as f64 * 4.0 * 320.0;
    ops / LIBSNARK_OPS_PER_SEC
}

/// Analytic end-to-end proof-generation timing at full workload scale.
///
/// Four MSMs (3 × G1 of size ≈ constraints, 1 × G2 — G2 arithmetic over
/// Fp² costs ≈3× G1, modelled by tripling that MSM's time), seven NTTs of
/// the padded domain, CPU "others".
pub fn prover_timing(w: &Workload, system: &MultiGpuSystem) -> ProverTiming {
    let d = w.constraints.next_power_of_two();
    let msm_cfg = DistMsmConfig::default();
    let g1 = estimate_distmsm(w.constraints, &CurveDesc::BN254, system, &msm_cfg);
    let g2_factor = 3.0; // Fp2: 3 base-field muls per extension mul (Karatsuba)
    let msm_s = g1.total_s * (3.0 + g2_factor);
    let ntt_s = ntt_time_single_gpu(d, 7, system);
    let others_s = others_time_libsnark(w);
    ProverTiming {
        msm_s,
        ntt_s,
        others_s,
    }
}

/// CPU-only (libsnark-style) proof generation model: the same operation
/// counts executed at host throughput.
pub fn libsnark_timing(w: &Workload, _system: &MultiGpuSystem) -> ProverTiming {
    let d = w.constraints.next_power_of_two();
    // CPU Pippenger with the single-CPU-optimal window (~16): each MSM of
    // size n costs ≈ n · λ/s point operations of ~10 modmuls each; one
    // modmul over 4 × u64 limbs is ~80 int ops.
    let lambda = 254.0;
    let s = 16.0;
    let point_ops_per_msm = w.constraints as f64 * (lambda / s + 2.0);
    let int_ops_per_point_op = 10.0 * 80.0;
    let msm_ops = point_ops_per_msm * int_ops_per_point_op * (3.0 + 3.0); // 3 G1 + 1 G2(≈3×)
    let msm_s = msm_ops / LIBSNARK_OPS_PER_SEC;

    let log_d = (63 - d.leading_zeros() as u64).max(1);
    let ntt_ops = (d / 2) as f64 * log_d as f64 * 7.0 * (80.0 + 16.0) * 1.5;
    let ntt_s = ntt_ops / LIBSNARK_OPS_PER_SEC;

    let others_s = others_time_libsnark(w);
    ProverTiming {
        msm_s,
        ntt_s,
        others_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sizes_match_table4() {
        assert_eq!(WORKLOADS[0].constraints, 2_585_747);
        assert_eq!(WORKLOADS[1].constraints, 6_968_254);
        assert_eq!(WORKLOADS[2].constraints, 77_689_757);
    }

    #[test]
    fn cpu_stage_split_matches_paper() {
        // §5.1.1: on CPUs "MSM, NTT, and others … account for 78.2%,
        // 17.9%, and 3.9%" of proof generation.
        let sys = MultiGpuSystem::dgx_a100(8);
        let t = libsnark_timing(&WORKLOADS[0], &sys);
        let (msm, ntt, others) = t.fractions();
        assert!((0.60..0.90).contains(&msm), "msm fraction {msm}");
        assert!((0.08..0.35).contains(&ntt), "ntt fraction {ntt}");
        assert!(others < 0.15, "others fraction {others}");
    }

    #[test]
    fn gpu_prover_is_much_faster_than_cpu() {
        // Table 4: ~25× end-to-end speedup with 8 GPUs
        let sys = MultiGpuSystem::dgx_a100(8);
        for w in &WORKLOADS[..2] {
            let cpu = libsnark_timing(w, &sys).total();
            let gpu = prover_timing(w, &sys).total();
            let speedup = cpu / gpu;
            assert!(
                (5.0..200.0).contains(&speedup),
                "{}: speedup {speedup}",
                w.name
            );
        }
    }

    #[test]
    fn timing_scales_with_constraints() {
        let sys = MultiGpuSystem::dgx_a100(8);
        let small = prover_timing(&WORKLOADS[0], &sys).total();
        let large = prover_timing(&WORKLOADS[2], &sys).total();
        assert!(large > 10.0 * small);
    }
}
