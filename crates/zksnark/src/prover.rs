//! A Groth16-shaped prover over simulated multi-GPU MSM.
//!
//! Reproduces the *structure* of end-to-end proof generation (Table 4):
//! witness evaluation → QAP quotient via NTT → one G2 MSM and three G1
//! MSMs → constant-size proof. Query bases are generator multiples rather
//! than a real trusted setup (the paper's experiments never inspect base
//! values, only MSM sizes), and verification is the QAP polynomial
//! identity instead of a pairing check (O(1) and outside every reproduced
//! experiment — DESIGN.md §1).

use crate::qap::{check_qap_identity, qap_witness, QapWitness};
use crate::r1cs::ConstraintSystem;
use distmsm::engine::{DistMsm, DistMsmConfig, MsmError, MsmReport};
use distmsm_ec::curves::{Bn254G1, Bn254G2};
use distmsm_ec::sample::generator_multiples;
use distmsm_ec::{Curve, MsmInstance, XyzzPoint};
use distmsm_ff::params::Bn254Fr;
use distmsm_ff::Fp;
use distmsm_gpu_sim::MultiGpuSystem;

type Fr = Fp<Bn254Fr, 4>;

/// A Groth16-format proof: two G1 elements and one G2 element
/// (127 bytes compressed — the paper's constant proof size).
#[derive(Clone, Debug, PartialEq)]
pub struct Proof {
    /// The `A` commitment.
    pub a: XyzzPoint<Bn254G1>,
    /// The `B` commitment (G2).
    pub b: XyzzPoint<Bn254G2>,
    /// The `C` commitment.
    pub c: XyzzPoint<Bn254G1>,
}

/// Timing breakdown of one proof generation, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProverTiming {
    /// Multi-GPU MSM time (all four MSMs).
    pub msm_s: f64,
    /// Single-GPU NTT time (the paper pairs DistMSM with sppark's
    /// single-GPU NTT).
    pub ntt_s: f64,
    /// CPU time for everything else (witness/matrix evaluation,
    /// element-wise products).
    pub others_s: f64,
}

impl ProverTiming {
    /// Total proof-generation time.
    pub fn total(&self) -> f64 {
        self.msm_s + self.ntt_s + self.others_s
    }

    /// Fraction of time in each stage `(msm, ntt, others)`.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        (self.msm_s / t, self.ntt_s / t, self.others_s / t)
    }
}

/// Result of proving: the proof, its timing and the QAP artefacts.
#[derive(Clone, Debug)]
pub struct ProveOutcome {
    /// The constant-size proof.
    pub proof: Proof,
    /// Simulated timing.
    pub timing: ProverTiming,
    /// The QAP witness (kept for verification).
    pub qap: QapWitness<Bn254Fr, 4>,
    /// Service-level MSM retries the prover spent: each time an MSM
    /// failed with a fault-class error, the prover re-ran it as the next
    /// attempt (fault plans are attempt-scoped, so a transient fault
    /// clears on re-run).
    pub msm_retries: u32,
}

/// The Groth16-shaped prover bound to a multi-GPU system.
#[derive(Clone, Debug)]
pub struct Groth16Prover {
    msm: DistMsm,
    system: MultiGpuSystem,
    retry_budget: u32,
}

impl Groth16Prover {
    /// Builds a prover whose MSMs run on `system` with DistMSM defaults.
    pub fn new(system: MultiGpuSystem) -> Self {
        Self::with_config(system, DistMsmConfig::default())
    }

    /// Builds a prover with an explicit engine configuration — the way a
    /// fault plan (and its retry policy) reaches proof generation.
    pub fn with_config(system: MultiGpuSystem, config: DistMsmConfig) -> Self {
        let retry_budget = config.retry.max_retries;
        Self {
            msm: DistMsm::with_config(system.clone(), config),
            system,
            retry_budget,
        }
    }

    /// Runs one MSM with service-level retries: a fault-class failure
    /// (lost device, partitioned fabric, exhausted in-run budget) re-runs
    /// the MSM as the next attempt, up to the engine's retry budget.
    /// Non-fault errors propagate immediately.
    fn msm_with_retry<C: Curve>(
        &self,
        inst: &MsmInstance<C>,
        retries: &mut u32,
    ) -> Result<MsmReport<C>, MsmError> {
        let mut attempt = 0u32;
        loop {
            match self.msm.execute_attempt(inst, attempt) {
                Err(e) if e.is_fault() && attempt < self.retry_budget => {
                    attempt += 1;
                    *retries += 1;
                }
                other => return other,
            }
        }
    }

    /// Generates a proof for a satisfied constraint system, running every
    /// MSM through the simulated multi-GPU engine.
    ///
    /// # Errors
    ///
    /// Propagates MSM failures.
    ///
    /// # Panics
    ///
    /// Panics if the constraint system is unsatisfied.
    pub fn prove(&self, cs: &ConstraintSystem<Bn254Fr, 4>) -> Result<ProveOutcome, MsmError> {
        assert!(cs.is_satisfied(), "cannot prove an unsatisfied system");
        let m = cs.n_variables();

        // ---- stage 1: QAP quotient (NTT stage) --------------------------
        let qap = qap_witness(cs);
        let d = qap.domain.size();

        // ---- stage 2: MSMs ------------------------------------------------
        // Bases: generator multiples stand in for CRS elements.
        let g1_bases = generator_multiples::<Bn254G1>(m.max(d));
        let g2_bases = generator_multiples::<Bn254G2>(m);
        let z: Vec<<Bn254G1 as Curve>::Scalar> =
            cs.assignment().iter().map(Fp::to_uint).collect();
        let h_scalars: Vec<<Bn254G1 as Curve>::Scalar> =
            qap.h.iter().map(Fp::to_uint).collect();

        let mut msm_retries = 0u32;
        let a_msm = {
            #[cfg(feature = "telemetry")]
            let t0 = distmsm_telemetry::session::clock_s();
            let rep = self.msm_with_retry(
                &MsmInstance::<Bn254G1> {
                    points: g1_bases[..m].to_vec(),
                    scalars: z.clone(),
                },
                &mut msm_retries,
            )?;
            #[cfg(feature = "telemetry")]
            telem::msm_span("msm:a(G1)", t0);
            rep
        };
        let b_msm = {
            #[cfg(feature = "telemetry")]
            let t0 = distmsm_telemetry::session::clock_s();
            let rep = self.msm_with_retry(
                &MsmInstance::<Bn254G2> {
                    points: g2_bases,
                    scalars: z.clone(),
                },
                &mut msm_retries,
            )?;
            #[cfg(feature = "telemetry")]
            telem::msm_span("msm:b(G2)", t0);
            rep
        };
        let c_base = {
            #[cfg(feature = "telemetry")]
            let t0 = distmsm_telemetry::session::clock_s();
            let rep = self.msm_with_retry(
                &MsmInstance::<Bn254G1> {
                    points: g1_bases[..m].to_vec(),
                    scalars: z,
                },
                &mut msm_retries,
            )?;
            #[cfg(feature = "telemetry")]
            telem::msm_span("msm:c(G1)", t0);
            rep
        };
        let h_msm = {
            #[cfg(feature = "telemetry")]
            let t0 = distmsm_telemetry::session::clock_s();
            let rep = self.msm_with_retry(
                &MsmInstance::<Bn254G1> {
                    points: g1_bases[..d].to_vec(),
                    scalars: h_scalars,
                },
                &mut msm_retries,
            )?;
            #[cfg(feature = "telemetry")]
            telem::msm_span("msm:h(G1)", t0);
            rep
        };

        let proof = Proof {
            a: a_msm.result,
            b: b_msm.result,
            c: c_base.result.padd(&h_msm.result),
        };

        // ---- timing --------------------------------------------------------
        let msm_s = a_msm.total_s + b_msm.total_s + c_base.total_s + h_msm.total_s;
        let ntt_s = ntt_time_single_gpu(d as u64, qap.ntt_count, &self.system);
        let nnz: u64 = cs
            .constraints()
            .iter()
            .map(|c| (c.a.len() + c.b.len() + c.c.len()) as u64)
            .sum();
        let others_s = others_time_cpu(nnz, d as u64, &self.system);
        #[cfg(feature = "telemetry")]
        {
            telem::serial_stage("ntt(single-gpu)", "ntt", ntt_s);
            telem::serial_stage("witness+others(cpu)", "others", others_s);
        }

        Ok(ProveOutcome {
            proof,
            timing: ProverTiming {
                msm_s,
                ntt_s,
                others_s,
            },
            qap,
            msm_retries,
        })
    }

    /// Verifies a proof outcome structurally: the QAP identity holds at a
    /// pseudo-random point and the proof parts are finite group elements.
    pub fn verify(&self, outcome: &ProveOutcome) -> bool {
        let tau = Fr::from_u64(0x5eed_cafe_f00d_u64);
        check_qap_identity(&outcome.qap, tau)
            && !outcome.proof.a.is_identity()
            && !outcome.proof.b.is_identity()
    }
}

/// Single-GPU NTT time model: `count` transforms of size `d`, one modular
/// multiply plus two adds per butterfly, on the first device's CUDA cores
/// (the paper: "the NTT is a single-GPU implementation").
pub fn ntt_time_single_gpu(d: u64, count: u32, system: &MultiGpuSystem) -> f64 {
    let dev = &system.devices[0];
    let log_d = 64 - d.leading_zeros() as u64 - 1;
    let butterflies = (d / 2) * log_d * u64::from(count);
    // BN254 Fr: 8 u32 limbs ⇒ ~4·8² + 8·8 int ops per modmul, ~3·8 per add
    let ops_per_butterfly = 4.0 * 64.0 + 64.0 + 2.0 * 24.0;
    let eff = dev.efficiency_at(dev.occupancy(48, 0, 256));
    butterflies as f64 * ops_per_butterfly / (dev.cuda_int32_tops * 1e12 * eff)
}

/// Multi-GPU NTT projection — the paper's stated future work ("this
/// analysis still underestimates the potential speedup, as … NTT and
/// others could also benefit from multi-GPU acceleration"). Models the
/// four-step NTT: per-GPU sub-transforms scale linearly; one all-to-all
/// transpose of the full data crosses the interconnect.
pub fn ntt_time_multi_gpu(d: u64, count: u32, system: &MultiGpuSystem) -> f64 {
    let g = system.n_gpus() as f64;
    let compute = ntt_time_single_gpu(d, count, system) / g;
    // One all-to-all transpose per transform over the peer fabric. The
    // widest-spread pair prices the per-byte cost: on a multi-node pod
    // that pair crosses the NIC, so the transpose slows at node
    // boundaries instead of pretending to ride box-local NVLink.
    let bytes = d as f64 * 32.0 * (g - 1.0).max(1.0) / g;
    let transpose = if system.n_gpus() > 1 {
        f64::from(count) * system.peer_time(0, system.n_gpus() - 1, bytes)
    } else {
        f64::from(count) * system.peer_transfer_time(bytes)
    };
    compute + transpose
}

/// CPU time model for the "others" stage: matrix-vector evaluation over
/// the sparse constraint matrices plus element-wise polynomial work.
pub fn others_time_cpu(nnz: u64, d: u64, system: &MultiGpuSystem) -> f64 {
    // one field multiply (~80 64-bit int ops) per nonzero plus ~4 ops of
    // bookkeeping per domain element
    let ops = nnz as f64 * 80.0 + d as f64 * 4.0 * 80.0;
    system.cpu.compute_time(ops)
}

/// Prover-lane telemetry: structural `"msm"` wrapper spans around the
/// engine emissions (which advance the session clock themselves) and
/// serial NTT/"others" stage spans that advance the clock by their own
/// duration.
#[cfg(feature = "telemetry")]
mod telem {
    use distmsm_telemetry::{session, Lane, Span};

    /// Closes a structural MSM wrapper opened at `t0_s`: the engine's
    /// emission advanced the clock to the MSM's end.
    pub(crate) fn msm_span(name: &str, t0_s: f64) {
        if !session::active() {
            return;
        }
        session::push_span(Span {
            name: name.into(),
            cat: "msm".into(),
            lane: Lane::Prover,
            t0_s,
            t1_s: session::clock_s(),
            args: Vec::new(),
        });
    }

    /// Emits one serial prover stage at the clock cursor and advances
    /// the cursor past it.
    pub(crate) fn serial_stage(name: &str, cat: &str, dur_s: f64) {
        if !session::active() || dur_s <= 0.0 {
            return;
        }
        let t0 = session::clock_s();
        session::push_span(Span {
            name: name.into(),
            cat: cat.into(),
            lane: Lane::Prover,
            t0_s: t0,
            t1_s: t0 + dur_s,
            args: Vec::new(),
        });
        session::advance_s(dur_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r1cs::synthetic_circuit;
    use rand::{rngs::StdRng, SeedableRng};

    fn small_prove(n: usize, gpus: usize) -> (Groth16Prover, ProveOutcome) {
        let mut rng = StdRng::seed_from_u64(40);
        let cs = synthetic_circuit::<Bn254Fr, 4, _>(n, &mut rng);
        let prover = Groth16Prover::new(MultiGpuSystem::dgx_a100(gpus));
        let outcome = prover.prove(&cs).expect("prove");
        (prover, outcome)
    }

    #[test]
    fn prove_and_verify() {
        let (prover, outcome) = small_prove(64, 2);
        assert!(prover.verify(&outcome));
        assert!(outcome.timing.total() > 0.0);
    }

    #[test]
    fn tampered_proof_outcome_rejected() {
        let (prover, mut outcome) = small_prove(32, 1);
        outcome.qap.h[0] += Fr::ONE;
        assert!(!prover.verify(&outcome));
    }

    #[test]
    fn msm_dominates_at_scale_in_models() {
        // Table 4 analysis: MSM 78.2%, NTT 17.9%, others 3.9% on CPUs; on
        // the simulated pipeline MSM must at least dominate NTT+others for
        // realistic sizes. Checked through the pure timing models to avoid
        // functional execution at scale.
        let sys = MultiGpuSystem::dgx_a100(1);
        let d = 1u64 << 22;
        let ntt = ntt_time_single_gpu(d, 7, &sys);
        let others = others_time_cpu(6 * d, d, &sys);
        assert!(ntt > 0.0 && others > 0.0);
        // MSM time at that size (analytic) dwarfs both
        let msm = distmsm::analytic::estimate_distmsm(
            d,
            &distmsm::CurveDesc::BN254,
            &sys,
            &distmsm::DistMsmConfig::default(),
        );
        assert!(msm.total_s > ntt, "msm {} vs ntt {ntt}", msm.total_s);
    }

    #[test]
    fn prover_retries_through_transient_device_loss() {
        // a sole GPU fail-stops on attempt 0: unrecoverable in-run, but
        // the service-level retry re-runs as attempt 1 where the
        // (attempt-scoped) fault has cleared
        let mut rng = StdRng::seed_from_u64(41);
        let cs = synthetic_circuit::<Bn254Fr, 4, _>(48, &mut rng);
        let prover = Groth16Prover::with_config(
            MultiGpuSystem::dgx_a100(1),
            DistMsmConfig::builder()
                .fault_plan(distmsm_gpu_sim::FaultPlan::fail_stop(0, 0))
                .build()
                .unwrap(),
        );
        let outcome = prover.prove(&cs).expect("retry clears the fault");
        assert!(prover.verify(&outcome));
        assert!(outcome.msm_retries >= 1, "retries {}", outcome.msm_retries);

        // the reference prover on the same circuit agrees bit-for-bit
        let clean = Groth16Prover::new(MultiGpuSystem::dgx_a100(1));
        let reference = clean.prove(&cs).expect("clean prove");
        assert_eq!(outcome.proof, reference.proof);
        assert_eq!(reference.msm_retries, 0);
    }

    #[test]
    fn prover_without_budget_surfaces_fault() {
        let mut rng = StdRng::seed_from_u64(42);
        let cs = synthetic_circuit::<Bn254Fr, 4, _>(32, &mut rng);
        let prover = Groth16Prover::with_config(
            MultiGpuSystem::dgx_a100(1),
            DistMsmConfig::builder()
                .fault_plan(distmsm_gpu_sim::FaultPlan::fail_stop(0, 0))
                .retry(distmsm::RetryPolicy::default().with_max_retries(0))
                .build()
                .unwrap(),
        );
        let err = prover.prove(&cs).expect_err("no budget, fault surfaces");
        assert!(err.is_fault(), "expected a fault-class error, got {err:?}");
    }

    #[test]
    fn proof_is_constant_size() {
        let (_, o1) = small_prove(16, 1);
        let (_, o2) = small_prove(128, 1);
        // structurally: both proofs are exactly (G1, G2, G1)
        let _ = (o1.proof.a, o2.proof.a);
        assert!(!o1.proof.c.is_identity() || !o2.proof.c.is_identity());
    }
}
