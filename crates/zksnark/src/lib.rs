//! # distmsm-zksnark — end-to-end proof-generation substrate
//!
//! Everything the DistMSM paper's Table 4 experiment needs beyond MSM
//! itself, built from scratch:
//!
//! * [`ntt`] — radix-2 number-theoretic transforms (plain and coset) over
//!   any two-adic field in `distmsm-ff`;
//! * [`r1cs`] — rank-1 constraint systems with a builder and synthetic
//!   workload circuits;
//! * [`qap`] — R1CS → QAP quotient computation (the NTT-heavy prover
//!   stage) with a polynomial-identity soundness check;
//! * [`prover`] — a Groth16-shaped prover whose four MSMs run on the
//!   simulated multi-GPU engine of the `distmsm` crate;
//! * [`workloads`] — the Table 4 applications (Zcash-Sprout, Otti-SGD,
//!   Zen_acc-LeNet) at their published constraint counts;
//! * [`groth16`] — the complete Groth16 protocol (setup / prove /
//!   **pairing-verified**) closed over the optimal ate pairing in
//!   `distmsm-ec`.
//!
//! ## Example
//!
//! ```
//! use distmsm_zksnark::prover::Groth16Prover;
//! use distmsm_zksnark::r1cs::synthetic_circuit;
//! use distmsm_ff::params::Bn254Fr;
//! use distmsm_gpu_sim::MultiGpuSystem;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let circuit = synthetic_circuit::<Bn254Fr, 4, _>(64, &mut rng);
//! let prover = Groth16Prover::new(MultiGpuSystem::dgx_a100(2));
//! let outcome = prover.prove(&circuit)?;
//! assert!(prover.verify(&outcome));
//! # Ok::<(), distmsm::engine::MsmError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod groth16;
pub mod ntt;
pub mod poly;
pub mod prover;
pub mod qap;
pub mod r1cs;
pub mod workloads;

pub use ntt::NttDomain;
pub use prover::{Groth16Prover, Proof, ProveOutcome, ProverTiming};
pub use r1cs::ConstraintSystem;
