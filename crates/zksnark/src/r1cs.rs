//! Rank-1 Constraint Systems.
//!
//! The paper generates its end-to-end workloads "with the R1CS protocol"
//! (Table 4). A constraint is `⟨A_i, z⟩ · ⟨B_i, z⟩ = ⟨C_i, z⟩` over the
//! assignment vector `z = (1, public…, private…)`.

use distmsm_ff::{Fp, FpParams};
use rand::Rng;

/// Index of a variable in the assignment vector (`0` is the constant 1).
pub type Var = usize;

/// A sparse linear combination `Σ coeff·z[var]`.
pub type LinearCombination<P, const N: usize> = Vec<(Var, Fp<P, N>)>;

/// One rank-1 constraint `⟨A,z⟩·⟨B,z⟩ = ⟨C,z⟩`.
#[derive(Clone, Debug)]
pub struct Constraint<P: FpParams<N>, const N: usize> {
    /// The `A` linear combination.
    pub a: LinearCombination<P, N>,
    /// The `B` linear combination.
    pub b: LinearCombination<P, N>,
    /// The `C` linear combination.
    pub c: LinearCombination<P, N>,
}

/// A rank-1 constraint system plus a satisfying assignment builder.
#[derive(Clone, Debug)]
pub struct ConstraintSystem<P: FpParams<N>, const N: usize> {
    constraints: Vec<Constraint<P, N>>,
    assignment: Vec<Fp<P, N>>,
    n_public: usize,
}

impl<P: FpParams<N>, const N: usize> Default for ConstraintSystem<P, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: FpParams<N>, const N: usize> ConstraintSystem<P, N> {
    /// An empty system (assignment starts with the constant 1).
    pub fn new() -> Self {
        Self {
            constraints: Vec::new(),
            assignment: vec![Fp::ONE],
            n_public: 0,
        }
    }

    /// Allocates a new witness variable with a concrete value.
    pub fn alloc(&mut self, value: Fp<P, N>) -> Var {
        self.assignment.push(value);
        self.assignment.len() - 1
    }

    /// Marks the first `n` allocated variables as public inputs.
    pub fn set_public(&mut self, n: usize) {
        self.n_public = n;
    }

    /// Number of public inputs.
    pub fn n_public(&self) -> usize {
        self.n_public
    }

    /// The constant-one variable.
    pub fn one() -> Var {
        0
    }

    /// Adds the constraint `⟨a,z⟩·⟨b,z⟩ = ⟨c,z⟩`.
    pub fn enforce(
        &mut self,
        a: LinearCombination<P, N>,
        b: LinearCombination<P, N>,
        c: LinearCombination<P, N>,
    ) {
        self.constraints.push(Constraint { a, b, c });
    }

    /// Convenience: allocates `l·r` and enforces the product constraint.
    pub fn mul(&mut self, l: Var, r: Var) -> Var {
        let v = self.assignment[l] * self.assignment[r];
        let out = self.alloc(v);
        self.enforce(
            vec![(l, Fp::ONE)],
            vec![(r, Fp::ONE)],
            vec![(out, Fp::ONE)],
        );
        out
    }

    /// Convenience: allocates `l + r` and enforces it linearly
    /// (`(l + r)·1 = out`).
    pub fn add(&mut self, l: Var, r: Var) -> Var {
        let v = self.assignment[l] + self.assignment[r];
        let out = self.alloc(v);
        self.enforce(
            vec![(l, Fp::ONE), (r, Fp::ONE)],
            vec![(Self::one(), Fp::ONE)],
            vec![(out, Fp::ONE)],
        );
        out
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of variables (including the constant).
    pub fn n_variables(&self) -> usize {
        self.assignment.len()
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint<P, N>] {
        &self.constraints
    }

    /// The full assignment vector `z`.
    pub fn assignment(&self) -> &[Fp<P, N>] {
        &self.assignment
    }

    /// Evaluates a linear combination against the assignment.
    pub fn eval_lc(&self, lc: &LinearCombination<P, N>) -> Fp<P, N> {
        lc.iter()
            .map(|&(v, coeff)| self.assignment[v] * coeff)
            .fold(Fp::ZERO, |a, b| a + b)
    }

    /// Checks that every constraint is satisfied by the assignment.
    pub fn is_satisfied(&self) -> bool {
        self.constraints
            .iter()
            .all(|c| self.eval_lc(&c.a) * self.eval_lc(&c.b) == self.eval_lc(&c.c))
    }
}

/// Builds a synthetic R1CS instance with `n_constraints` multiplicative
/// constraints forming a long chain — the shape (one product per
/// constraint, sequential dependencies) that dominates the paper's
/// workloads (hash chains in Zcash-Sprout, inner products in the
/// verifiable-ML circuits).
pub fn synthetic_circuit<P: FpParams<N>, const N: usize, R: Rng + ?Sized>(
    n_constraints: usize,
    rng: &mut R,
) -> ConstraintSystem<P, N> {
    let mut cs = ConstraintSystem::new();
    let seed = cs.alloc(Fp::random(rng));
    cs.set_public(1);
    let mut cur = seed;
    let mut aux = cs.alloc(Fp::random(rng));
    for i in 0..n_constraints.saturating_sub(1) {
        if i % 3 == 2 {
            // inject an addition gate to vary the matrix structure
            cur = cs.add(cur, aux);
        } else {
            cur = cs.mul(cur, aux);
            aux = cur;
        }
    }
    if n_constraints > 0 && cs.n_constraints() < n_constraints {
        let _ = cs.mul(cur, aux);
    }
    cs
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ff::params::Bn254Fr;
    use rand::{rngs::StdRng, SeedableRng};

    type Cs = ConstraintSystem<Bn254Fr, 4>;

    #[test]
    fn product_constraint() {
        let mut cs = Cs::new();
        let a = cs.alloc(3u64.into());
        let b = cs.alloc(5u64.into());
        let c = cs.mul(a, b);
        assert_eq!(cs.assignment()[c], 15u64.into());
        assert!(cs.is_satisfied());
    }

    #[test]
    fn violated_constraint_detected() {
        let mut cs = Cs::new();
        let a = cs.alloc(3u64.into());
        let b = cs.alloc(5u64.into());
        let bogus = cs.alloc(16u64.into());
        cs.enforce(
            vec![(a, distmsm_ff::Fp::ONE)],
            vec![(b, distmsm_ff::Fp::ONE)],
            vec![(bogus, distmsm_ff::Fp::ONE)],
        );
        assert!(!cs.is_satisfied());
    }

    #[test]
    fn addition_gates() {
        let mut cs = Cs::new();
        let a = cs.alloc(7u64.into());
        let b = cs.alloc(8u64.into());
        let c = cs.add(a, b);
        assert_eq!(cs.assignment()[c], 15u64.into());
        assert!(cs.is_satisfied());
    }

    #[test]
    fn synthetic_is_satisfied_and_sized() {
        let mut rng = StdRng::seed_from_u64(20);
        for n in [1usize, 10, 333, 1000] {
            let cs = synthetic_circuit::<Bn254Fr, 4, _>(n, &mut rng);
            assert!(cs.is_satisfied(), "n={n}");
            assert_eq!(cs.n_constraints(), n, "n={n}");
        }
    }

    #[test]
    fn constant_one_is_variable_zero() {
        let cs = Cs::new();
        assert_eq!(cs.assignment()[Cs::one()], distmsm_ff::Fp::ONE);
        assert_eq!(cs.n_variables(), 1);
    }
}
