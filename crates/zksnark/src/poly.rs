//! Dense polynomial arithmetic over a two-adic prime field.
//!
//! The algebra under the QAP machinery, exposed as a proper type for
//! library users: NTT-backed multiplication, evaluation, interpolation
//! from domain values, and division by the vanishing polynomial.

use crate::ntt::{poly_mul, NttDomain};
use distmsm_ff::{Fp, FpParams};

/// A dense polynomial `Σ coeffs[i]·x^i` (trailing zeros trimmed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Polynomial<P: FpParams<N>, const N: usize> {
    coeffs: Vec<Fp<P, N>>,
}

impl<P: FpParams<N>, const N: usize> Polynomial<P, N> {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// Builds a polynomial from coefficients (low degree first), trimming
    /// trailing zeros.
    pub fn from_coeffs(mut coeffs: Vec<Fp<P, N>>) -> Self {
        while coeffs.last().is_some_and(Fp::is_zero) {
            coeffs.pop();
        }
        Self { coeffs }
    }

    /// Interpolates the polynomial taking `values[j]` at the `j`-th domain
    /// point (one inverse NTT).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` is not the domain size.
    pub fn interpolate(domain: &NttDomain<P, N>, values: &[Fp<P, N>]) -> Self {
        let mut coeffs = values.to_vec();
        domain.inverse(&mut coeffs);
        Self::from_coeffs(coeffs)
    }

    /// Coefficients, low degree first.
    pub fn coeffs(&self) -> &[Fp<P, N>] {
        &self.coeffs
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Horner evaluation at `x`.
    pub fn evaluate(&self, x: Fp<P, N>) -> Fp<P, N> {
        self.coeffs
            .iter()
            .rev()
            .fold(Fp::ZERO, |acc, &c| acc * x + c)
    }

    /// Polynomial sum.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![Fp::ZERO; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            out[i] += c;
        }
        for (i, &c) in other.coeffs.iter().enumerate() {
            out[i] += c;
        }
        Self::from_coeffs(out)
    }

    /// Polynomial product via NTT.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        Self::from_coeffs(poly_mul(&self.coeffs, &other.coeffs))
    }

    /// Scales every coefficient.
    pub fn scale(&self, k: Fp<P, N>) -> Self {
        Self::from_coeffs(self.coeffs.iter().map(|&c| c * k).collect())
    }

    /// Divides by the vanishing polynomial `Z(x) = x^d − 1`, returning
    /// `(quotient, remainder)` by synthetic division.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn divide_by_vanishing(&self, d: usize) -> (Self, Self) {
        assert!(d > 0, "vanishing degree must be positive");
        if self.coeffs.len() <= d {
            return (Self::zero(), self.clone());
        }
        // x^d ≡ 1 (mod Z): fold coefficient i into i − d repeatedly
        let mut rem = self.coeffs.clone();
        let mut quot = vec![Fp::ZERO; self.coeffs.len() - d];
        for i in (d..rem.len()).rev() {
            let c = rem[i];
            quot[i - d] += c;
            rem[i - d] += c;
            rem[i] = Fp::ZERO;
        }
        rem.truncate(d);
        (Self::from_coeffs(quot), Self::from_coeffs(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ff::params::{Bn254Fr, FrBn254};
    use rand::{rngs::StdRng, SeedableRng};

    type Poly = Polynomial<Bn254Fr, 4>;

    fn rand_poly(deg: usize, rng: &mut StdRng) -> Poly {
        let mut c: Vec<FrBn254> = (0..=deg).map(|_| FrBn254::random(rng)).collect();
        if c.last().unwrap().is_zero() {
            *c.last_mut().unwrap() = FrBn254::ONE;
        }
        Poly::from_coeffs(c)
    }

    #[test]
    fn evaluate_and_degree() {
        // 3 + 2x + x²
        let p = Poly::from_coeffs(vec![3u64.into(), 2u64.into(), 1u64.into()]);
        assert_eq!(p.degree(), Some(2));
        assert_eq!(p.evaluate(FrBn254::from_u64(5)), FrBn254::from_u64(38));
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Poly::from_coeffs(vec![1u64.into(), FrBn254::ZERO, FrBn254::ZERO]);
        assert_eq!(p.degree(), Some(0));
        assert!(Poly::from_coeffs(vec![FrBn254::ZERO; 4]).is_zero());
    }

    #[test]
    fn mul_is_evaluation_homomorphic() {
        let mut rng = StdRng::seed_from_u64(60);
        let a = rand_poly(9, &mut rng);
        let b = rand_poly(6, &mut rng);
        let ab = a.mul(&b);
        assert_eq!(ab.degree(), Some(15));
        let x = FrBn254::random(&mut rng);
        assert_eq!(ab.evaluate(x), a.evaluate(x) * b.evaluate(x));
    }

    #[test]
    fn interpolation_round_trip() {
        let mut rng = StdRng::seed_from_u64(61);
        let domain = NttDomain::<Bn254Fr, 4>::new(4).unwrap();
        let values: Vec<FrBn254> = (0..16).map(|_| FrBn254::random(&mut rng)).collect();
        let p = Poly::interpolate(&domain, &values);
        let omega = domain.generator();
        for (j, &v) in values.iter().enumerate() {
            assert_eq!(p.evaluate(omega.pow(&[j as u64])), v);
        }
    }

    #[test]
    fn vanishing_division_exact_and_with_remainder() {
        let mut rng = StdRng::seed_from_u64(62);
        let q = rand_poly(10, &mut rng);
        let d = 8usize;
        // multiple of Z: (x^8 − 1)·q
        let mut z = vec![FrBn254::ZERO; d + 1];
        z[0] = -FrBn254::ONE;
        z[d] = FrBn254::ONE;
        let zq = Poly::from_coeffs(z).mul(&q);
        let (quot, rem) = zq.divide_by_vanishing(d);
        assert_eq!(quot, q);
        assert!(rem.is_zero());

        // non-multiple: remainder reconstructs the original
        let p = rand_poly(13, &mut rng);
        let (quot, rem) = p.divide_by_vanishing(d);
        let mut z = vec![FrBn254::ZERO; d + 1];
        z[0] = -FrBn254::ONE;
        z[d] = FrBn254::ONE;
        let back = Poly::from_coeffs(z).mul(&quot).add(&rem);
        assert_eq!(back, p);
        assert!(rem.degree().is_none_or(|r| r < d));
    }

    #[test]
    fn add_and_scale() {
        let a = Poly::from_coeffs(vec![1u64.into(), 2u64.into()]);
        let b = Poly::from_coeffs(vec![5u64.into()]);
        assert_eq!(
            a.add(&b),
            Poly::from_coeffs(vec![6u64.into(), 2u64.into()])
        );
        assert_eq!(
            a.scale(3u64.into()),
            Poly::from_coeffs(vec![3u64.into(), 6u64.into()])
        );
    }
}
