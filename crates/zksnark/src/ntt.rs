//! Number-theoretic transform over a two-adic prime field.
//!
//! The second-heaviest stage of proof generation (17.9 % per the paper's
//! Table 4 analysis). Radix-2 in-place Cooley–Tukey with bit-reversal,
//! plus the coset evaluation needed by the QAP division.

use distmsm_ff::{Fp, FpParams};

/// Precomputed NTT domain of size `2^log_n`.
///
/// # Examples
///
/// ```
/// use distmsm_zksnark::ntt::NttDomain;
/// use distmsm_ff::params::{Bn254Fr, FrBn254};
///
/// let domain = NttDomain::<Bn254Fr, 4>::new(3).unwrap();
/// let mut data: Vec<FrBn254> = (0..8u64).map(FrBn254::from_u64).collect();
/// let original = data.clone();
/// domain.forward(&mut data);
/// domain.inverse(&mut data);
/// assert_eq!(data, original);
/// ```
#[derive(Clone, Debug)]
pub struct NttDomain<P: FpParams<N>, const N: usize> {
    log_n: u32,
    omega: Fp<P, N>,
    omega_inv: Fp<P, N>,
    n_inv: Fp<P, N>,
}

impl<P: FpParams<N>, const N: usize> NttDomain<P, N> {
    /// Builds a domain of size `2^log_n`, or `None` if the field's
    /// two-adicity is insufficient.
    pub fn new(log_n: u32) -> Option<Self> {
        let omega = Fp::<P, N>::root_of_unity(log_n)?;
        let omega_inv = omega.inverse().expect("roots of unity are invertible");
        let n_inv = Fp::<P, N>::from_u64(1u64 << log_n)
            .inverse()
            .expect("domain size below characteristic");
        Some(Self {
            log_n,
            omega,
            omega_inv,
            n_inv,
        })
    }

    /// Domain size.
    pub fn size(&self) -> usize {
        1 << self.log_n
    }

    /// log₂ of the domain size.
    pub fn log_size(&self) -> u32 {
        self.log_n
    }

    /// The primitive `2^log_n`-th root of unity generating the domain.
    pub fn generator(&self) -> Fp<P, N> {
        self.omega
    }

    fn transform(&self, data: &mut [Fp<P, N>], root: Fp<P, N>) {
        let n = data.len();
        assert_eq!(n, self.size(), "input length must equal the domain size");
        // bit reversal
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                data.swap(i, j);
            }
        }
        // butterflies
        let mut len = 2usize;
        while len <= n {
            let stride_root = root.pow(&[(n / len) as u64]);
            for start in (0..n).step_by(len) {
                let mut w = Fp::<P, N>::ONE;
                for k in 0..len / 2 {
                    let u = data[start + k];
                    let v = data[start + k + len / 2] * w;
                    data[start + k] = u + v;
                    data[start + k + len / 2] = u - v;
                    w *= stride_root;
                }
            }
            len <<= 1;
        }
    }

    /// In-place forward NTT (evaluates a coefficient vector on the domain).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the domain size.
    pub fn forward(&self, data: &mut [Fp<P, N>]) {
        self.transform(data, self.omega);
    }

    /// In-place inverse NTT (interpolates evaluations back to coefficients).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the domain size.
    pub fn inverse(&self, data: &mut [Fp<P, N>]) {
        self.transform(data, self.omega_inv);
        for x in data {
            *x *= self.n_inv;
        }
    }

    /// Forward NTT over the coset `g·H` (multiply coefficients by powers
    /// of `g` first). Used to evaluate where the vanishing polynomial is
    /// nonzero.
    pub fn coset_forward(&self, data: &mut [Fp<P, N>], g: Fp<P, N>) {
        let mut p = Fp::<P, N>::ONE;
        for x in data.iter_mut() {
            *x *= p;
            p *= g;
        }
        self.forward(data);
    }

    /// Inverse of [`Self::coset_forward`].
    pub fn coset_inverse(&self, data: &mut [Fp<P, N>], g: Fp<P, N>) {
        self.inverse(data);
        let g_inv = g.inverse().expect("coset generator nonzero");
        let mut p = Fp::<P, N>::ONE;
        for x in data.iter_mut() {
            *x *= p;
            p *= g_inv;
        }
    }

    /// Value of the vanishing polynomial `Z(x) = x^n - 1` at `g` — constant
    /// on a coset `g·H`.
    pub fn vanishing_on_coset(&self, g: Fp<P, N>) -> Fp<P, N> {
        g.pow(&[self.size() as u64]) - Fp::ONE
    }

    /// Butterfly count of one transform (the NTT cost model input):
    /// `n/2 · log n`.
    pub fn butterflies(&self) -> u64 {
        (self.size() as u64 / 2) * u64::from(self.log_n)
    }
}

/// Multiplies two coefficient vectors via NTT, returning a product of
/// length `a.len() + b.len() - 1` (zero-padded internally).
pub fn poly_mul<P: FpParams<N>, const N: usize>(
    a: &[Fp<P, N>],
    b: &[Fp<P, N>],
) -> Vec<Fp<P, N>> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let log_n = (out_len.next_power_of_two()).trailing_zeros();
    let domain = NttDomain::<P, N>::new(log_n).expect("field supports this NTT size");
    let n = domain.size();
    let mut fa = a.to_vec();
    fa.resize(n, Fp::ZERO);
    let mut fb = b.to_vec();
    fb.resize(n, Fp::ZERO);
    domain.forward(&mut fa);
    domain.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    domain.inverse(&mut fa);
    fa.truncate(out_len);
    fa
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmsm_ff::params::{Bn254Fr, FrBn254};
    use rand::{rngs::StdRng, SeedableRng};

    type D = NttDomain<Bn254Fr, 4>;

    #[test]
    fn round_trip() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = D::new(6).unwrap();
        let mut v: Vec<FrBn254> = (0..64).map(|_| FrBn254::random(&mut rng)).collect();
        let orig = v.clone();
        d.forward(&mut v);
        assert_ne!(v, orig);
        d.inverse(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn forward_is_evaluation() {
        // NTT of coefficients == evaluation at powers of omega
        let d = D::new(3).unwrap();
        let coeffs: Vec<FrBn254> = (1..=8u64).map(FrBn254::from_u64).collect();
        let mut v = coeffs.clone();
        d.forward(&mut v);
        let omega = d.generator();
        for (i, &got) in v.iter().enumerate() {
            let x = omega.pow(&[i as u64]);
            let mut expect = FrBn254::ZERO;
            for c in coeffs.iter().rev() {
                expect = expect * x + *c;
            }
            assert_eq!(got, expect, "evaluation {i}");
        }
    }

    #[test]
    fn poly_mul_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(12);
        let a: Vec<FrBn254> = (0..13).map(|_| FrBn254::random(&mut rng)).collect();
        let b: Vec<FrBn254> = (0..7).map(|_| FrBn254::random(&mut rng)).collect();
        let fast = poly_mul(&a, &b);
        let mut slow = vec![FrBn254::ZERO; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                slow[i + j] += x * y;
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn coset_round_trip() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = D::new(5).unwrap();
        let g = FrBn254::from_u64(5); // multiplicative generator of BN254 Fr
        let mut v: Vec<FrBn254> = (0..32).map(|_| FrBn254::random(&mut rng)).collect();
        let orig = v.clone();
        d.coset_forward(&mut v, g);
        d.coset_inverse(&mut v, g);
        assert_eq!(v, orig);
    }

    #[test]
    fn vanishing_polynomial_on_domain_and_coset() {
        let d = D::new(4).unwrap();
        // Z vanishes on the domain itself
        let omega = d.generator();
        let z_on_domain = omega.pow(&[16]) - FrBn254::ONE;
        assert!(z_on_domain.is_zero());
        // but not on a proper coset
        let g = FrBn254::from_u64(5);
        assert!(!d.vanishing_on_coset(g).is_zero());
    }

    #[test]
    fn too_large_domain_rejected() {
        assert!(D::new(29).is_none()); // BN254 Fr two-adicity is 28
        assert!(D::new(28).is_some());
    }

    #[test]
    fn butterflies_formula() {
        let d = D::new(10).unwrap();
        assert_eq!(d.butterflies(), 512 * 10);
    }

    #[test]
    fn linearity() {
        let mut rng = StdRng::seed_from_u64(14);
        let d = D::new(4).unwrap();
        let a: Vec<FrBn254> = (0..16).map(|_| FrBn254::random(&mut rng)).collect();
        let b: Vec<FrBn254> = (0..16).map(|_| FrBn254::random(&mut rng)).collect();
        let mut sum: Vec<FrBn254> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        d.forward(&mut sum);
        d.forward(&mut fa);
        d.forward(&mut fb);
        for i in 0..16 {
            assert_eq!(sum[i], fa[i] + fb[i]);
        }
    }
}
