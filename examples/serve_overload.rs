//! A proving service under pressure: two tenants share a three-GPU
//! pool, one GPU is flaky for the first stretch of the run, and the
//! arrival burst outruns capacity.
//!
//! Watch three mechanisms interact on the deterministic simulated
//! clock:
//!
//! * **Admission control** refuses work at the door once queues fill or
//!   the shed policy's pressure threshold trips, and the **shed policy**
//!   drops queued batch work rather than letting interactive jobs
//!   starve.
//! * The flaky GPU trips its **circuit breaker** (closed → open) after
//!   repeated faults, sits in quarantine on a backoff schedule, then
//!   earns re-admission through a half-open probe once its fault window
//!   has passed — no operator in the loop.
//! * Past the pressure threshold dispatch **degrades** to smaller
//!   partitions, trading per-job latency for pool survival.
//!
//! ```sh
//! cargo run --release --example serve_overload
//! ```

use distmsm_ec::curves::Bn254G1;
use distmsm_ec::MsmInstance;
use distmsm_gpu_sim::FaultKind;
use distmsm_service::{
    ChaosSchedule, DeviceFaultWindow, JobClass, JobSpec, ProverService, ServiceConfig,
    ServiceEventKind, TenantConfig,
};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // -- The pool: three GPUs, pairs per job normally, singles under
    //    pressure. Device 2 is flaky for the first 25 simulated seconds.
    let config = ServiceConfig {
        n_devices: 3,
        gpus_per_job: 2,
        degraded_gpus_per_job: 1,
        tenants: vec![
            TenantConfig::new("alice").with_weight(2.0).with_queue_capacity(6),
            TenantConfig::new("bob").with_queue_capacity(4),
        ],
        ..ServiceConfig::default()
    };
    let chaos = ChaosSchedule {
        device_windows: vec![DeviceFaultWindow {
            device: 2,
            t0_s: 0.0,
            t1_s: 12.0,
            kind: FaultKind::FailStop,
        }],
        link_windows: Vec::new(),
    };

    // -- The workload: an opening burst that outruns the pool (arrivals
    //    far tighter than a service time), then a trickle that lets it
    //    drain and the flaky GPU redeem itself.
    let mut jobs = Vec::new();
    for i in 0..40u64 {
        let burst = i < 30;
        let arrival_s = if burst { 0.0001 * i as f64 } else { 8.0 + 2.5 * (i - 30) as f64 };
        let (tenant, class, deadline_s) = if i % 3 == 0 {
            (0, JobClass::Interactive, Some(arrival_s + 1.5))
        } else {
            (1, JobClass::Batch, None)
        };
        let mut rng = StdRng::seed_from_u64(0xcafe + i);
        jobs.push(JobSpec {
            id: i,
            tenant,
            class,
            arrival_s,
            deadline_s,
            instance: MsmInstance::<Bn254G1>::random(48, &mut rng),
        });
    }

    println!("serve_overload: 40 jobs, 2 tenants, 3 GPUs, device 2 flaky until t=12s\n");
    let mut service = ProverService::new(config);
    let outcome = service.run(jobs, &chaos);

    // -- The narrative: admission verdicts, breaker cycle, degradation.
    println!("event log (admission refusals, sheds, breaker transitions):");
    let mut degraded_dispatches = 0u32;
    for ev in &outcome.events {
        match &ev.kind {
            ServiceEventKind::Rejected { error } => {
                println!("  t={:7.3}s  job {:>2}  REJECTED  {error}", ev.t_s, ev.job.unwrap_or(0));
            }
            ServiceEventKind::Shed { reason } => {
                println!(
                    "  t={:7.3}s  job {:>2}  SHED      {}",
                    ev.t_s,
                    ev.job.unwrap_or(0),
                    reason.label()
                );
            }
            ServiceEventKind::Breaker { transition } => {
                println!(
                    "  t={:7.3}s  device {}  BREAKER   {} -> {} ({})",
                    ev.t_s,
                    transition.device,
                    transition.from.label(),
                    transition.to.label(),
                    transition.cause
                );
            }
            ServiceEventKind::Dispatched { degraded: true, .. } => degraded_dispatches += 1,
            _ => {}
        }
    }
    println!("  ({degraded_dispatches} dispatches used the pressure-degraded partition size)\n");

    let report = &outcome.report;
    print!("{}", report.render());

    let readmitted = outcome.completed.iter().filter(|c| c.used_readmitted_device).count();
    println!(
        "\n{} completed job(s) ran on a re-admitted device after its quarantine — \
         same bit-exact results as a healthy pool.",
        readmitted
    );
    let cycles = report
        .pool_timeline
        .iter()
        .filter(|t| t.cause == "probe-success")
        .count();
    println!(
        "device 2 quarantine/re-admit cycles: {} (final state: {})",
        cycles,
        report.final_states[2].label()
    );
}
