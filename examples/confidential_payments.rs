//! Confidential-payment proving service (Zcash-Sprout-style).
//!
//! The scenario of the paper's introduction: a digital-currency node must
//! produce one zkSNARK per shielded transaction, and "the fastest
//! participant reaps the rewards". This example runs a batch of
//! Groth16-shaped proofs over the simulated multi-GPU engine, verifies
//! each, and projects full Zcash-Sprout proving times for 1–32 GPUs.
//!
//! ```sh
//! cargo run --release --example confidential_payments
//! ```

use distmsm_ff::params::Bn254Fr;
use distmsm_gpu_sim::MultiGpuSystem;
use distmsm_zksnark::prover::Groth16Prover;
use distmsm_zksnark::r1cs::synthetic_circuit;
use distmsm_zksnark::workloads::{libsnark_timing, prover_timing, WORKLOADS};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // ---- part 1: prove a batch of (scaled-down) transactions ----------
    let system = MultiGpuSystem::dgx_a100(8);
    let prover = Groth16Prover::new(system.clone());
    let mut rng = StdRng::seed_from_u64(7);

    println!("Proving a batch of 4 shielded transactions (2^9-constraint circuits):");
    let mut batch_sim_time = 0.0;
    for tx in 0..4 {
        let circuit = synthetic_circuit::<Bn254Fr, 4, _>(1 << 9, &mut rng);
        let outcome = prover.prove(&circuit).expect("prove transaction");
        assert!(prover.verify(&outcome), "proof must verify");
        batch_sim_time += outcome.timing.total();
        println!(
            "  tx {tx}: proof verified ✓  (sim {:.3} ms: msm {:.3} / ntt {:.3} / others {:.3})",
            outcome.timing.total() * 1e3,
            outcome.timing.msm_s * 1e3,
            outcome.timing.ntt_s * 1e3,
            outcome.timing.others_s * 1e3,
        );
    }
    println!("  batch total: {:.3} ms\n", batch_sim_time * 1e3);

    // ---- part 2: project the real Zcash-Sprout circuit ------------------
    let sprout = &WORKLOADS[0];
    println!(
        "Projected full {} ({} constraints) proving time:",
        sprout.name, sprout.constraints
    );
    let cpu = libsnark_timing(sprout, &system).total();
    println!("  libsnark (CPU)        : {cpu:>8.1} s   (paper: 145.8 s)");
    for gpus in [1usize, 8, 16, 32] {
        let sys = MultiGpuSystem::dgx_a100(gpus);
        let t = prover_timing(sprout, &sys);
        println!(
            "  DistMSM  ({gpus:>2} GPUs)    : {:>8.2} s   (msm {:.0}%, ntt {:.0}%, others {:.0}%)",
            t.total(),
            t.fractions().0 * 100.0,
            t.fractions().1 * 100.0,
            t.fractions().2 * 100.0,
        );
    }
    println!();
    println!("Amdahl in action: once MSM runs on 8+ GPUs, the un-accelerated");
    println!("'others' stage dominates — the paper reports the same ~25x ceiling.");
}
