//! Kernel laboratory: the §4 machinery, hands on.
//!
//! Walks through the paper's kernel-level contributions on real data:
//! the optimal PACC execution order (Figure 5), explicit spilling to
//! shared memory, and the tensor-core Montgomery multiplication with
//! on-the-fly compaction — validated bit-for-bit against the plain SOS
//! kernel.
//!
//! ```sh
//! cargo run --release --example kernel_lab
//! ```

use distmsm_ff::params::{Bn254Fq, Mnt4753Fq};
use distmsm_ff::u32limb::U32Field;
use distmsm_ff::{Fp, FpParams};
use distmsm_kernel::formulas::{pacc_graph, padd_graph};
use distmsm_kernel::graph::AllocPolicy;
use distmsm_kernel::spill::spill_schedule;
use distmsm_kernel::tensor::TcMontgomery;
use distmsm_kernel::{EcKernelModel, PaddOptimizations};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // ---- 1. register pressure & optimal ordering (§4.2.1) -------------
    let pacc = pacc_graph();
    let naive = pacc.pressure_of(&pacc.program_order(), AllocPolicy::Fresh);
    let (opt_peak, opt_order) = pacc.optimal_order(AllocPolicy::InPlace);
    println!("PACC (Algorithm 4): {} ops, {} multiplies", pacc.len(), pacc.mul_count());
    println!("  straightforward order : peak {} live big integers (paper: 9)", naive.peak_live);
    println!("  optimal order         : peak {} live big integers (paper: 7)", opt_peak);
    println!("\n  optimal schedule with live counts (cf. Figure 5):");
    let profile = pacc.pressure_of(&opt_order, AllocPolicy::InPlace);
    for (&i, &live) in opt_order.iter().zip(&profile.per_op_live) {
        println!("    [{live}] {}", pacc.ops()[i].label);
    }

    let padd = padd_graph();
    let (padd_peak, _) = padd.optimal_order(AllocPolicy::InPlace);
    println!(
        "\nPADD (Algorithm 1): straightforward {} → optimal {} (paper: 11 → 9; the\n  op-granular search beats the paper's 12-unit search by one)",
        padd.pressure_of(&padd.program_order(), AllocPolicy::Fresh).peak_live,
        padd_peak
    );

    // ---- 2. explicit spilling (§4.2.2) ----------------------------------
    let spilled = spill_schedule(&pacc, &opt_order, opt_peak - 2, AllocPolicy::InPlace)
        .expect("budget is feasible");
    println!(
        "\nExplicit spill to shared memory: {} registers → {} (transfers: {}, peak shared: {} big ints, spilled: {:?})",
        opt_peak,
        opt_peak - 2,
        spilled.transfers,
        spilled.shared_peak,
        spilled.spilled,
    );

    // ---- 3. per-curve register budgets -----------------------------------
    println!("\nRegisters per thread (bucket-sum kernel):");
    println!("  {:<10} {:>9} {:>9}", "curve", "NO-OPT", "DistMSM");
    for (name, limbs) in [("BN254", 8usize), ("BLS12-377", 12), ("BLS12-381", 12), ("MNT4753", 24)] {
        let base = EcKernelModel::new(limbs, PaddOptimizations::none());
        let full = EcKernelModel::new(limbs, PaddOptimizations::all());
        println!(
            "  {:<10} {:>9} {:>9}",
            name,
            base.regs_per_thread(),
            full.regs_per_thread()
        );
    }

    // ---- 4. tensor-core Montgomery multiplication (§4.3) ----------------
    let mut rng = StdRng::seed_from_u64(99);
    println!("\nTensor-core Montgomery multiply vs plain SOS:");
    check_tc::<Bn254Fq, 4>("BN254", &mut rng);
    check_tc::<Mnt4753Fq, 12>("MNT4753", &mut rng);
    println!("\nAll tensor-core products matched the SOS kernel bit-for-bit ✓");
}

fn check_tc<P: FpParams<N>, const N: usize>(name: &str, rng: &mut StdRng) {
    let field = U32Field::from_modulus(&P::MODULUS);
    let tc = TcMontgomery::new(field.clone());
    let mut ok = 0;
    for _ in 0..20 {
        let a = Fp::<P, N>::random(rng).mont_repr().to_u32_limbs();
        let b = Fp::<P, N>::random(rng).mont_repr().to_u32_limbs();
        assert_eq!(tc.mul(&a, &b), field.mul_sos(&a, &b));
        ok += 1;
    }
    println!("  {name:<8}: {ok}/20 random products agree");
}
