//! Quickstart: run a multi-scalar multiplication on a simulated 8-GPU
//! DGX with DistMSM and verify the result against a reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distmsm::prelude::*;
use distmsm::{estimate_distmsm, CurveDesc};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. Build an MSM instance: N points on BN254 with random scalars.
    let n = 1 << 14;
    let mut rng = StdRng::seed_from_u64(42);
    println!("Generating {n} BN254 points + scalars ...");
    let instance = MsmInstance::<Bn254G1>::random(n, &mut rng);

    // 2. Run DistMSM on a simulated 8×A100 system. The builder
    //    validates the configuration (window bounds, warp-multiple
    //    block sizes, retry policy) before the engine ever sees it.
    let system = MultiGpuSystem::dgx_a100(8);
    let config = DistMsmConfig::builder().build().expect("defaults are valid");
    let engine = DistMsm::with_config(system.clone(), config);
    let report = engine.execute(&instance).expect("MSM executes");

    // 3. The result is bit-exact: compare with double-and-add.
    assert_eq!(report.result, instance.reference_result());
    println!("result verified against the double-and-add reference ✓");
    println!();
    println!("window size          : {} ({} windows)", report.window_size, report.n_windows);
    println!("simulated wall time  : {:.3} ms", report.total_s * 1e3);
    // every timing artefact answers through the same `Report` trait
    for phase in report.phase_breakdown() {
        println!("  {:<19}: {:.3} ms", phase.name, phase.seconds * 1e3);
    }

    // 4. Paper-scale projection without functional execution.
    let est = estimate_distmsm(1 << 26, &CurveDesc::BN254, &system, &DistMsmConfig::default());
    println!();
    println!(
        "paper-scale projection: N = 2^26 on 8×A100 → {:.2} ms (paper Table 3: 56.15 ms)",
        est.total_s * 1e3
    );
}
