//! Capacity planning for a proving cluster.
//!
//! Given a target MSM size and curve, sweep GPU counts and window sizes
//! to pick a deployment: exactly the §3.1/§3.2 trade-off the paper
//! builds DistMSM around (small windows + hierarchical scatter for
//! multi-GPU, large windows + naive scatter for one GPU).
//!
//! ```sh
//! cargo run --release --example cluster_tuning
//! ```

use distmsm::analytic::{estimate_distmsm, estimate_distmsm_with_s, CurveDesc};
use distmsm::prelude::*;
use distmsm::workload::WorkloadParams;

fn main() {
    let curve = CurveDesc::BLS12_381;
    let n: u64 = 1 << 26;
    println!("Tuning a {} MSM of N = 2^26 across cluster sizes\n", curve.name);

    println!("{:<6} {:>9} {:>11} {:>13} {:>12}", "GPUs", "best s", "time (ms)", "vs 1 GPU", "€/proof*");
    let base = estimate_distmsm(n, &curve, &MultiGpuSystem::dgx_a100(1), &DistMsmConfig::default());
    for gpus in [1usize, 2, 4, 8, 16, 32] {
        let sys = MultiGpuSystem::dgx_a100(gpus);
        let est = estimate_distmsm(n, &curve, &sys, &DistMsmConfig::default());
        // a toy cost metric: GPU-seconds consumed per MSM
        let gpu_seconds = est.total_s * gpus as f64;
        println!(
            "{:<6} {:>9} {:>11.2} {:>12.1}x {:>11.4}",
            gpus,
            est.window_size,
            est.total_s * 1e3,
            base.total_s / est.total_s,
            gpu_seconds,
        );
    }
    println!("(*GPU-seconds per MSM — the efficiency price of latency)\n");

    // window-size sensitivity at 16 GPUs
    let sys = MultiGpuSystem::dgx_a100(16);
    println!("Window-size sensitivity at 16 GPUs:");
    println!("{:<4} {:>11} {:>10}", "s", "time (ms)", "feasible");
    for s in [8u32, 10, 11, 12, 14, 16, 18, 20] {
        let est = estimate_distmsm_with_s(n, &curve, &sys, &DistMsmConfig::default(), s);
        println!(
            "{:<4} {:>11.2} {:>10}",
            s,
            est.total_s * 1e3,
            if est.feasible { "yes" } else { "no" }
        );
    }

    // the §3.1 analytical view for comparison
    println!("\n§3.1 per-thread op model (normalised) at 16 GPUs:");
    for (s, c) in WorkloadParams::figure3(16).cost_curve(8..=20) {
        let bar = "#".repeat((c * 10.0).min(60.0) as usize);
        println!("  s={s:<3} {c:>6.2}  {bar}");
    }
}
