//! The full zkSNARK loop, closed inside this repository:
//!
//! 1. build an R1CS circuit ("I know `w` with `x = w²`"),
//! 2. run the Groth16 trusted setup,
//! 3. generate the proof with every MSM on the simulated multi-GPU
//!    DistMSM engine,
//! 4. **verify it cryptographically** with the optimal ate pairing on
//!    BN254 — no external crypto library anywhere in the stack.
//!
//! ```sh
//! cargo run --release --example groth16_end_to_end
//! ```

use distmsm_ff::params::Bn254Fr;
use distmsm_ff::Fp;
use distmsm_gpu_sim::MultiGpuSystem;
use distmsm_zksnark::groth16::{prove, setup, verify};
use distmsm_zksnark::r1cs::ConstraintSystem;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

type Fr = Fp<Bn254Fr, 4>;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // -- the statement: "I know w such that x = w⁵ + w + 5" -------------
    let secret_w = 3u64;
    let x = secret_w.pow(5) + secret_w + 5; // = 251
    println!("statement: x = w⁵ + w + 5 with public x = {x}; witness w stays secret");

    let mut cs = ConstraintSystem::<Bn254Fr, 4>::new();
    let x_var = cs.alloc(Fr::from_u64(x));
    cs.set_public(1);
    let w = cs.alloc(Fr::from_u64(secret_w));
    let w2 = cs.mul(w, w);
    let w4 = cs.mul(w2, w2);
    let w5 = cs.mul(w4, w);
    let w5_plus_w = cs.add(w5, w);
    // w⁵ + w + 5 = x  ⇔  (w⁵ + w + 5)·1 = x
    cs.enforce(
        vec![
            (w5_plus_w, Fr::ONE),
            (ConstraintSystem::<Bn254Fr, 4>::one(), Fr::from_u64(5)),
        ],
        vec![(ConstraintSystem::<Bn254Fr, 4>::one(), Fr::ONE)],
        vec![(x_var, Fr::ONE)],
    );
    assert!(cs.is_satisfied());
    println!(
        "circuit: {} constraints, {} variables\n",
        cs.n_constraints(),
        cs.n_variables()
    );

    // -- trusted setup -----------------------------------------------------
    let t = Instant::now();
    let (pk, vk) = setup(&cs, &mut rng);
    println!("setup     : {:?} (toxic waste discarded)", t.elapsed());

    // -- prove on the simulated 4-GPU system -------------------------------
    let system = MultiGpuSystem::dgx_a100(4);
    let t = Instant::now();
    let proof = prove(&pk, &cs, &system, &mut rng).expect("prove");
    println!("prove     : {:?} (MSMs on 4 simulated A100s)", t.elapsed());

    // -- verify with the pairing -------------------------------------------
    let t = Instant::now();
    let ok = verify(&vk, &[Fr::from_u64(x)], &proof);
    println!("verify    : {:?} (4 optimal ate pairings)", t.elapsed());
    assert!(ok);
    println!("\nproof ACCEPTED for x = {x} ✓");

    // -- and the negative cases --------------------------------------------
    assert!(!verify(&vk, &[Fr::from_u64(x + 1)], &proof));
    println!("proof rejected for x = {} ✓ (wrong public input)", x + 1);
    let mut forged = proof.clone();
    forged.c = forged.c.neg();
    assert!(!verify(&vk, &[Fr::from_u64(x)], &forged));
    println!("forged proof rejected ✓");
}
