#!/usr/bin/env bash
# Tier-1 gate for the DistMSM reproduction.
#
#   ./ci.sh            # build, test, lint, analyze
#
# Every step must pass; the analyze step runs the simulated-GPU race
# detector, the kernel resource linter, the comm-schedule checker, and
# the fault-recovery checker (crates/analyze) over traced executions and
# fails on any warning- or error-level finding.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo test -p distmsm-comms -q =="
cargo test -p distmsm-comms -q

echo "== fault-injection tests (supervisor + cross-curve recovery props) =="
cargo test -p distmsm -q --test fault_props
cargo test -p distmsm -q --lib supervisor::
cargo test -p distmsm-gpu-sim -q --lib fault::

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== cargo doc --no-deps =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== distmsm-analyze check (race + lint + comm schedules + fault recovery) =="
cargo run -p distmsm-analyze -- check

echo "CI OK"
