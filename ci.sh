#!/usr/bin/env bash
# Tier-1 gate for the DistMSM reproduction.
#
#   ./ci.sh            # build, test, lint, analyze
#
# Every step must pass; the analyze step runs the simulated-GPU race
# detector, the kernel resource linter, the comm-schedule checker, the
# fault-recovery checker, and the service-invariant checker
# (crates/analyze) over traced executions and fails on any warning- or
# error-level finding. The verify step runs the static plan verifier:
# symbolic write-set disjointness/coverage proofs, static collective
# deadlock checks over every topology preset, the mutant corpus and the
# workspace determinism lint — no execution, all N/window/GPU shapes.
# The soak smokes replay seeded chaos scenarios through the
# multi-tenant service and the multi-pod fleet coordinator (whole-pod
# loss plus a byzantine pod caught by the 2G2T check), the journaling
# crash soak, and the partition soak (heartbeat leases, epoch fencing,
# anti-entropy rejoin) and diff their byte-stable reports against
# goldens (BLESS=1 ./ci.sh regenerates).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release (suite + bench binaries) =="
# The root is itself a package (distmsm-suite), so a bare build on a
# fresh target skips the bench binaries the later steps run; bench is
# selected explicitly. Not --workspace: that would unify the analyze
# crate's unconditional telemetry dependency into the default-feature
# bench binaries and defeat the zero-symbol gate below.
cargo build --release -p distmsm-suite -p distmsm-bench

echo "== telemetry: default build carries no telemetry symbols =="
# feature-off must mean compiled out, not merely inactive (the positive
# control for this grep runs after the feature smoke run below)
for bin in fault_sweep soak fleet_soak crash_soak partition_soak; do
    if grep -qa distmsm_telemetry "target/release/$bin"; then
        echo "FAIL: default-feature $bin binary contains telemetry symbols" >&2
        exit 1
    fi
done

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo test -p distmsm-comms -q =="
cargo test -p distmsm-comms -q

echo "== fault-injection tests (supervisor + cross-curve recovery props) =="
cargo test -p distmsm -q --test fault_props
cargo test -p distmsm -q --lib supervisor::
cargo test -p distmsm-gpu-sim -q --lib fault::

echo "== service soak smoke (seeded chaos, zero violations) + golden =="
SOAK_JSON="$(mktemp /tmp/distmsm_ci_soak.XXXXXX.json)"
target/release/soak --smoke --json "$SOAK_JSON"
GOLDEN="crates/bench/golden/soak_smoke.json"
if [[ "${BLESS:-0}" == "1" ]]; then
    cp "$SOAK_JSON" "$GOLDEN"
    echo "blessed $GOLDEN"
fi
# the ServiceReport JSON is byte-stable: any drift is a behaviour change
diff -u "$GOLDEN" "$SOAK_JSON"
rm -f "$SOAK_JSON"

echo "== fleet soak smoke (4 pods, 1024 tenants, byzantine + pod loss) + golden =="
FLEET_JSON="$(mktemp /tmp/distmsm_ci_fleet_soak.XXXXXX.json)"
target/release/fleet_soak --smoke --json "$FLEET_JSON"
FLEET_GOLDEN="crates/bench/golden/fleet_soak_smoke.json"
if [[ "${BLESS:-0}" == "1" ]]; then
    cp "$FLEET_JSON" "$FLEET_GOLDEN"
    echo "blessed $FLEET_GOLDEN"
fi
# the FleetReport JSON is byte-stable: any drift is a behaviour change
diff -u "$FLEET_GOLDEN" "$FLEET_JSON"
rm -f "$FLEET_JSON"

echo "== crash soak smoke (journal kill points, torn writes, ckpt resume) + golden =="
CRASH_JSON="$(mktemp /tmp/distmsm_ci_crash_soak.XXXXXX.json)"
target/release/crash_soak --smoke --json "$CRASH_JSON"
CRASH_GOLDEN="crates/bench/golden/crash_soak_smoke.json"
if [[ "${BLESS:-0}" == "1" ]]; then
    cp "$CRASH_JSON" "$CRASH_GOLDEN"
    echo "blessed $CRASH_GOLDEN"
fi
# the CrashReport JSON is byte-stable: any drift is a behaviour change
diff -u "$CRASH_GOLDEN" "$CRASH_JSON"
rm -f "$CRASH_JSON"

echo "== partition soak smoke (leases, fencing, anti-entropy rejoin) + golden =="
PART_JSON="$(mktemp /tmp/distmsm_ci_partition_soak.XXXXXX.json)"
target/release/partition_soak --smoke --json "$PART_JSON"
PART_GOLDEN="crates/bench/golden/partition_soak_smoke.json"
if [[ "${BLESS:-0}" == "1" ]]; then
    cp "$PART_JSON" "$PART_GOLDEN"
    echo "blessed $PART_GOLDEN"
fi
# the PartitionReport JSON is byte-stable: any drift is a behaviour change
diff -u "$PART_GOLDEN" "$PART_JSON"
rm -f "$PART_JSON"

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== cargo doc --no-deps =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== telemetry feature tests (span sums + golden trace) =="
cargo test -p distmsm-telemetry -q
cargo test -p distmsm -q --features telemetry --test telemetry

echo "== telemetry smoke run (fault_sweep --telemetry + trace validation) =="
TRACE="$(mktemp /tmp/distmsm_ci_trace.XXXXXX.json)"
cargo run --release -q -p distmsm-bench --features telemetry --bin fault_sweep -- \
    --telemetry "$TRACE" > /dev/null
grep -q '"producer":"distmsm_telemetry"' "$TRACE"
# positive control: the same grep that must fail on the default build
# does detect the feature build it just produced
grep -qa distmsm_telemetry target/release/fault_sweep
cargo run --release -q -p distmsm-analyze -- trace "$TRACE"
rm -f "$TRACE"

echo "== distmsm-analyze check (race + lint + comm + fault + service + ckpt + partition + fleet + telemetry) =="
cargo run -p distmsm-analyze -- check

echo "== distmsm-analyze verify --all-presets (static proofs incl. fleet plans + mutants + det lint) =="
cargo run --release -q -p distmsm-analyze -- verify --all-presets

echo "== unsafe audit: every crate root must forbid unsafe_code =="
for lib in crates/*/src/lib.rs; do
    if ! grep -q '#!\[forbid(unsafe_code)\]' "$lib"; then
        echo "FAIL: $lib does not carry #![forbid(unsafe_code)]" >&2
        exit 1
    fi
done

echo "== fig9 scaling smoke + BENCH_msm.json trajectory artefact =="
cargo run --release -q -p distmsm-bench --bin fig9_scaling -- \
    --smoke --bench-json BENCH_msm.json
grep -q '"bench": "fig9_scaling"' BENCH_msm.json
grep -q '"pods": 4' BENCH_msm.json
grep -q '"ckpt_rows"' BENCH_msm.json
grep -q '"interval": 1' BENCH_msm.json
grep -q '"partition_rows"' BENCH_msm.json

echo "CI OK"
