#!/usr/bin/env bash
# Tier-1 gate for the DistMSM reproduction.
#
#   ./ci.sh            # build, test, lint, analyze
#
# Every step must pass; the analyze step runs the simulated-GPU race
# detector and the kernel resource linter (crates/analyze) and fails on
# any warning- or error-level finding.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== distmsm-analyze check =="
cargo run -p distmsm-analyze -- check

echo "CI OK"
