//! Umbrella crate for the DistMSM reproduction workspace.
//!
//! Re-exports every member crate and hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! Start with [`distmsm`] (the paper's contribution), or run
//! `cargo run --release --example quickstart`.

pub use distmsm;
pub use distmsm_ec as ec;
pub use distmsm_ff as ff;
pub use distmsm_gpu_sim as gpu_sim;
pub use distmsm_kernel as kernel;
pub use distmsm_zksnark as zksnark;
